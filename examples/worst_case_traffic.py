#!/usr/bin/env python3
"""Worst-case traffic: multiplicity selection and permutation immunity.

Part 1 runs the Sec. IV-E 'in-house tool': every node injects one packet
simultaneously, and we sweep multiplicity to find the smallest value with
a <1% worst-case drop rate at several scales.

Part 2 demonstrates the expansion property (Sec. IV-E, [19]): because the
inter-stage wiring is randomized, Baldur's latency under the adversarial
transpose permutation matches its latency under a benign random
permutation -- it is immune to worst-case permutations, unlike dragonfly
(compare the ping_pong2 and FB results in Fig. 7).

Run:  python examples/worst_case_traffic.py
"""

from repro import BaldurNetwork, inject_open_loop, one_shot_drop_rate
from repro.analysis import format_table
from repro.core import required_multiplicity
from repro.traffic import random_permutation, transpose


def part1_multiplicity_selection() -> None:
    rows = []
    for scale in (256, 1024, 4096, 16384):
        m = required_multiplicity(
            scale, patterns=["random_permutation"], trials=2
        )
        rate = one_shot_drop_rate(scale, m, "random_permutation", trials=2)
        rows.append([f"{scale:,}", m, 100 * rate])
    print(
        format_table(
            ["nodes", "required m", "worst-case drop %"],
            rows,
            title="Sec. IV-E: smallest multiplicity with <1% worst-case "
            "drops (paper: m=4 @1K, m=5 @1M)",
        )
    )


def part2_permutation_immunity() -> None:
    n, load, packets = 256, 0.7, 30
    rows = []
    for name, pattern in (
        ("random_permutation", random_permutation(n, seed=3)),
        ("transpose (adversarial)", transpose(n)),
    ):
        net = BaldurNetwork(n, multiplicity=4, seed=3)
        inject_open_loop(net, pattern, load, packets, seed=3)
        stats = net.run(until=100_000_000)
        rows.append(
            [name, stats.average_latency, 100 * stats.drop_rate]
        )
    print()
    print(
        format_table(
            ["pattern", "avg latency (ns)", "drop %"],
            rows,
            title=f"Expansion-based immunity ({n} nodes, load {load}): "
            "adversarial ~ benign",
        )
    )
    benign, adversarial = rows[0][1], rows[1][1]
    print(
        f"\ntranspose/random latency ratio: {adversarial / benign:.2f} "
        f"(~1.0 = immune to the worst-case permutation)"
    )


if __name__ == "__main__":
    part1_multiplicity_selection()
    part2_permutation_immunity()
