#!/usr/bin/env python3
"""Replay the four Design-Forward-style HPC workloads on every network.

Reproduces the Fig. 7 experiment at a reduced scale: AMG, CrystalRouter,
MultiGrid, and FB traces are replayed bulk-synchronously on Baldur and the
three electrical baselines, and average latencies are printed normalized
to Baldur (paper: Baldur's geomean is 2.6X-9.1X better; FB is the
worst case for dragonfly/fat-tree).

Run:  python examples/hpc_workloads.py [n_nodes]
"""

import math
import sys

from repro import HPC_WORKLOADS, build_network, replay_trace
from repro.analysis import format_table
from repro.netsim.stats import geomean

NETWORKS = ("baldur", "multibutterfly", "dragonfly", "fattree")


def main(n_nodes: int = 128) -> None:
    rows = []
    nan = float("nan")
    ratios = {name: [] for name in NETWORKS if name != "baldur"}
    for workload, trace_fn in HPC_WORKLOADS.items():
        trace = trace_fn(n_nodes, seed=1)
        latencies = {}
        for network in NETWORKS:
            net = build_network(network, n_nodes, seed=1)
            stats = replay_trace(net, trace, until=100_000_000)
            latencies[network] = stats.average_latency
        baldur = latencies["baldur"]
        row = [workload, baldur]
        for name in NETWORKS[1:]:
            # A saturated cell delivers nothing and reports NaN average
            # latency; show "-" and leave it out of the geomean.
            if math.isfinite(baldur) and math.isfinite(latencies[name]):
                ratio = latencies[name] / baldur
                ratios[name].append(ratio)
            else:
                ratio = nan
            row.append(ratio)
        rows.append(row)
    rows.append(
        ["geomean", 1.0] + [geomean(ratios[name]) for name in NETWORKS[1:]]
    )
    print(
        format_table(
            ["workload", "baldur_ns"]
            + [f"{name}/baldur" for name in NETWORKS[1:]],
            rows,
            title=f"HPC workload replay, {n_nodes} nodes "
            f"(latency normalized to Baldur)",
        )
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 128)
