#!/usr/bin/env python3
"""Ablation: how TL technology scaling changes the system picture.

Sec. III notes the authors are 'scaling the TL technology further to
continue to improve latency/power'.  This study scales the TL device
parameters (capacitances, lifetimes, currents, area) by a factor and
recomputes gate characteristics, switch power, and the Baldur-vs-eMB
power ratio at the 1K scale -- showing how much headroom the architecture
gains from each device generation.

Run:  python examples/technology_scaling.py
"""

from repro.analysis import format_table
from repro.power.network_power import multibutterfly_power
from repro.tl.device import TLDeviceParameters, characterize_gate
from repro.tl.switch_circuit import switch_model

SCALES = (1.0, 0.7, 0.5, 0.35, 0.25)


def main() -> None:
    emb_1k = multibutterfly_power(1024).total
    rows = []
    for factor in SCALES:
        params = TLDeviceParameters().scaled(factor)
        chars = characterize_gate(params)
        switch_w = switch_model(4).gate_count * chars.power_w
        # Baldur 1K: 5 switches/node + host optics + retx buffer.
        baldur_node_w = 5 * switch_w + 2 * 2.193 + 0.741
        rows.append(
            [
                f"{factor:.2f}",
                chars.delay_ps,
                chars.power_mw,
                chars.data_rate_gbps,
                switch_w,
                emb_1k
                / baldur_node_w,
            ]
        )
    print(
        format_table(
            ["node scale", "gate delay (ps)", "gate power (mW)",
             "rate (Gbps)", "m=4 switch (W)", "eMB/Baldur power @1K"],
            rows,
            title="TL technology scaling ablation (1.0 = the paper's "
            "current node)",
        )
    )
    print(
        "\nEach TL device generation raises gate speed (60 -> 240 Gbps at "
        "0.25X) and widens Baldur's power advantage, with the residual "
        "host transceivers/SerDes becoming the dominant term."
    )


if __name__ == "__main__":
    main()
