#!/usr/bin/env python3
"""Resilience demo: chaos-injected faults, diagnosis, and degraded mode.

Walks the full fault lifecycle on a 64-node Baldur network:

1. a chaos schedule (MTBF/MTTR) fails switches at random while a random
   permutation runs -- the conservation audit proves no packet is lost
   from the ledger;
2. the Sec. IV-F diagnosis procedure isolates two concurrently injected
   faulty switches from probe outcomes alone;
3. degraded mode masks the diagnosed switch and routes around it via the
   remaining multiplicity paths, restoring a zero drop rate.

Run:  python examples/resilience_demo.py
"""

from repro import BaldurNetwork, ChaosSchedule, FaultInjector, inject_open_loop
from repro.analysis import format_table
from repro.analysis.resilience import degraded_mode_comparison
from repro.core.diagnosis import run_diagnosis
from repro.faults import format_ledger
from repro.traffic import random_permutation

N_NODES = 64
LOAD = 0.3
PACKETS_PER_NODE = 10
SEED = 7


def chaos_run() -> None:
    net = BaldurNetwork(N_NODES, multiplicity=4, seed=SEED)
    # Timescales are compressed so failures land inside the short demo
    # traffic window (~100 us of simulated time).
    chaos = ChaosSchedule(
        mtbf_ns=20_000.0,
        mttr_ns=5_000.0,
        horizon_ns=200_000.0,
        seed=SEED,
    )
    victims = net.switch_ids()[:8]
    faults = chaos.faults_for(victims)
    injector = FaultInjector(faults, seed=SEED)
    net.attach_faults(injector)

    inject_open_loop(
        net, random_permutation(N_NODES, SEED), LOAD,
        PACKETS_PER_NODE, seed=SEED,
    )
    stats = net.run()
    ledger = net.audit()
    print(
        f"Chaos run: {len(faults)} fault windows on {len(victims)} "
        f"switches (availability {chaos.availability:.2f})"
    )
    print(f"  drop rate {100 * stats.drop_rate:.2f}%, "
          f"retransmissions {stats.retransmissions}")
    print(f"  conservation: {format_ledger(ledger)}")


def diagnosis_run() -> None:
    faults = [(1, 3), (3, 11)]
    report = run_diagnosis(N_NODES, faults, n_probes=128, seed=SEED)
    rows = [[k, str(v)] for k, v in report.items()]
    print()
    print(format_table(
        ["field", "value"], rows,
        title="Diagnosis of two concurrent faults",
    ))


def degraded_run() -> None:
    cmp = degraded_mode_comparison(
        n_nodes=N_NODES, load=0.5, packets_per_node=PACKETS_PER_NODE,
        seed=SEED,
    )
    fault = cmp["fault"]
    rows = [
        [mode, 100 * row["drop_rate"], row["retransmissions"],
         row["avg_latency_ns"]]
        for mode, row in (("unmasked", cmp["unmasked"]),
                          ("masked", cmp["masked"]))
    ]
    print()
    print(format_table(
        ["mode", "drop_%", "retransmissions", "avg_ns"], rows,
        title=(
            f"Degraded mode -- faulty switch (stage {fault['stage']}, "
            f"switch {fault['switch']})"
        ),
    ))
    print(
        "\nMasking the diagnosed switch routes traffic through the "
        "remaining multiplicity paths."
    )


def main() -> None:
    chaos_run()
    diagnosis_run()
    degraded_run()


if __name__ == "__main__":
    main()
