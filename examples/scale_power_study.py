#!/usr/bin/env python3
"""Power, cost, and packaging of Baldur from 1K to 1M nodes.

Regenerates the Fig. 8 / Fig. 10 / Sec. IV-G story in one table: per-node
power for all four networks, Baldur's deployment cost, and the cabinet
count, at each scale.

Run:  python examples/scale_power_study.py
"""

from repro import baldur_cost, plan_packaging, power_scaling_sweep
from repro.analysis import format_table
from repro.power.network_power import FIG8_SCALES


def main() -> None:
    sweep = power_scaling_sweep(list(FIG8_SCALES))
    rows = []
    for i, scale in enumerate(FIG8_SCALES):
        cost = baldur_cost(scale)
        plan = plan_packaging(scale)
        rows.append(
            [
                f"{scale:,}",
                sweep["baldur"][i].total,
                sweep["dragonfly"][i].total,
                sweep["fattree"][i].total,
                sweep["multibutterfly"][i].total,
                cost.total,
                plan.cabinets,
            ]
        )
    print(
        format_table(
            ["nodes", "baldur_W", "dragonfly_W", "fattree_W", "eMB_W",
             "cost_$", "cabinets"],
            rows,
            title="Power per node (W), Baldur cost per node (USD), and "
            "cabinets vs scale",
        )
    )
    b = sweep["baldur"]
    print(
        f"\nBaldur power grows only {b[-1].total / b[0].total:.2f}X from "
        f"1K to 1M nodes (paper: 1.7X); every baseline grows faster and "
        f"costs more at every scale."
    )


if __name__ == "__main__":
    main()
