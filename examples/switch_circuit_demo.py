#!/usr/bin/env python3
"""Gate-level demo of the 2x2 all-optical TL switch (Fig. 4/5).

Injects two packets -- one per input port, with contending destinations --
into the structural switch netlist and prints the resulting waveforms:
line-activity detection, routing-bit decode, valid/mask-off latching,
arbitration grants, and the (first-bit-masked) output packets.

Run:  python examples/switch_circuit_demo.py
"""

from repro.tl.encoding import decode_packet
from repro.tl.switch_circuit import TLSwitchCircuit

T_PS = 40.0  # bit period at the 25 Gbps link rate


def main() -> None:
    switch = TLSwitchCircuit(bit_period_ps=T_PS)
    print(f"Structural 2x2 TL switch: {switch.gate_count} TL gates "
          f"(paper quotes ~60, Fig. 4)\n")

    # Input 0: routing bit '0' -> output port 0.  Input 1 contends for the
    # same port at the same instant: the arbiter grants one, drops the
    # other (bufferless switching, Sec. IV-C).
    switch.inject(0, [0, 1], b"\xa5")
    switch.inject(1, [0, 0], b"\x5a")
    switch.run(until_ps=4000)

    print(switch.waveform_report(t_end_ps=1500))
    print()
    for port in (0, 1):
        waveform = switch.outputs[port].waveform()
        if waveform.edges:
            bits, payload = decode_packet(waveform, 1, bit_period=T_PS)
            print(f"output {port}: routing bits {bits}, payload "
                  f"{payload!r} (first routing bit masked off)")
        else:
            print(f"output {port}: dark (losing packet was dropped)")

    det = switch.detectors[0]
    print(f"\ninput 0 timeline: routing latch set at "
          f"{det.routing_q.rise_times()[0]:.1f} ps, valid at "
          f"{det.valid_q.rise_times()[0]:.1f} ps "
          f"(gap period {2 * T_PS:.0f}-{3 * T_PS:.0f} ps), reset at "
          f"{det.valid_q.fall_times()[0]:.1f} ps (6T after end of packet)")


if __name__ == "__main__":
    main()
