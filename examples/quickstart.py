#!/usr/bin/env python3
"""Quickstart: simulate a Baldur network and compare it with the ideal.

Builds a 256-node Baldur network (multiplicity 4), drives a random
permutation at 0.7 input load, and prints latency, drop, and
retransmission statistics next to the ideal network's flat 200 ns.

Run:  python examples/quickstart.py
"""

from repro import BaldurNetwork, IdealNetwork, inject_open_loop
from repro.analysis import format_table
from repro.traffic import random_permutation

N_NODES = 256
LOAD = 0.7
PACKETS_PER_NODE = 50
SEED = 42


def main() -> None:
    pattern = random_permutation(N_NODES, seed=SEED)

    baldur = BaldurNetwork(N_NODES, multiplicity=4, seed=SEED)
    inject_open_loop(baldur, pattern, LOAD, PACKETS_PER_NODE, seed=SEED)
    baldur_stats = baldur.run(until=100_000_000)

    ideal = IdealNetwork(N_NODES)
    inject_open_loop(ideal, pattern, LOAD, PACKETS_PER_NODE, seed=SEED)
    ideal_stats = ideal.run()

    rows = [
        ["delivered", baldur_stats.delivered, ideal_stats.delivered],
        ["avg latency (ns)", baldur_stats.average_latency,
         ideal_stats.average_latency],
        ["p99 latency (ns)", baldur_stats.tail_latency,
         ideal_stats.tail_latency],
        ["drop rate (%)", 100 * baldur_stats.drop_rate, 0.0],
        ["retransmissions", baldur_stats.retransmissions, 0],
        ["peak retx buffer (KB)", baldur.peak_retx_buffer_kb, 0.0],
    ]
    print(
        format_table(
            ["metric", "baldur", "ideal"],
            rows,
            title=(
                f"Baldur {N_NODES} nodes, random permutation, "
                f"load {LOAD} ({PACKETS_PER_NODE} pkts/node)"
            ),
        )
    )
    ratio = baldur_stats.average_latency / ideal_stats.average_latency
    print(
        f"\nBaldur runs at {ratio:.1f}X the ideal network's latency "
        f"(paper: 1.7X-3.4X at the 1,024-node scale)."
    )


if __name__ == "__main__":
    main()
