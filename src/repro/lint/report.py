"""Reporters: render a :class:`~repro.lint.engine.LintReport` for humans
or machines.

The JSON document is deliberately canonical (sorted keys, sorted
findings, ``allow_nan=False``) so CI can archive it as an artifact and
diff two runs byte-for-byte -- the same discipline
:func:`repro.runner.spec.canonical_json` applies to results files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.engine import LintReport

__all__ = ["render_json", "render_text"]

JSON_SCHEMA_VERSION = 1
"""Bumped whenever the JSON report layout changes incompatibly."""


def render_text(report: LintReport) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` line per
    finding plus a one-line summary."""
    lines: List[str] = [
        f"{finding.location}: {finding.rule} {finding.message}"
        for finding in report.findings
    ]
    if report.findings:
        per_rule = ", ".join(
            f"{rule}={count}" for rule, count in report.by_rule().items()
        )
        lines.append(
            f"{len(report.findings)} finding(s) in {report.n_files} "
            f"file(s): {per_rule}"
        )
    else:
        suffix = (
            f" ({report.suppressed} suppressed)" if report.suppressed else ""
        )
        lines.append(
            f"clean: {report.n_files} file(s), "
            f"{len(report.rules)} rule(s){suffix}"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Canonical JSON report (the CI artifact format)."""
    payload: Dict[str, Any] = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": report.n_files,
        "rules": [
            {"id": rule.id, "summary": rule.summary}
            for rule in report.rules
        ],
        "findings": [finding.to_dict() for finding in report.findings],
        "summary": {
            "total": len(report.findings),
            "suppressed": report.suppressed,
            "by_rule": report.by_rule(),
        },
    }
    return json.dumps(
        payload, sort_keys=True, indent=1, allow_nan=False
    )
