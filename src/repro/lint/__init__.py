"""``repro.lint``: determinism & invariant static analysis.

A small AST-walking analyzer purpose-built for this repro.  The engine
(:mod:`repro.lint.engine`) provides the checker registry, suppression
comments, and file discovery; the repo-specific rules live in
:mod:`repro.lint.checkers`; reporters in :mod:`repro.lint.report`; the
``repro-lint`` console script in :mod:`repro.lint.cli`.

See DESIGN.md section 11 for the architecture and rule catalog.
"""

from __future__ import annotations

from repro.lint.engine import (
    DEFAULT_EXCLUDED_DIRS,
    Finding,
    LintReport,
    Rule,
    SourceFile,
    iter_source_files,
    module_name_for,
    registry,
    run_lint,
)

# Importing the checkers module registers the built-in rules.
import repro.lint.checkers as checkers  # noqa: E402

__all__ = [
    "DEFAULT_EXCLUDED_DIRS",
    "Finding",
    "LintReport",
    "Rule",
    "SourceFile",
    "checkers",
    "iter_source_files",
    "module_name_for",
    "registry",
    "run_lint",
]
