"""``repro.lint``: determinism & invariant static analysis.

A small AST-walking analyzer purpose-built for this repro.  The engine
(:mod:`repro.lint.engine`) provides the checker registry, suppression
comments, and file discovery; the single-file rules live in
:mod:`repro.lint.checkers`; the whole-project symbol/call graph in
:mod:`repro.lint.graph`; the flow-aware parallelism-safety rules in
:mod:`repro.lint.flow`; reporters in :mod:`repro.lint.report`; the
``repro-lint`` console script in :mod:`repro.lint.cli`.

See DESIGN.md sections 11 and 15 for the architecture and rule catalog.
"""

from __future__ import annotations

from repro.lint.engine import (
    DEFAULT_EXCLUDED_DIRS,
    Finding,
    LintReport,
    Rule,
    SourceFile,
    iter_source_files,
    module_name_for,
    registry,
    run_lint,
)

# Importing the rule modules registers the built-in rules.
import repro.lint.checkers as checkers  # noqa: E402
import repro.lint.flow as flow  # noqa: E402

__all__ = [
    "DEFAULT_EXCLUDED_DIRS",
    "Finding",
    "LintReport",
    "Rule",
    "SourceFile",
    "checkers",
    "flow",
    "iter_source_files",
    "module_name_for",
    "registry",
    "run_lint",
]
