"""The built-in single-file checkers (the syntactic half of the catalog).

Each checker is a generator ``(SourceFile) -> Iterator[Finding]``
registered with :func:`repro.lint.engine.checker`.  The six rules here
pin the determinism and invariant contracts documented in DESIGN.md;
the flow-aware, whole-project rules (SEED/FORK/MERGE/FLOAT/SUPP/STALE)
live in :mod:`repro.lint.flow` on top of :mod:`repro.lint.graph`.

========== ================================================================
rule       contract it pins
========== ================================================================
RNG-001    all randomness flows through ``repro.sim.rand`` named streams
CLK-001    simulation code never reads the wall clock
DET-001    scheduling/arbitration never iterates an unordered ``set``
SLOTS-001  hot-module classes declare ``__slots__`` like their peers
FAST-001   unvalidated event-queue pushes stay on an audited allowlist
JSON-001   every ``json.dump(s)`` is NaN-safe (the PR 3 bug class)
========== ================================================================

Checkers are intentionally syntactic: they resolve import aliases (see
:class:`~repro.lint.engine.ImportMap`) but do no type inference, so a
determined author can evade them -- the point is to make accidental
violations loud, with ``# repro-lint: disable=<rule>`` as the explicit,
reviewable escape hatch.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set, Tuple

from repro.lint.engine import (
    Finding,
    ImportMap,
    SourceFile,
    checker,
    walk_with_qualname,
)

__all__ = [
    "FAST_PATH_ALLOWLIST",
    "HOT_CLOCK_PREFIXES",
    "SLOTS_MODULES",
    "fast_path_sites",
]

HOT_CLOCK_PREFIXES = (
    "repro.sim",
    "repro.core",
    "repro.netsim",
    "repro.electrical",
    "repro.zoo",
    "repro.shard",
)
"""Packages in which CLK-001 and DET-001 apply (the simulation core).

Wall-clock reads are allowed only in measurement/driver layers
(``repro.analysis.perf``, ``repro.runner.engine``, ``repro.obs.profile``,
the CLI) where they feed reports, never simulation state.
"""

SLOTS_MODULES = (
    "repro.sim.core",
    "repro.core.baldur_network",
    "repro.zoo.rotor",
    "repro.topology.rotor",
    "repro.shard.runtime",
    "repro.shard.plan",
)
"""Exact modules (plus the ``repro.netsim`` package) checked by SLOTS-001."""

FAST_PATH_ALLOWLIST = frozenset({
    # The kernel itself: validated entry points plus the documented
    # unvalidated internal push.
    ("repro.sim.core", "Environment.schedule"),
    ("repro.sim.core", "Environment.schedule_at"),
    ("repro.sim.core", "Environment.schedule_batch"),
    ("repro.sim.core", "Environment._push"),
    ("repro.sim.core", "Environment._schedule_event"),
    ("repro.sim.core", "Process.__init__"),
    ("repro.sim.core", "Process._resume"),
    # PR 4's audited open-coded pushes (delays are sums of non-negative
    # model constants; see the inline safety comments at each site).
    ("repro.core.baldur_network", "BaldurNetwork._transmit"),
    ("repro.core.baldur_network", "BaldurNetwork._arrive_stage"),
})
"""(module, qualname) pairs allowed to bypass kernel delay validation.

Growing this set is a deliberate act: add the new call site here *and*
justify its delay bounds in a comment at the site, mirroring DESIGN.md
section 10's audit discipline.
"""

_SCHEDULING_ATTRS = frozenset({
    "schedule",
    "schedule_at",
    "schedule_batch",
    "_push",
    "_schedule_event",
    "succeed",
    "fail",
    "heappush",
    "process",
    "timeout",
})
"""Calls that commit event order (DET-001's notion of 'feeds scheduling')."""


def _in_packages(module: str, prefixes: Sequence[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


# -- RNG-001 -----------------------------------------------------------------


def _annotation_nodes(tree: ast.AST) -> Set[int]:
    """``id()``s of every node inside a type annotation.

    ``rng: np.random.Generator`` *names* the global-RNG type without
    touching global state, so RNG-001 must not flag annotation subtrees.
    """
    roots: List[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            arguments = node.args
            for arg in (
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
                arguments.vararg,
                arguments.kwarg,
            ):
                if arg is not None and arg.annotation is not None:
                    roots.append(arg.annotation)
            if node.returns is not None:
                roots.append(node.returns)
        elif isinstance(node, ast.AnnAssign):
            roots.append(node.annotation)
    ids: Set[int] = set()
    for root in roots:
        ids.update(id(sub) for sub in ast.walk(root))
    return ids


@checker(
    "RNG-001",
    "global random / numpy.random use outside repro.sim.rand",
)
def check_rng(src: SourceFile) -> Iterator[Finding]:
    """Flag stdlib/numpy global RNG use outside the sanctioned module.

    Reproducibility rests on every stochastic component drawing from a
    named stream derived via :func:`repro.sim.rand.derive_seed`; the
    module-global generators (``random.random``, ``numpy.random.seed``)
    are cross-cutting hidden state that any import can perturb.
    """
    if not src.module.startswith("repro.") or src.module == "repro.sim.rand":
        return
    imports = ImportMap(src.tree)
    annotations = _annotation_nodes(src.tree)
    seen: Set[Tuple[int, int]] = set()

    def flag(node: ast.AST, what: str) -> Iterator[Finding]:
        pos = (
            getattr(node, "lineno", 1), getattr(node, "col_offset", 0)
        )
        if pos not in seen:
            seen.add(pos)
            yield src.finding(
                "RNG-001",
                node,
                f"{what} uses the global RNG stream; draw from a named "
                "stream via repro.sim.rand.stream/numpy_stream instead",
            )

    for node in ast.walk(src.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith(
                    "numpy.random"
                ):
                    yield from flag(node, f"import {alias.name}")
        elif isinstance(node, ast.ImportFrom) and node.module in (
            "random", "numpy.random"
        ):
            yield from flag(node, f"from {node.module} import ...")
        elif isinstance(node, (ast.Attribute, ast.Name)):
            if id(node) in annotations:
                continue
            resolved = imports.resolve(node)
            if resolved is None:
                continue
            if resolved == "random" or resolved.startswith("random."):
                # Only flag names that actually came from an import of
                # the stdlib module (a local variable named ``random``
                # resolves to itself but was never imported).
                if "random" in imports.modules or resolved in (
                    imports.names.get(resolved.split(".")[-1], ""),
                ):
                    yield from flag(node, resolved)
            elif resolved == "numpy.random" or resolved.startswith(
                "numpy.random."
            ):
                yield from flag(node, resolved)


# -- CLK-001 -----------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


@checker(
    "CLK-001",
    "wall-clock read inside simulation code",
)
def check_clock(src: SourceFile) -> Iterator[Finding]:
    """Flag wall-clock reads inside ``repro.sim``/``core``/``netsim``/
    ``electrical``.

    Simulation time is :attr:`Environment.now`; a wall-clock read in
    simulation code either leaks nondeterminism into results or silently
    measures the host instead of the model.  Measurement layers
    (``repro.analysis.perf``, ``repro.obs.profile``, ``repro.runner``)
    are outside the banned set by construction.
    """
    if not _in_packages(src.module, HOT_CLOCK_PREFIXES):
        return
    imports = ImportMap(src.tree)
    seen: Set[Tuple[int, int]] = set()
    for node in ast.walk(src.tree):
        if isinstance(node, ast.ImportFrom) and node.module in (
            "time", "datetime"
        ):
            banned = [
                alias.name for alias in node.names
                if f"{node.module}.{alias.name}" in _WALL_CLOCK_CALLS
                or (node.module == "datetime"
                    and alias.name in ("datetime", "date"))
            ]
            if banned:
                yield src.finding(
                    "CLK-001",
                    node,
                    f"importing {', '.join(banned)} from {node.module} "
                    "inside simulation code; use Environment.now for "
                    "simulated time (wall clocks belong in "
                    "repro.analysis.perf / repro.obs.profile / the CLI)",
                )
        elif isinstance(node, (ast.Attribute, ast.Name)):
            resolved = imports.resolve(node)
            if resolved in _WALL_CLOCK_CALLS:
                pos = (node.lineno, node.col_offset)
                if pos in seen:
                    continue
                seen.add(pos)
                yield src.finding(
                    "CLK-001",
                    node,
                    f"{resolved} read inside simulation code; use "
                    "Environment.now (wall clocks belong in "
                    "repro.analysis.perf / repro.obs.profile / the CLI)",
                )


# -- DET-001 -----------------------------------------------------------------


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Nodes of ``scope`` without descending into nested function scopes.

    Nested functions are analyzed as scopes of their own; descending into
    them here would attribute their set iterations (or scheduling calls)
    to the enclosing scope and create cross-scope false positives.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _set_locals(scope: ast.AST) -> Set[str]:
    """Names assigned a set-typed value anywhere in ``scope``."""
    names: Set[str] = set()
    for node in _scope_nodes(scope):
        if isinstance(node, ast.Assign):
            value = node.value
            if _is_set_expr(value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif (
            isinstance(node, ast.AnnAssign)
            and node.value is not None
            and _is_set_expr(node.value, names)
            and isinstance(node.target, ast.Name)
        ):
            names.add(node.target.id)
    return names


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Syntactic 'this expression is a set' test (no type inference)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


@checker(
    "DET-001",
    "iteration over an unordered set feeding scheduling/arbitration",
)
def check_set_iteration(src: SourceFile) -> Iterator[Finding]:
    """Flag ``for``/comprehension iteration over sets in scopes that
    schedule events or arbitrate.

    Set iteration order is insertion-history- and hash-dependent; when
    the loop body (or the surrounding function) commits event order --
    ``env.schedule``, ``heappush``, ``Event.succeed`` -- the simulation
    result silently depends on it.  Iterate ``sorted(the_set)`` (or keep
    a list) instead.
    """
    if not _in_packages(src.module, HOT_CLOCK_PREFIXES):
        return
    scopes: List[ast.AST] = [src.tree]
    scopes.extend(
        node for node in ast.walk(src.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    flagged: Set[Tuple[int, int]] = set()
    for scope in scopes:
        schedules = any(
            (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCHEDULING_ATTRS
            )
            or (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "heappush"
            )
            for node in _scope_nodes(scope)
        )
        if not schedules:
            continue
        set_names = _set_locals(scope)
        iters: List[ast.expr] = []
        for node in _scope_nodes(scope):
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                       ast.DictComp)
            ):
                iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it, set_names):
                pos = (it.lineno, it.col_offset)
                if pos in flagged:
                    continue
                flagged.add(pos)
                yield src.finding(
                    "DET-001",
                    it,
                    "iterating an unordered set in a scope that "
                    "schedules events or arbitrates makes event order "
                    "hash-dependent; iterate sorted(...) or keep a list",
                )


# -- SLOTS-001 ---------------------------------------------------------------


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            ):
                return True
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ) and stmt.target.id == "__slots__":
            return True
    return False


def _slots_exempt(cls: ast.ClassDef) -> bool:
    """Exceptions and dataclasses are exempt from SLOTS-001.

    Exception layouts are never hot-path, and ``@dataclass`` field
    storage predates usable ``slots=True`` on our floor Python.
    """
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = (
            target.attr if isinstance(target, ast.Attribute)
            else target.id if isinstance(target, ast.Name) else ""
        )
        if name == "dataclass":
            return True
    for base in cls.bases:
        name = (
            base.attr if isinstance(base, ast.Attribute)
            else base.id if isinstance(base, ast.Name) else ""
        )
        if name in ("Exception", "BaseException") or name.endswith(
            ("Error", "Exception", "Warning")
        ):
            return True
    return False


@checker(
    "SLOTS-001",
    "hot-module class missing __slots__ while module peers declare it",
)
def check_slots(src: SourceFile) -> Iterator[Finding]:
    """In hot modules, every class must opt into ``__slots__`` once any
    peer does.

    A single slot-less class in a hot module silently re-introduces a
    per-instance ``__dict__`` (and, as a base class, disables slot
    storage for subclasses), undoing PR 4's memory/attribute-speed work.
    """
    if src.module not in SLOTS_MODULES and not _in_packages(
        src.module, ("repro.netsim",)
    ):
        return
    classes = [
        node for node in src.tree.body if isinstance(node, ast.ClassDef)
    ]
    if not any(_declares_slots(cls) for cls in classes):
        return
    for cls in classes:
        if _declares_slots(cls) or _slots_exempt(cls):
            continue
        yield src.finding(
            "SLOTS-001",
            cls,
            f"class {cls.name} has no __slots__ but its module peers "
            "declare it; add __slots__ (or '__slots__ = ()' for "
            "attribute-less subclasses) to keep instances dict-free",
        )


# -- FAST-001 ----------------------------------------------------------------


def _queue_aliases(scope: ast.AST) -> Tuple[Set[str], Set[str]]:
    """(names bound to ``*._queue``, names bound to ``heapq.heappush``)."""
    queues: Set[str] = set()
    pushes: Set[str] = set()
    for node in ast.walk(scope):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        targets = [
            t.id for t in node.targets if isinstance(t, ast.Name)
        ]
        if not targets:
            continue
        if isinstance(value, ast.Attribute) and value.attr == "_queue":
            queues.update(targets)
        elif isinstance(value, ast.Attribute) and value.attr == "heappush":
            pushes.update(targets)
    return queues, pushes


def fast_path_sites(
    src: SourceFile,
) -> Iterator[Tuple[str, ast.Call, str]]:
    """Every candidate fast-path push in ``src``.

    Yields ``(qualname, call_node, kind)`` with ``kind`` one of
    ``"_push"`` / ``"heappush"``.  FAST-001 flags the sites missing from
    :data:`FAST_PATH_ALLOWLIST`; STALE-001 (``repro.lint.flow``) flags
    the allowlist entries matching none of these sites, so both rules
    share one definition of "site" and cannot drift.
    """
    imports = ImportMap(src.tree)
    # Conservative whole-file alias sets: a name bound to ``*._queue`` or
    # ``heapq.heappush`` anywhere marks it suspect everywhere (no
    # per-scope dataflow; over-flagging is the safe direction here, and
    # the escape hatch is the allowlist, not evasion).
    queue_names, push_names = _queue_aliases(src.tree)
    for node, qual in walk_with_qualname(src.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "_push":
            yield qual, node, "_push"
            continue
        is_heappush = imports.resolve(func) == "heapq.heappush" or (
            isinstance(func, ast.Name) and func.id in push_names
        )
        if not is_heappush or not node.args:
            continue
        target = node.args[0]
        onto_queue = (
            isinstance(target, ast.Attribute) and target.attr == "_queue"
        ) or (isinstance(target, ast.Name) and target.id in queue_names)
        if onto_queue:
            yield qual, node, "heappush"


@checker(
    "FAST-001",
    "unvalidated event-queue push outside the audited allowlist",
)
def check_fast_path(src: SourceFile) -> Iterator[Finding]:
    """Keep ``Environment._push`` / open-coded heap pushes enumerable.

    ``_push`` and direct ``heappush(env._queue, ...)`` skip the kernel's
    NaN/negative-delay validation; each such call site must be audited
    (delay provably finite and >= now) and listed in
    :data:`FAST_PATH_ALLOWLIST`.  Anything else should call
    ``Environment.schedule``/``schedule_at``/``schedule_batch``.
    """
    for qual, node, kind in fast_path_sites(src):
        if (src.module, qual) in FAST_PATH_ALLOWLIST:
            continue
        if kind == "_push":
            yield src.finding(
                "FAST-001",
                node,
                "Environment._push bypasses delay validation; call "
                "schedule()/schedule_at() or add this audited site "
                "to repro.lint.checkers.FAST_PATH_ALLOWLIST",
            )
        else:
            yield src.finding(
                "FAST-001",
                node,
                "open-coded heappush onto an event queue bypasses kernel "
                "validation; call schedule()/schedule_at() or add this "
                "audited site to repro.lint.checkers.FAST_PATH_ALLOWLIST",
            )


# -- JSON-001 ----------------------------------------------------------------


@checker(
    "JSON-001",
    "json.dump(s) without NaN protection",
)
def check_json_dump(src: SourceFile) -> Iterator[Finding]:
    """Every ``json.dump``/``json.dumps`` call must be NaN-safe.

    Python's ``json`` emits bare ``NaN``/``Infinity`` literals by
    default -- invalid RFC 8259 that other tools reject (the PR 3 cache
    bug class: a zero-delivery cell reports NaN latencies).  A call is
    compliant when it passes ``allow_nan=False`` (fail loudly) or
    serializes through ``json_safe``/``canonical_json`` (NaN -> null).
    """
    imports = ImportMap(src.tree)
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = imports.resolve(node.func)
        if resolved not in ("json.dump", "json.dumps"):
            continue
        safe = any(
            kw.arg == "allow_nan"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
            for kw in node.keywords
        )
        if not safe and node.args:
            payload = node.args[0]
            if isinstance(payload, ast.Call):
                fn = payload.func
                name = (
                    fn.attr if isinstance(fn, ast.Attribute)
                    else fn.id if isinstance(fn, ast.Name) else ""
                )
                safe = name in ("json_safe", "canonical_json")
        if not safe:
            yield src.finding(
                "JSON-001",
                node,
                f"{resolved} without allow_nan=False can emit invalid "
                "NaN/Infinity JSON; serialize via repro.runner.spec."
                "canonical_json/json_safe or pass allow_nan=False",
            )
