"""Whole-project symbol/import/call graph for flow-aware lint rules.

The PR 5 rules are single-file syntactic checks; the properties that
keep the fork-worker runner (PR 6) and the sharded PDES engine (PR 9)
byte-identical are *cross-module*: a seed literal two modules away from
the ``Random`` it feeds, a module-level cache mutated by a helper that a
worker entry point reaches through three calls.  This module builds the
project-wide view those rules need:

* :class:`ModuleIndex` -- one module's symbol table: import aliases,
  every function/method by dotted qualname, and the module-level globals
  (with mutable-container classification);
* :class:`FunctionInfo` -- one function's outbound edges: resolved
  references to other project symbols, bare method-attribute calls, and
  writes to module-level state (own module or cross-module through
  import aliases);
* :class:`ProjectGraph` -- the indexed modules plus transitive
  *worker reachability* from the declared :data:`ENTRY_POINTS`.

Reachability is deliberately over-approximate in the sound direction:
method calls resolve by bare name against every project class (no type
inference), referencing a function (e.g. passing it to a pool) counts
as calling it, and touching a class marks all of its methods reachable.
A false "reachable" costs an allowlist entry; a false "unreachable"
would let fork-unsafe state ship.  Module-level (import-time) code is
*not* a reachability root: it runs once per process before any fork, so
import-time registration latches are fork-safe by construction
(DESIGN.md section 15).

Test modules (``tests.*``) are indexed but excluded from bare-name
resolution, so a test helper sharing a method name with a hot-path
method does not pull the test tree into the worker-reachable set.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import ImportMap, SourceFile, walk_with_qualname

__all__ = [
    "ENTRY_POINTS",
    "FunctionInfo",
    "ModuleIndex",
    "ProjectGraph",
]

ENTRY_POINTS: Tuple[Tuple[str, str], ...] = (
    # Fork-pool workers (PR 6): every job executor runs in a forked
    # child via the pool's worker wrapper.
    ("repro.runner.jobs", "execute_job"),
    ("repro.runner.jobs", "_execute_*"),
    ("repro.runner.engine", "_timed_execute"),
    # Sharded PDES workers (PR 9): the process-backend main and every
    # shard-worker method run inside forked shard processes.
    ("repro.shard.engine", "_worker_main"),
    ("repro.shard.engine", "_ShardWorker.*"),
)
"""Declared worker/shard entry points as (module, qualname-glob) pairs.

This is the *entry-point declaration contract* (DESIGN.md section 15):
any new code path that executes inside a forked worker process must be
reachable from one of these patterns, or add its root here in the same
PR that introduces it.  Qualnames match with :func:`fnmatch.fnmatchcase`
so ``_execute_*`` tracks new job executors automatically.
"""

_MUTATOR_METHODS = frozenset({
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "extendleft",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
})
"""Container methods that mutate their receiver in place."""

_MUTABLE_FACTORIES = frozenset({
    "collections.Counter",
    "collections.OrderedDict",
    "collections.defaultdict",
    "collections.deque",
    "dict",
    "list",
    "set",
})
"""Callables whose result is a mutable container."""


def _is_mutable_container(node: ast.expr, imports: ImportMap) -> bool:
    """Syntactic 'this expression builds a mutable container' test."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = imports.resolve(node.func)
        return resolved in _MUTABLE_FACTORIES
    return False


class FunctionInfo:
    """Outbound edges and state writes of one function/method.

    ``refs`` holds import-resolved dotted names the body mentions (call
    targets *and* bare references, so callbacks handed to a pool count);
    ``attr_calls`` holds bare method names from ``obj.method(...)``
    calls, resolved later against the project-wide name index;
    ``global_writes`` holds ``(module, global_name, node)`` triples for
    every write this function performs against module-level state.
    """

    def __init__(self, module: str, qualname: str,
                 node: ast.AST) -> None:
        self.module = module
        self.qualname = qualname
        self.node = node
        self.refs: Set[str] = set()
        self.attr_calls: Set[str] = set()
        self.global_writes: List[Tuple[str, str, ast.AST]] = []


def _own_statements(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Nodes of a function body in source order, skipping nested defs.

    Nested functions get :class:`FunctionInfo` records of their own;
    their writes must not be attributed to the enclosing function.
    Source (preorder) traversal matters to SEED-001's reused-seed check,
    which flags the *second* construction sharing a seed variable.
    """
    stack = list(reversed(list(ast.iter_child_nodes(fn_node))))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            stack.extend(
                reversed(list(ast.iter_child_nodes(node)))
            )


class ModuleIndex:
    """Symbol table + per-function edge records for one module."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.module = source.module
        self.imports = ImportMap(source.tree)
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Set[str] = set()
        #: module-level global name -> definition line
        self.globals: Dict[str, int] = {}
        #: subset of :attr:`globals` bound to a mutable container
        self.mutable_globals: Set[str] = set()
        self._index_module_level()
        self._index_functions()

    def _index_module_level(self) -> None:
        for stmt in self.source.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                self.globals[target.id] = stmt.lineno
                if value is not None and _is_mutable_container(
                    value, self.imports
                ):
                    self.mutable_globals.add(target.id)

    def _index_functions(self) -> None:
        for node, qual in walk_with_qualname(self.source.tree):
            if isinstance(node, ast.ClassDef):
                self.classes.add(qual)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[qual] = self._index_one(node, qual)

    def _index_one(self, fn_node: ast.AST, qual: str) -> FunctionInfo:
        info = FunctionInfo(self.module, qual, fn_node)
        declared_global: Set[str] = set()
        for node in _own_statements(fn_node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in _own_statements(fn_node):
            if isinstance(node, ast.Call):
                self._record_call(info, node)
            elif isinstance(node, (ast.Name, ast.Attribute)) and isinstance(
                getattr(node, "ctx", None), ast.Load
            ):
                resolved = self.imports.resolve(node)
                if resolved is not None:
                    info.refs.add(resolved)
            self._record_write(info, node, declared_global)
        return info

    def _record_call(self, info: FunctionInfo, node: ast.Call) -> None:
        func = node.func
        resolved = self.imports.resolve(func)
        if resolved is not None:
            info.refs.add(resolved)
        if isinstance(func, ast.Attribute):
            info.attr_calls.add(func.attr)

    def _record_write(
        self,
        info: FunctionInfo,
        node: ast.AST,
        declared_global: Set[str],
    ) -> None:
        """Record writes to module-level state (own or cross-module)."""
        # ``global NAME`` + assignment: rebinding module state, mutable
        # or not (a bool latch flipped in a worker is just as lost on
        # fork-exit as a dict entry).
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and (
                    target.id in declared_global
                ):
                    info.global_writes.append(
                        (self.module, target.id, node)
                    )
                else:
                    self._record_container_write(info, target, node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_container_write(info, target, node)
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr in _MUTATOR_METHODS:
            owner = self._global_for(node.func.value)
            if owner is not None:
                info.global_writes.append((owner[0], owner[1], node))

    def _record_container_write(
        self, info: FunctionInfo, target: ast.expr, node: ast.AST
    ) -> None:
        """``G[k] = v`` / ``G.attr = v`` / ``del G[k]`` on a global."""
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            owner = self._global_for(target.value)
            if owner is not None:
                info.global_writes.append((owner[0], owner[1], node))

    def _global_for(
        self, node: ast.expr
    ) -> Optional[Tuple[str, str]]:
        """(module, name) when ``node`` denotes a module-level global.

        Handles the local spelling (``CACHE``), the imported-name
        spelling (``from m import CACHE; CACHE``), and the
        module-attribute spelling (``import m; m.CACHE``).
        """
        if isinstance(node, ast.Name):
            if node.id in self.globals:
                return (self.module, node.id)
            imported = self.imports.names.get(node.id)
            if imported is not None and "." in imported:
                module, _, name = imported.rpartition(".")
                return (module, name)
            return None
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            module = self.imports.modules.get(node.value.id)
            if module is None:
                # ``from repro import workerstate as ws; ws.X = ...``
                module = self.imports.names.get(node.value.id)
            if module is not None:
                return (module, node.attr)
        return None


class ProjectGraph:
    """The indexed project plus worker-reachability closure."""

    def __init__(
        self,
        sources: Sequence[SourceFile],
        entry_points: Sequence[Tuple[str, str]] = ENTRY_POINTS,
    ) -> None:
        self.modules: Dict[str, ModuleIndex] = {}
        for source in sources:
            # Last parse wins on (pathological) duplicate module names;
            # discovery order is sorted so this stays deterministic.
            self.modules[source.module] = ModuleIndex(source)
        #: (module, qualname) -> FunctionInfo across the whole project
        self.functions: Dict[Tuple[str, str], FunctionInfo] = {}
        for index in self.modules.values():
            for qual, info in index.functions.items():
                self.functions[(index.module, qual)] = info
        self._name_index = self._build_name_index()
        self.reachable: Set[Tuple[str, str]] = set()
        self._compute_reachability(entry_points)

    # -- construction ------------------------------------------------------

    def _build_name_index(self) -> Dict[str, List[Tuple[str, str]]]:
        """Final qualname segment -> candidate definitions.

        ``tests.*`` modules are excluded so bare method names in hot
        code never resolve into the test tree.
        """
        index: Dict[str, List[Tuple[str, str]]] = {}
        for (module, qual) in sorted(self.functions):
            if module == "tests" or module.startswith("tests."):
                continue
            index.setdefault(qual.rsplit(".", 1)[-1], []).append(
                (module, qual)
            )
        return index

    def _resolve_ref(self, module: str, ref: str) -> List[Tuple[str, str]]:
        """Project definitions a resolved dotted reference may denote.

        A bare name resolves within its own module (sibling function or
        class); a dotted name resolves by longest module prefix
        (``repro.sim.core.Environment`` -> module ``repro.sim.core``,
        symbol ``Environment``).
        """
        if "." not in ref:
            own = self.modules.get(module)
            if own is not None and (
                ref in own.functions or ref in own.classes
            ):
                return [(module, ref)]
            return []
        parts = ref.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            owner = ".".join(parts[:cut])
            if owner in self.modules:
                qual = ".".join(parts[cut:])
                index = self.modules[owner]
                if qual in index.functions or qual in index.classes:
                    return [(owner, qual)]
                return []
        return []

    def _class_members(
        self, module: str, class_qual: str
    ) -> List[Tuple[str, str]]:
        index = self.modules[module]
        prefix = class_qual + "."
        return [
            (module, qual) for qual in index.functions
            if qual.startswith(prefix)
        ]

    def _compute_reachability(
        self, entry_points: Sequence[Tuple[str, str]]
    ) -> None:
        worklist: List[Tuple[str, str]] = []

        def push(target: Tuple[str, str]) -> None:
            module, qual = target
            owner = self.modules.get(module)
            if owner is not None and qual in owner.classes:
                # Touching a class makes every method callable: the
                # instance escapes into worker code we cannot type.
                for member in self._class_members(module, qual):
                    push(member)
                return
            if target in self.functions and target not in self.reachable:
                self.reachable.add(target)
                worklist.append(target)

        for mod_pat, qual_pat in entry_points:
            for (module, qual) in sorted(self.functions):
                if fnmatchcase(module, mod_pat) and fnmatchcase(
                    qual, qual_pat
                ):
                    push((module, qual))

        while worklist:
            module, qual = worklist.pop()
            info = self.functions[(module, qual)]
            for ref in sorted(info.refs):
                for target in self._resolve_ref(module, ref):
                    push(target)
            for attr in sorted(info.attr_calls):
                for target in self._name_index.get(attr, []):
                    push(target)

    # -- query API for checkers -------------------------------------------

    def source(self, module: str) -> SourceFile:
        """The :class:`SourceFile` backing ``module``."""
        return self.modules[module].source

    def is_reachable(self, module: str, qualname: str) -> bool:
        """True when ``qualname`` (or an enclosing def) is worker-reachable.

        Checks qualname ancestors so code inside a nested function of a
        reachable function counts as reachable too.
        """
        parts = qualname.split(".")
        for cut in range(len(parts), 0, -1):
            if (module, ".".join(parts[:cut])) in self.reachable:
                return True
        return False

    def reachable_functions(self) -> List[FunctionInfo]:
        """Worker-reachable functions in deterministic order."""
        return [
            self.functions[key] for key in sorted(self.reachable)
        ]

    def writers_of(self, module: str, name: str) -> List[FunctionInfo]:
        """Every function (reachable or not) writing global ``name``."""
        return [
            info for _key, info in sorted(self.functions.items())
            if any(
                wmod == module and wname == name
                for wmod, wname, _node in info.global_writes
            )
        ]
