"""Command-line front end for the ``repro.lint`` analyzer.

Installed as the ``repro-lint`` console script, and reused verbatim by
the ``repro-bench lint`` subcommand (see :mod:`repro.cli`): both call
:func:`add_lint_arguments` to build the option surface and
:func:`run_from_args` to execute, so the two entry points cannot drift.

Exit codes: 0 = clean, 1 = findings (or parse failures), 2 = bad usage
(unknown rule id, no Python files found).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.engine import run_lint
from repro.lint.report import render_json, render_text

__all__ = ["add_lint_arguments", "build_parser", "main", "run_from_args"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared lint options to *parser*.

    Kept separate from :func:`build_parser` so ``repro-bench lint`` can
    mount the same options on its subparser.
    """
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=(
            "files or directories to lint (default: src tests plus "
            "benchmarks/examples when present)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        dest="format",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--include-fixtures",
        action="store_true",
        help="also lint tests/lint_fixtures (excluded by default)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print RULE's summary and rationale, then exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism & invariant static analysis for the Baldur repro"
        ),
    )
    add_lint_arguments(parser)
    return parser


DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")
"""Default lint roots; the optional ones are skipped when absent."""


def _default_paths() -> List[str]:
    paths = [p for p in DEFAULT_PATHS if Path(p).exists()]
    return paths or list(DEFAULT_PATHS[:2])


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed *args*; returns exit code."""
    # Populate the registry before listing or running rules.
    import repro.lint.checkers  # noqa: F401
    import repro.lint.flow  # noqa: F401
    from repro.lint.engine import DEFAULT_EXCLUDED_DIRS, registry

    if args.list_rules:
        for rule in registry.rules():
            print(f"{rule.id}: {rule.summary}")
        return 0

    if args.explain is not None:
        try:
            rule = registry.get(args.explain)
        except KeyError:
            known = ", ".join(r.id for r in registry.rules())
            print(
                f"error: unknown rule {args.explain!r} (known: {known})",
                file=sys.stderr,
            )
            return 2
        print(f"{rule.id}: {rule.summary}")
        if rule.rationale:
            print()
            print(rule.rationale)
        return 0

    if not args.paths:
        args.paths = _default_paths()

    select: Optional[List[str]] = None
    if args.select is not None:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        if not select:
            print("error: --select given but no rule ids parsed", file=sys.stderr)
            return 2

    exclude = set(DEFAULT_EXCLUDED_DIRS)
    if args.include_fixtures:
        exclude.discard("lint_fixtures")

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            f"error: path(s) not found: {', '.join(missing)}", file=sys.stderr
        )
        return 2

    try:
        report = run_lint(
            args.paths, select=select, exclude_dirs=frozenset(exclude)
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if report.n_files == 0:
        print("error: no Python files found under given paths", file=sys.stderr)
        return 2

    rendered = (
        render_json(report) if args.format == "json" else render_text(report)
    )
    if args.out is not None:
        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
    else:
        print(rendered)
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return run_from_args(args)


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
