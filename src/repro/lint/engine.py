"""The ``repro.lint`` analysis engine: file discovery, parsing, suppression.

Every figure this repro produces depends on invariants the interpreter
cannot see: one sanctioned RNG stream (``repro.sim.rand``), no wall-clock
reads inside simulation code, an enumerable set of audited fast-path heap
pushes, and RFC 8259 JSON on every result file.  Runtime tests catch
violations late (after an expensive golden-figure diff); this engine
catches them at commit time by walking the AST of every source file
through a registry of repo-specific checkers (:mod:`repro.lint.checkers`).

Architecture (DESIGN.md section 11):

* :class:`SourceFile` -- one parsed file: path, derived dotted module
  name, AST, and its suppression table;
* :class:`CheckerRegistry` -- rule id -> checker function; checkers are
  plain generators registered with the :func:`checker` decorator, so
  adding a rule is one decorated function;
* :func:`run_lint` -- discovery + execution + suppression filtering,
  returning a :class:`LintReport` that the reporters in
  :mod:`repro.lint.report` render as text or JSON.

Suppression syntax: a ``# repro-lint: disable=RULE[,RULE...]`` comment on
its own line disables the listed rules (or ``all``) for the whole file; as
a trailing comment it disables them for that line only.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "CheckerRegistry",
    "Finding",
    "ImportMap",
    "LintReport",
    "PARSE_RULE",
    "Rule",
    "SourceFile",
    "checker",
    "iter_source_files",
    "module_name_for",
    "registry",
    "run_lint",
    "walk_with_qualname",
]

PARSE_RULE = "E-PARSE"
"""Pseudo-rule reported for files the ``ast`` module cannot parse."""

DEFAULT_EXCLUDED_DIRS = frozenset({
    "__pycache__",
    ".git",
    ".ruff_cache",
    ".mypy_cache",
    "build",
    "dist",
    # The checker test corpus contains deliberate violations; it is only
    # linted by tests/test_lint.py, which opts back in explicitly.
    "lint_fixtures",
})
"""Directory names skipped during discovery (see ``exclude_dirs``)."""

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_, \-]+)")


@dataclass(frozen=True)
class Rule:
    """Identity and one-line summary of one registered checker."""

    id: str
    summary: str


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    module: str

    @property
    def location(self) -> str:
        """``path:line:col`` (the clickable prefix of the text report)."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload (one element of the JSON report)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "module": self.module,
        }


class SourceFile:
    """One parsed source file plus its per-file/per-line suppressions."""

    def __init__(self, path: Path, module: str, text: str):
        self.path = path
        self.module = module
        self.text = text
        self.tree: ast.Module = ast.parse(text, filename=str(path))
        self.file_disabled: Set[str] = set()
        self.line_disabled: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = {
                part.strip() for part in match.group(1).split(",")
                if part.strip()
            }
            code = line[: match.start()].strip()
            if code:
                self.line_disabled.setdefault(lineno, set()).update(rules)
            else:
                self.file_disabled.update(rules)

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` for ``node`` (checker convenience)."""
        return Finding(
            rule=rule,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            module=self.module,
        )

    def suppressed(self, rule: str, line: int) -> bool:
        """True if ``rule`` is disabled for this file or this line."""
        if "all" in self.file_disabled or rule in self.file_disabled:
            return True
        at_line = self.line_disabled.get(line)
        return at_line is not None and (
            "all" in at_line or rule in at_line
        )


CheckerFn = Callable[[SourceFile], Iterator[Finding]]


class CheckerRegistry:
    """Plugin registry mapping rule ids to checker functions.

    Checkers self-register at import time via the :func:`checker`
    decorator; :func:`run_lint` consults the registry so third parties
    (or tests) can run with a private registry or a rule subset.
    """

    def __init__(self) -> None:
        self._checkers: Dict[str, Tuple[Rule, CheckerFn]] = {}

    def register(
        self, rule_id: str, summary: str
    ) -> Callable[[CheckerFn], CheckerFn]:
        """Decorator registering a checker under ``rule_id``."""

        def decorate(fn: CheckerFn) -> CheckerFn:
            if rule_id in self._checkers:
                raise ValueError(f"duplicate checker for rule {rule_id!r}")
            self._checkers[rule_id] = (Rule(rule_id, summary), fn)
            return fn

        return decorate

    def rules(self) -> List[Rule]:
        """Every registered rule, sorted by id."""
        return [self._checkers[key][0] for key in sorted(self._checkers)]

    def items(
        self, select: Optional[Iterable[str]] = None
    ) -> List[Tuple[Rule, CheckerFn]]:
        """(rule, checker) pairs, optionally restricted to ``select``."""
        if select is None:
            return [self._checkers[key] for key in sorted(self._checkers)]
        unknown = sorted(set(select) - set(self._checkers))
        if unknown:
            raise KeyError(f"unknown rule(s): {', '.join(unknown)}")
        return [self._checkers[key] for key in sorted(set(select))]


registry = CheckerRegistry()
"""The default registry (populated by importing :mod:`repro.lint.checkers`)."""

checker = registry.register
"""Decorator registering a checker in the default registry."""


# -- shared AST utilities used by checkers ----------------------------------


def walk_with_qualname(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, str]]:
    """Yield every node with the dotted qualname of its enclosing scope.

    The qualname is built from enclosing class/function definitions
    (``""`` at module level, ``"Class.method"`` inside a method), which
    is what allowlists key on.
    """

    def visit(node: ast.AST, qual: str) -> Iterator[Tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            child_qual = qual
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                child_qual = f"{qual}.{child.name}" if qual else child.name
            yield child, child_qual
            yield from visit(child, child_qual)

    yield tree, ""
    yield from visit(tree, "")


class ImportMap:
    """Alias resolution for one module's imports.

    Maps local names back to the dotted things they refer to, so checkers
    can recognise ``np.random.seed`` and ``from time import perf_counter``
    no matter how the import was spelled.
    """

    def __init__(self, tree: ast.Module):
        self.modules: Dict[str, str] = {}
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.modules[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname is None and "." in alias.name:
                        # ``import numpy.random`` binds ``numpy`` locally
                        # but makes the submodule reachable through it.
                        self.modules[alias.name.split(".")[0]] = (
                            alias.name.split(".")[0]
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports stay package-local
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The dotted source of an attribute/name chain, or ``None``.

        ``np.random.default_rng`` resolves to
        ``"numpy.random.default_rng"`` when ``np`` aliases ``numpy``;
        ``perf_counter`` resolves to ``"time.perf_counter"`` after
        ``from time import perf_counter``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.modules:
            parts.append(self.modules[base])
        elif base in self.names:
            parts.append(self.names[base])
        else:
            parts.append(base)
        return ".".join(reversed(parts))


# -- discovery ---------------------------------------------------------------


def module_name_for(path: Path) -> str:
    """Dotted module name derived from ``path``.

    Files under a ``src`` directory map to their import path
    (``src/repro/sim/core.py`` -> ``repro.sim.core``); anything else maps
    to its path parts relative to the last recognisable anchor (so test
    files become ``tests.test_x``).  The fixture corpus exploits the
    ``src`` anchor: ``tests/lint_fixtures/src/repro/netsim/x.py`` lints
    as module ``repro.netsim.x``, which is how fixtures exercise
    module-scoped rules.
    """
    parts = list(path.with_suffix("").parts)
    for anchor in ("src", "tests"):
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            tail = parts[index + 1:] if anchor == "src" else parts[index:]
            if tail:
                return ".".join(part for part in tail if part != "__init__") \
                    or tail[0]
    return parts[-1] if parts[-1] != "__init__" else ".".join(parts[-2:-1])


def iter_source_files(
    paths: Sequence[Path],
    exclude_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, pruning excluded directories."""
    excluded = set(exclude_dirs)
    for root in paths:
        root = Path(root)
        if root.is_file():
            yield root
            continue
        for path in sorted(root.rglob("*.py")):
            relative = path.relative_to(root)
            if any(part in excluded for part in relative.parts[:-1]):
                continue
            yield path


# -- execution ---------------------------------------------------------------


@dataclass
class LintReport:
    """The outcome of one :func:`run_lint` call."""

    findings: List[Finding] = field(default_factory=list)
    rules: List[Rule] = field(default_factory=list)
    n_files: int = 0
    suppressed: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any finding survived suppression."""
        return 1 if self.findings else 0

    def by_rule(self) -> Dict[str, int]:
        """Finding counts per rule id, sorted."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {rule: counts[rule] for rule in sorted(counts)}


def run_lint(
    paths: Sequence[Path],
    select: Optional[Iterable[str]] = None,
    exclude_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
    reg: Optional[CheckerRegistry] = None,
) -> LintReport:
    """Run the registered checkers over ``paths`` and collect findings.

    ``select`` restricts to a subset of rule ids; ``exclude_dirs``
    replaces the default directory prune list (pass ``()`` to lint the
    fixture corpus); ``reg`` substitutes a private registry (tests).
    Findings are sorted by (path, line, col, rule) so reports are
    deterministic.
    """
    if reg is None:
        reg = registry
    checkers = reg.items(select)
    report = LintReport(rules=[rule for rule, _ in checkers])
    for path in iter_source_files(paths, exclude_dirs):
        report.n_files += 1
        try:
            src = SourceFile(
                path, module_name_for(path),
                path.read_text(encoding="utf-8"),
            )
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            report.findings.append(Finding(
                rule=PARSE_RULE, path=str(path), line=line, col=0,
                message=f"cannot parse: {exc}", module=module_name_for(path),
            ))
            continue
        for _rule, fn in checkers:
            for finding in fn(src):
                if src.suppressed(finding.rule, finding.line):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)
    report.findings.sort(
        key=lambda f: (f.path, f.line, f.col, f.rule)
    )
    return report
