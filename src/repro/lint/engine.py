"""The ``repro.lint`` analysis engine: file discovery, parsing, suppression.

Every figure this repro produces depends on invariants the interpreter
cannot see: one sanctioned RNG stream (``repro.sim.rand``), no wall-clock
reads inside simulation code, an enumerable set of audited fast-path heap
pushes, and RFC 8259 JSON on every result file.  Runtime tests catch
violations late (after an expensive golden-figure diff); this engine
catches them at commit time by walking the AST of every source file
through a registry of repo-specific checkers (:mod:`repro.lint.checkers`).

Architecture (DESIGN.md sections 11 and 15):

* :class:`SourceFile` -- one parsed file: path, derived dotted module
  name, AST, and its suppression table;
* :class:`CheckerRegistry` -- rule id -> checker function; checkers are
  plain generators registered with the :func:`checker` decorator, so
  adding a rule is one decorated function.  A checker declares a
  *scope*: ``"file"`` checkers see one :class:`SourceFile` at a time
  (the PR 5 rules); ``"project"`` checkers see the whole-tree
  :class:`~repro.lint.graph.ProjectGraph` built after every file has
  been indexed (the flow-aware rules); the ``"audit"`` checker runs
  last over the indexed sources, after every other rule has recorded
  which suppression comments it actually used (SUPP-001);
* :func:`run_lint` -- two-phase execution: phase 1 parses and indexes
  every discovered file, phase 2 runs file checkers per file, then
  project checkers over the graph, then the suppression audit --
  returning a :class:`LintReport` that the reporters in
  :mod:`repro.lint.report` render as text or JSON.

Suppression syntax: a ``# repro-lint: disable=RULE[,RULE...]`` comment on
its own line disables the listed rules (or ``all``) for the whole file; as
a trailing comment it disables them for that line only.  Comments are
recognised with the tokenizer, so the same text inside a string literal
is inert.  Every suppression must earn its keep: a comment that silences
nothing is itself a finding (SUPP-001) on full runs, so suppressions
cannot rot in place after the code they excused is gone.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "CheckerRegistry",
    "Finding",
    "ImportMap",
    "LintReport",
    "PARSE_RULE",
    "Rule",
    "SourceFile",
    "Suppression",
    "checker",
    "iter_source_files",
    "module_name_for",
    "registry",
    "run_lint",
    "walk_with_qualname",
]

PARSE_RULE = "E-PARSE"
"""Pseudo-rule reported for files the ``ast`` module cannot parse."""

DEFAULT_EXCLUDED_DIRS = frozenset({
    "__pycache__",
    ".git",
    ".ruff_cache",
    ".mypy_cache",
    "build",
    "dist",
    # The checker test corpus contains deliberate violations; it is only
    # linted by tests/test_lint.py, which opts back in explicitly.
    "lint_fixtures",
})
"""Directory names skipped during discovery (see ``exclude_dirs``)."""

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_, \-]+)")


@dataclass(frozen=True)
class Rule:
    """Identity, one-line summary, and rationale of one registered checker.

    ``rationale`` is the checker function's docstring, surfaced by
    ``repro-lint --explain RULE`` so the "why" travels with the rule
    instead of living only in DESIGN.md.
    """

    id: str
    summary: str
    rationale: str = ""


@dataclass
class Suppression:
    """One ``# repro-lint: disable=...`` comment in a file.

    ``used`` flips to True the first time the comment actually silences
    a finding; comments still False after every checker has run are
    dead weight and reported by SUPP-001.
    """

    line: int
    rules: FrozenSet[str]
    file_level: bool
    used: bool = False

    def matches(self, rule: str, line: int) -> bool:
        """True if this comment disables ``rule`` at ``line``."""
        if "all" not in self.rules and rule not in self.rules:
            return False
        return self.file_level or line == self.line


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    module: str

    @property
    def location(self) -> str:
        """``path:line:col`` (the clickable prefix of the text report)."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload (one element of the JSON report)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "module": self.module,
        }


def _parse_suppressions(text: str) -> List[Suppression]:
    """Every suppression comment in ``text``, in source order.

    Comments are located with :mod:`tokenize` so the suppression syntax
    inside a string literal (e.g. a lint test writing fixture sources)
    never counts.  A comment on its own line (only whitespace before the
    ``#``) is file-level; a trailing comment is line-level.
    """
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # ast.parse accepted the file, so this is unreachable in
        # practice; fall back to treating it as comment-free.
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group(1).split(",")
            if part.strip()
        )
        if not rules:
            continue
        file_level = token.line[: token.start[1]].strip() == ""
        suppressions.append(Suppression(
            line=token.start[0], rules=rules, file_level=file_level,
        ))
    return suppressions


class SourceFile:
    """One parsed source file plus its per-file/per-line suppressions."""

    def __init__(self, path: Path, module: str, text: str):
        self.path = path
        self.module = module
        self.text = text
        self.tree: ast.Module = ast.parse(text, filename=str(path))
        self.suppressions: List[Suppression] = _parse_suppressions(text)

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` for ``node`` (checker convenience)."""
        return Finding(
            rule=rule,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            module=self.module,
        )

    def suppressed(self, rule: str, line: int) -> bool:
        """True if ``rule`` is disabled for this file or this line.

        Marks every matching suppression comment as used, which is what
        the SUPP-001 audit keys on.
        """
        hit = False
        for suppression in self.suppressions:
            if suppression.matches(rule, line):
                suppression.used = True
                hit = True
        return hit


CheckerFn = Callable[[SourceFile], Iterator[Finding]]
"""A ``"file"``-scope checker: one :class:`SourceFile` -> findings."""

AnyCheckerFn = Callable[[Any], Iterator[Finding]]
"""Any checker; ``"project"`` scope takes a ``ProjectGraph``, ``"audit"``
scope takes the full ``Sequence[SourceFile]``."""

SCOPES = ("file", "project", "audit")
"""Valid checker scopes, in the order :func:`run_lint` executes them."""


class CheckerRegistry:
    """Plugin registry mapping rule ids to checker functions.

    Checkers self-register at import time via the :func:`checker`
    decorator; :func:`run_lint` consults the registry so third parties
    (or tests) can run with a private registry or a rule subset.  Each
    checker carries a *scope* deciding what :func:`run_lint` feeds it:
    ``"file"`` (one :class:`SourceFile` per call), ``"project"`` (the
    whole-tree :class:`~repro.lint.graph.ProjectGraph`, built once), or
    ``"audit"`` (every parsed :class:`SourceFile`, after all other
    rules have run -- only on unrestricted runs, because "unused
    suppression" is meaningless when most rules were deselected).
    """

    def __init__(self) -> None:
        self._checkers: Dict[str, Tuple[Rule, AnyCheckerFn, str]] = {}

    def register(
        self, rule_id: str, summary: str, scope: str = "file"
    ) -> Callable[[AnyCheckerFn], AnyCheckerFn]:
        """Decorator registering a checker under ``rule_id``."""
        if scope not in SCOPES:
            raise ValueError(f"unknown checker scope {scope!r}")

        def decorate(fn: AnyCheckerFn) -> AnyCheckerFn:
            if rule_id in self._checkers:
                raise ValueError(f"duplicate checker for rule {rule_id!r}")
            rationale = " ".join((fn.__doc__ or "").split())
            rule = Rule(rule_id, summary, rationale)
            self._checkers[rule_id] = (rule, fn, scope)
            return fn

        return decorate

    def rules(self) -> List[Rule]:
        """Every registered rule, sorted by id."""
        return [self._checkers[key][0] for key in sorted(self._checkers)]

    def get(self, rule_id: str) -> Rule:
        """The :class:`Rule` for ``rule_id`` (KeyError when unknown)."""
        return self._checkers[rule_id][0]

    def items(
        self, select: Optional[Iterable[str]] = None
    ) -> List[Tuple[Rule, AnyCheckerFn, str]]:
        """(rule, checker, scope) triples, restricted to ``select``."""
        if select is None:
            return [self._checkers[key] for key in sorted(self._checkers)]
        unknown = sorted(set(select) - set(self._checkers))
        if unknown:
            raise KeyError(f"unknown rule(s): {', '.join(unknown)}")
        return [self._checkers[key] for key in sorted(set(select))]


registry = CheckerRegistry()
"""The default registry (populated by importing :mod:`repro.lint.checkers`)."""

checker = registry.register
"""Decorator registering a checker in the default registry."""


# -- shared AST utilities used by checkers ----------------------------------


def walk_with_qualname(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, str]]:
    """Yield every node with the dotted qualname of its enclosing scope.

    The qualname is built from enclosing class/function definitions
    (``""`` at module level, ``"Class.method"`` inside a method), which
    is what allowlists key on.
    """

    def visit(node: ast.AST, qual: str) -> Iterator[Tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            child_qual = qual
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                child_qual = f"{qual}.{child.name}" if qual else child.name
            yield child, child_qual
            yield from visit(child, child_qual)

    yield tree, ""
    yield from visit(tree, "")


class ImportMap:
    """Alias resolution for one module's imports.

    Maps local names back to the dotted things they refer to, so checkers
    can recognise ``np.random.seed`` and ``from time import perf_counter``
    no matter how the import was spelled.
    """

    def __init__(self, tree: ast.Module):
        self.modules: Dict[str, str] = {}
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.modules[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname is None and "." in alias.name:
                        # ``import numpy.random`` binds ``numpy`` locally
                        # but makes the submodule reachable through it.
                        self.modules[alias.name.split(".")[0]] = (
                            alias.name.split(".")[0]
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports stay package-local
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The dotted source of an attribute/name chain, or ``None``.

        ``np.random.default_rng`` resolves to
        ``"numpy.random.default_rng"`` when ``np`` aliases ``numpy``;
        ``perf_counter`` resolves to ``"time.perf_counter"`` after
        ``from time import perf_counter``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.modules:
            parts.append(self.modules[base])
        elif base in self.names:
            parts.append(self.names[base])
        else:
            parts.append(base)
        return ".".join(reversed(parts))


# -- discovery ---------------------------------------------------------------


def module_name_for(path: Path) -> str:
    """Dotted module name derived from ``path``.

    Files under a ``src`` directory map to their import path
    (``src/repro/sim/core.py`` -> ``repro.sim.core``); anything else maps
    to its path parts relative to the last recognisable anchor (so test
    files become ``tests.test_x`` and benchmark scripts become
    ``benchmarks.bench_x``).  The fixture corpus exploits the anchors:
    ``tests/lint_fixtures/src/repro/netsim/x.py`` lints as module
    ``repro.netsim.x`` and ``tests/lint_fixtures/benchmarks/y.py`` as
    ``benchmarks.y``, which is how fixtures exercise module-scoped rules.
    """
    parts = list(path.with_suffix("").parts)
    for anchor in ("src", "benchmarks", "examples", "tests"):
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            tail = parts[index + 1:] if anchor == "src" else parts[index:]
            if tail:
                return ".".join(part for part in tail if part != "__init__") \
                    or tail[0]
    return parts[-1] if parts[-1] != "__init__" else ".".join(parts[-2:-1])


def iter_source_files(
    paths: Sequence[Path],
    exclude_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, pruning excluded directories."""
    excluded = set(exclude_dirs)
    for root in paths:
        root = Path(root)
        if root.is_file():
            yield root
            continue
        for path in sorted(root.rglob("*.py")):
            relative = path.relative_to(root)
            if any(part in excluded for part in relative.parts[:-1]):
                continue
            yield path


# -- execution ---------------------------------------------------------------


@dataclass
class LintReport:
    """The outcome of one :func:`run_lint` call."""

    findings: List[Finding] = field(default_factory=list)
    rules: List[Rule] = field(default_factory=list)
    n_files: int = 0
    suppressed: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any finding survived suppression."""
        return 1 if self.findings else 0

    def by_rule(self) -> Dict[str, int]:
        """Finding counts per rule id, sorted."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {rule: counts[rule] for rule in sorted(counts)}


def run_lint(
    paths: Sequence[Path],
    select: Optional[Iterable[str]] = None,
    exclude_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
    reg: Optional[CheckerRegistry] = None,
) -> LintReport:
    """Run the registered checkers over ``paths`` and collect findings.

    Two-phase execution (DESIGN.md section 15): phase 1 parses every
    discovered file (parse failures become ``E-PARSE`` findings); phase
    2 runs ``"file"``-scope checkers per file, then builds the
    :class:`~repro.lint.graph.ProjectGraph` and runs the
    ``"project"``-scope flow rules over it, then -- on unrestricted runs
    only -- the ``"audit"`` pass (SUPP-001), which must see which
    suppression comments the earlier rules consumed.

    ``select`` restricts to a subset of rule ids; ``exclude_dirs``
    replaces the default directory prune list (pass ``()`` to lint the
    fixture corpus); ``reg`` substitutes a private registry (tests).
    Findings are sorted by (path, line, col, rule) so reports are
    deterministic.
    """
    if reg is None:
        reg = registry
    checkers = reg.items(select)
    report = LintReport(rules=[rule for rule, _fn, _scope in checkers])
    sources: List[SourceFile] = []
    by_path: Dict[str, SourceFile] = {}

    def admit(finding: Finding) -> None:
        src = by_path.get(finding.path)
        if src is not None and src.suppressed(finding.rule, finding.line):
            report.suppressed += 1
        else:
            report.findings.append(finding)

    # Phase 1: parse and index every file before any checker runs, so
    # project-scope rules see the complete module graph.
    for path in iter_source_files(paths, exclude_dirs):
        report.n_files += 1
        try:
            src = SourceFile(
                path, module_name_for(path),
                path.read_text(encoding="utf-8"),
            )
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            report.findings.append(Finding(
                rule=PARSE_RULE, path=str(path), line=line, col=0,
                message=f"cannot parse: {exc}", module=module_name_for(path),
            ))
            continue
        sources.append(src)
        by_path[str(src.path)] = src

    # Phase 2a: single-file syntactic rules.
    for src in sources:
        for _rule, fn, scope in checkers:
            if scope != "file":
                continue
            for finding in fn(src):
                admit(finding)

    # Phase 2b: whole-project flow rules over the symbol/call graph.
    # The graph is only built when a project rule is actually selected,
    # keeping `--select RNG-001`-style runs as cheap as before.
    if any(scope == "project" for _rule, _fn, scope in checkers):
        from repro.lint.graph import ProjectGraph

        graph = ProjectGraph(sources)
        for _rule, fn, scope in checkers:
            if scope != "project":
                continue
            for finding in fn(graph):
                admit(finding)

    # Phase 2c: the suppression audit.  Restricted runs skip it: with
    # most rules deselected, "unused" would misfire on every comment
    # whose rule did not get a chance to consume it.  Audit findings
    # bypass the suppression filter -- an unused ``disable=all`` comment
    # must not be able to suppress the report of its own unused-ness --
    # so the audit checker itself honours explicit SUPP-001 mentions.
    if select is None:
        for _rule, fn, scope in checkers:
            if scope != "audit":
                continue
            report.findings.extend(fn(sources))

    report.findings.sort(
        key=lambda f: (f.path, f.line, f.col, f.rule)
    )
    return report
