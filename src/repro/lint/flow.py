"""The flow-aware rule family: parallelism-safety over the project graph.

These rules machine-check the cross-module contracts that keep the
fork-worker runner (DESIGN.md section 7) and the sharded PDES engine
(section 14) byte-identical -- properties no single-file pass can see:

=========== ===============================================================
rule        contract it pins
=========== ===============================================================
SEED-001    every RNG construction's seed traces back to ``derive_seed``
FORK-001    no worker-reachable code writes module-level state
MERGE-001   merge/ledger/audit accumulation iterates in sorted order
FLOAT-001   no float accumulation over unordered collections in hot code
SUPP-001    every suppression comment actually suppresses something
STALE-001   every allowlist entry still matches a code site
=========== ===============================================================

SEED/FORK/STALE are ``"project"``-scope checkers running over the
:class:`~repro.lint.graph.ProjectGraph`; MERGE/FLOAT are single-file but
belong to the same parallelism-safety family; SUPP is the ``"audit"``
pass that runs after every other rule has consumed its suppressions.

Like the syntactic rules, these are deliberately heuristic: seed taint
follows assignments, call arguments and ``seed``-ish names rather than
types, and reachability is an over-approximation.  The escape hatches
are the audited allowlists (:data:`FORK_STATE_ALLOWLIST` here,
``FAST_PATH_ALLOWLIST`` in :mod:`repro.lint.checkers`) and the
``# repro-lint: disable=<rule>`` comment -- both of which are themselves
audited, by STALE-001 and SUPP-001.
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.engine import (
    Finding,
    SourceFile,
    checker,
    walk_with_qualname,
)
from repro.lint.checkers import (
    _in_packages,
    _set_locals,
    fast_path_sites,
)
from repro.lint.graph import ModuleIndex, ProjectGraph, _own_statements

__all__ = [
    "FLOAT_HOT_PREFIXES",
    "FORK_STATE_ALLOWLIST",
    "MERGE_SENSITIVE_FUNCTIONS",
    "SEED_MODULE_PREFIXES",
]

SEED_MODULE_PREFIXES = ("repro", "benchmarks", "examples")
"""Package prefixes where SEED-001 applies to *all* code.

Outside these, SEED-001 still applies to any function that is
worker-reachable (a test helper executed inside a shard would count).
"""

_RNG_CONSTRUCTORS = frozenset({
    "random.Random",
    "numpy.random.RandomState",
    "numpy.random.default_rng",
})
"""Callables that mint an RNG stream from a seed."""

_SANCTIONED_SEED_FNS = frozenset({"derive_seed", "shard_stream_seed"})
"""Functions whose return value is a sanctioned stream seed
(:func:`repro.sim.rand.derive_seed`,
:func:`repro.shard.runtime.shard_stream_seed`)."""

FORK_STATE_ALLOWLIST: FrozenSet[Tuple[str, str]] = frozenset({
    # Pure memo cache: the fingerprint is a function of the source tree
    # on disk, so a worker-local write can only lose a recomputation,
    # never change a result (see the audit comment at the site).
    ("repro.runner.cache", "_FINGERPRINT_CACHE"),
    # Process-local failure-artifact registry: each process exports its
    # own registered tracers on its own failures; the registry never
    # feeds results (see the audit comment at the site).
    ("repro.obs.artifacts", "_PENDING"),
})
"""(module, global_name) pairs FORK-001 accepts as fork-safe.

Growing this set is a deliberate act -- add the entry here *and* a
comment at the write site explaining why the state is fork-safe (e.g.
an idempotent memo, or deliberately process-local), mirroring
``FAST_PATH_ALLOWLIST``'s audit discipline.  STALE-001 flags entries
whose write site has since disappeared.
"""

MERGE_SENSITIVE_FUNCTIONS = frozenset({
    "_route",
    "_shard_absorb",
    "_shard_apply_notices",
    "_shard_export",
    "_shard_schedule_inbox",
    "audit",
})
"""Function names whose iteration order crosses shard/merge boundaries.

These are the section 14 merge surfaces: ledger export/absorb, message
plane application, router fan-in, and conservation audits.  MERGE-001
applies to any ``repro.*`` function with one of these names, and to
*every* function in ``repro.shard``.
"""

_MERGE_MODULE_PREFIXES = ("repro.shard",)

FLOAT_HOT_PREFIXES = (
    "repro.core",
    "repro.netsim",
    "repro.runner",
    "repro.shard",
    "repro.sim",
)
"""Modules where FLOAT-001 polices float accumulation order.

Covers the simulation kernel and -- per the shard engine's
associativity-preserving delay grouping contract -- the whole of
``repro.shard`` and ``repro.runner``.
"""


# -- shared helpers ----------------------------------------------------------


_UNORDERED_VIEW_ATTRS = frozenset({"items", "keys", "values"})


def _is_unordered_iter(expr: ast.expr, set_names: Set[str]) -> bool:
    """Syntactic 'iterating this is order-unstable' test.

    Dict views are insertion-ordered *within one process*, but insertion
    order is exactly what differs across shard arrival orders and fork
    schedules -- which is why the merge contracts demand ``sorted()``.
    """
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in set_names
    if isinstance(expr, ast.Call) and not expr.args:
        func = expr.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr in _UNORDERED_VIEW_ATTRS
        )
    return False


def _scope_iterations(
    scope: ast.AST,
) -> Iterator[Tuple[ast.expr, Optional[ast.For]]]:
    """(iterated expression, enclosing For or None) for one scope."""
    for node in _own_statements(scope):
        if isinstance(node, ast.For):
            yield node.iter, node
        elif isinstance(
            node,
            (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
        ):
            for gen in node.generators:
                yield gen.iter, None


def _function_scopes(
    src: SourceFile,
) -> Iterator[Tuple[str, ast.AST]]:
    """(qualname, def node) for every function in ``src``."""
    for node, qual in walk_with_qualname(src.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield qual, node


# -- SEED-001 ----------------------------------------------------------------


def _seed_argument(call: ast.Call) -> Tuple[str, Optional[ast.expr]]:
    """('ok', expr) | ('missing', None) | ('opaque', None)."""
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Starred):
            return ("opaque", None)
        return ("ok", first)
    for kw in call.keywords:
        if kw.arg == "seed":
            return ("ok", kw.value)
        if kw.arg is None:
            return ("opaque", None)  # **kwargs splat
    return ("missing", None)


def _seed_is_clean(
    expr: ast.expr,
    index: ModuleIndex,
    assignments: Dict[str, List[ast.expr]],
    depth: int = 0,
) -> bool:
    """True when ``expr`` plausibly traces to a sanctioned seed.

    Clean: a ``derive_seed``/``shard_stream_seed`` call, anything whose
    name says "seed" (parameters, attributes, dict keys -- naming *is*
    the contract for values crossing function boundaries), an ``int()``
    wrapper around something clean, or a variable assigned something
    clean in this scope.  Everything else -- int literals, arithmetic,
    unrelated calls -- is dirty.
    """
    if depth > 6:
        return False
    if isinstance(expr, ast.Call):
        resolved = index.imports.resolve(expr.func) or ""
        final = resolved.rsplit(".", 1)[-1]
        if final in _SANCTIONED_SEED_FNS or "seed" in final.lower():
            return True
        if final == "int" and len(expr.args) == 1:
            return _seed_is_clean(
                expr.args[0], index, assignments, depth + 1
            )
        return False
    if isinstance(expr, ast.Name):
        if "seed" in expr.id.lower():
            return True
        return any(
            _seed_is_clean(value, index, assignments, depth + 1)
            for value in assignments.get(expr.id, [])
        )
    if isinstance(expr, ast.Attribute):
        return "seed" in expr.attr.lower()
    if isinstance(expr, ast.Subscript):
        key = expr.slice
        return (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and "seed" in key.value.lower()
        )
    return False


def _scope_assignments(scope: ast.AST) -> Dict[str, List[ast.expr]]:
    assignments: Dict[str, List[ast.expr]] = {}
    for node in _own_statements(scope):
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if value is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                assignments.setdefault(target.id, []).append(value)
    return assignments


def _check_seed_scope(
    index: ModuleIndex, scope: ast.AST
) -> Iterator[Finding]:
    src = index.source
    assignments = _scope_assignments(scope)
    seen_seed_names: Set[str] = set()
    for node in _own_statements(scope):
        if not isinstance(node, ast.Call):
            continue
        resolved = index.imports.resolve(node.func)
        if resolved not in _RNG_CONSTRUCTORS:
            continue
        kind, seed = _seed_argument(node)
        if kind == "opaque":
            continue
        if kind == "missing":
            yield src.finding(
                "SEED-001",
                node,
                f"{resolved}() constructed without a seed draws "
                "OS entropy; derive the seed via repro.sim.rand."
                "derive_seed(master_seed, name)",
            )
            continue
        assert seed is not None
        if not _seed_is_clean(seed, index, assignments):
            what = (
                "raw seed literal" if isinstance(seed, ast.Constant)
                else "seed expression"
            )
            yield src.finding(
                "SEED-001",
                seed,
                f"{what} feeding {resolved} does not trace to "
                "derive_seed/shard_stream_seed; use repro.sim.rand."
                "derive_seed(master_seed, name) so streams stay "
                "disjoint and reproducible",
            )
            continue
        if isinstance(seed, ast.Name):
            if seed.id in seen_seed_names:
                yield src.finding(
                    "SEED-001",
                    seed,
                    f"seed variable {seed.id!r} reused for a second "
                    "RNG construction; derive a distinct per-stream "
                    "seed via derive_seed(seed, name) instead of "
                    "sharing one value across streams",
                )
            seen_seed_names.add(seed.id)


@checker(
    "SEED-001",
    "RNG seed does not trace back to derive_seed/shard_stream_seed",
    scope="project",
)
def check_seed_taint(graph: ProjectGraph) -> Iterator[Finding]:
    """Every RNG stream must be minted from a derived seed.

    Stream disjointness (DESIGN.md sections 2 and 14) is what makes
    results independent of worker count and shard layout: ``derive_seed``
    hashes ``(master_seed, stream_name)`` so no two streams collide and
    any one stream can be reproduced in isolation.  A raw literal or a
    reused seed variable silently correlates streams -- the failure only
    shows up as statistically-impossible confidence intervals much
    later.  Applies to all repro/benchmarks/examples code plus anything
    worker-reachable.
    """
    for module in sorted(graph.modules):
        index = graph.modules[module]
        module_in_scope = _in_packages(module, SEED_MODULE_PREFIXES)
        if module_in_scope:
            yield from _check_seed_scope(index, index.source.tree)
        for qual, info in sorted(index.functions.items()):
            if module_in_scope or graph.is_reachable(module, qual):
                yield from _check_seed_scope(index, info.node)


# -- FORK-001 ----------------------------------------------------------------


@checker(
    "FORK-001",
    "worker-reachable code writes module-level state",
    scope="project",
)
def check_fork_state(graph: ProjectGraph) -> Iterator[Finding]:
    """No code reachable from a worker entry point may write a module
    global.

    Fork workers (DESIGN.md section 7) and shard processes (section 14)
    inherit module state at fork time and throw it away at exit: a
    module-level cache or latch written inside a worker is invisible to
    the parent and to sibling workers, so results silently depend on
    which process ran which job.  State written only at import time is
    fork-safe (every process replays it identically); state a worker
    writes must live on job/shard-local objects instead, or be
    explicitly audited into :data:`FORK_STATE_ALLOWLIST`.
    """
    for info in graph.reachable_functions():
        src = graph.source(info.module)
        for wmod, wname, node in info.global_writes:
            if (wmod, wname) in FORK_STATE_ALLOWLIST:
                continue
            yield src.finding(
                "FORK-001",
                node,
                f"{info.qualname} is worker-reachable but writes "
                f"module-level state {wmod}.{wname}; fork workers "
                "drop this write on exit -- keep worker state on "
                "job/shard-local objects, or audit the pair into "
                "repro.lint.flow.FORK_STATE_ALLOWLIST",
            )


# -- MERGE-001 ---------------------------------------------------------------


@checker(
    "MERGE-001",
    "merge/ledger/audit code iterates a dict/set without sorted()",
)
def check_merge_order(src: SourceFile) -> Iterator[Finding]:
    """Merge-surface iteration must be explicitly ordered.

    ``_shard_absorb``, message-plane application, and ``audit()``
    accumulation consume state assembled from *multiple* shard/worker
    processes; dict insertion order there reflects arrival order, and
    set order reflects hashing, neither of which is part of the
    determinism contract.  DESIGN.md section 14 requires merges to apply
    in sorted key order -- this rule makes that contract syntactic:
    iterate ``sorted(d.items())``, never ``d.items()``.
    """
    if not src.module.startswith("repro."):
        return
    whole_module = _in_packages(src.module, _MERGE_MODULE_PREFIXES)
    for qual, node in _function_scopes(src):
        name = qual.rsplit(".", 1)[-1]
        if not whole_module and name not in MERGE_SENSITIVE_FUNCTIONS:
            continue
        set_names = _set_locals(node)
        for it, _loop in _scope_iterations(node):
            if _is_unordered_iter(it, set_names):
                yield src.finding(
                    "MERGE-001",
                    it,
                    f"{name} feeds cross-shard merge/audit state but "
                    "iterates an unordered dict/set view; wrap the "
                    "iterable in sorted(...) so merge order is part "
                    "of the contract, not an accident of arrival",
                )


# -- FLOAT-001 ---------------------------------------------------------------


@checker(
    "FLOAT-001",
    "float accumulation over an unordered collection in a hot module",
)
def check_float_accumulation(src: SourceFile) -> Iterator[Finding]:
    """Float accumulation order must be pinned in hot modules.

    Float addition is not associative: ``sum()`` over a dict view or a
    set produces bit-different results under different insertion/hash
    orders, which breaks byte-identical results files and the shard
    engine's associativity-preserving delay grouping.  Accumulate over
    ``sorted(...)`` (or a list with pinned order) so the reduction tree
    is a function of the data, not of process history.
    """
    if not _in_packages(src.module, FLOAT_HOT_PREFIXES):
        return
    scopes: List[ast.AST] = [src.tree]
    scopes.extend(node for _qual, node in _function_scopes(src))
    for scope in scopes:
        set_names = _set_locals(scope)
        for node in _own_statements(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
            ):
                arg = node.args[0]
                unordered = _is_unordered_iter(arg, set_names) or (
                    isinstance(arg, (ast.GeneratorExp, ast.ListComp))
                    and any(
                        _is_unordered_iter(gen.iter, set_names)
                        for gen in arg.generators
                    )
                )
                if unordered:
                    yield src.finding(
                        "FLOAT-001",
                        node,
                        "sum() over an unordered dict/set view is "
                        "order-sensitive for floats; sum over "
                        "sorted(...) to pin the reduction order",
                    )
            elif isinstance(node, ast.For) and _is_unordered_iter(
                node.iter, set_names
            ):
                for inner in ast.walk(node):
                    if isinstance(inner, ast.AugAssign) and isinstance(
                        inner.op, ast.Add
                    ):
                        yield src.finding(
                            "FLOAT-001",
                            inner,
                            "accumulating with += inside a loop over "
                            "an unordered dict/set view is "
                            "order-sensitive for floats; iterate "
                            "sorted(...) to pin the reduction order",
                        )


# -- SUPP-001 ----------------------------------------------------------------


@checker(
    "SUPP-001",
    "suppression comment that no longer suppresses anything",
    scope="audit",
)
def check_unused_suppressions(
    sources: Sequence[SourceFile],
) -> Iterator[Finding]:
    """Every ``# repro-lint: disable`` comment must still earn its keep.

    A suppression is a standing exception to a determinism contract;
    once the code it excused is gone, the comment becomes a latent hole
    the next edit silently falls into.  This audit runs after every
    other rule and flags comments that matched no finding.  Comments
    naming SUPP-001 itself are exempt (the one sanctioned way to keep a
    speculative suppression).  Skipped on ``--select`` runs, where most
    rules never got the chance to consume their comments.
    """
    for src in sources:
        for suppression in src.suppressions:
            if suppression.used or "SUPP-001" in suppression.rules:
                continue
            listed = ",".join(sorted(suppression.rules))
            yield Finding(
                rule="SUPP-001",
                path=str(src.path),
                line=suppression.line,
                col=0,
                message=(
                    f"suppression for {listed} matched no finding; "
                    "delete the stale comment (or list SUPP-001 to "
                    "keep it deliberately)"
                ),
                module=src.module,
            )


# -- STALE-001 ---------------------------------------------------------------


def _allowlist_location(
    graph: ProjectGraph, defining_module: str, list_name: str,
    fallback: ModuleIndex,
) -> Tuple[str, int, str]:
    """(path, line, module) pointing at the allowlist definition.

    Falls back to the stale entry's own module when the defining module
    is outside the linted path set (partial runs in tests).
    """
    index = graph.modules.get(defining_module)
    if index is not None and list_name in index.globals:
        return (
            str(index.source.path),
            index.globals[list_name],
            defining_module,
        )
    return (str(fallback.source.path), 1, fallback.module)


@checker(
    "STALE-001",
    "allowlist entry no longer matches any code site",
    scope="project",
)
def check_stale_allowlists(graph: ProjectGraph) -> Iterator[Finding]:
    """Audited allowlists must shrink when their sites disappear.

    ``FAST_PATH_ALLOWLIST`` and ``FORK_STATE_ALLOWLIST`` are standing
    permissions to bypass validation; an entry whose code site was
    refactored away is an invitation for new unaudited code to hide
    under an old audit.  An entry is stale when its module is in the
    linted tree but no candidate site (fast-path push / global write)
    matches it; entries whose module is outside the linted paths are
    left alone, so partial runs do not misfire.
    """
    from repro.lint import checkers as _checkers

    for module, qual in sorted(_checkers.FAST_PATH_ALLOWLIST):
        index = graph.modules.get(module)
        if index is None:
            continue
        sites = {q for q, _node, _kind in fast_path_sites(index.source)}
        if qual not in sites:
            path, line, mod = _allowlist_location(
                graph, "repro.lint.checkers", "FAST_PATH_ALLOWLIST", index
            )
            yield Finding(
                rule="STALE-001", path=path, line=line, col=0,
                message=(
                    f"FAST_PATH_ALLOWLIST entry ({module}, {qual}) "
                    "matches no fast-path push site; remove the stale "
                    "entry"
                ),
                module=mod,
            )
    for module, name in sorted(FORK_STATE_ALLOWLIST):
        index = graph.modules.get(module)
        if index is None:
            continue
        if not graph.writers_of(module, name):
            path, line, mod = _allowlist_location(
                graph, "repro.lint.flow", "FORK_STATE_ALLOWLIST", index
            )
            yield Finding(
                rule="STALE-001", path=path, line=line, col=0,
                message=(
                    f"FORK_STATE_ALLOWLIST entry ({module}, {name}) "
                    "matches no global-write site; remove the stale "
                    "entry"
                ),
                module=mod,
            )
