"""Network topology construction (multi-butterfly, dragonfly, fat-tree)."""

from repro.topology.benes import BenesTopology
from repro.topology.butterfly import MultiButterflyTopology
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.fattree import FatTreeTopology
from repro.topology.ideal import IdealTopology
from repro.topology.omega import OmegaTopology
from repro.topology.rotor import RotorTopology

__all__ = [
    "BenesTopology",
    "MultiButterflyTopology",
    "DragonflyTopology",
    "FatTreeTopology",
    "IdealTopology",
    "OmegaTopology",
    "RotorTopology",
]
