"""Multi-butterfly topology with randomized inter-stage wiring (Sec. IV).

A radix-2 multi-stage network for N = 2^S nodes has S stages of N/2
switches.  Viewed as a sorting network, stage s narrows a packet's possible
destination by a factor of two: the rows are partitioned into *blocks* of
size N/2^s (rows sharing the top s destination bits), and a switch's output
direction d leads into the sub-block whose next destination bit is d.

With path multiplicity m, every (switch, direction) has m physical output
ports, and each port is wired to a *randomly chosen* switch of the correct
sub-block in the next stage.  This randomization provides the 'expansion'
property [14] that makes the network immune to worst-case permutations
[19].  The same construction serves both Baldur and the electrical
multi-butterfly baseline (they share the topology; only the switches
differ).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import TopologyError
from repro.sim.rand import stream

__all__ = ["MultiButterflyTopology"]


class MultiButterflyTopology:
    """Randomized multi-butterfly wiring for ``n_nodes`` (a power of two).

    ``wiring[s][i][d]`` is the list of m next-stage switch indices reached
    by the m output ports of direction ``d`` of switch ``i`` in stage ``s``.
    The last stage connects to hosts instead (direction d of last-stage
    switch i reaches host ``2*i + d`` on all m ports).
    """

    def __init__(
        self,
        n_nodes: int,
        multiplicity: int = 1,
        seed: int = 0,
        randomize: bool = True,
    ):
        """``randomize=False`` builds a *structured* wiring (deterministic
        round-robin port targets) -- no expansion property.  Used by the
        ablation bench to quantify what the randomization buys
        (Sec. IV-E, [14], [19])."""
        if n_nodes < 4 or n_nodes & (n_nodes - 1):
            raise TopologyError(
                f"node count must be a power of two >= 4, got {n_nodes}"
            )
        if multiplicity < 1:
            raise TopologyError("multiplicity must be >= 1")
        self.n_nodes = n_nodes
        self.multiplicity = multiplicity
        self.seed = seed
        self.randomize = randomize
        self.n_stages = n_nodes.bit_length() - 1
        self.switches_per_stage = n_nodes // 2
        self.wiring = self._build_wiring()
        # Precomputed routing bits: bit_table[dst][stage] equals
        # routing_bit(dst, stage) without the per-call validation.  The
        # table is n_nodes x n_stages ints (a few KB at the largest sizes
        # simulated), and lets hot loops replace a method call + shifts
        # per hop with two list indexes.
        top = self.n_stages - 1
        self.bit_table: List[List[int]] = [
            [(dst >> (top - s)) & 1 for s in range(self.n_stages)]
            for dst in range(n_nodes)
        ]

    # -- construction --------------------------------------------------------

    def _sub_block_switches(self, stage: int, block: int, bit: int) -> range:
        """Switches of the next stage's sub-block selected by ``bit``.

        ``block`` indexes the stage's blocks (each of ``N >> stage`` rows).
        """
        next_switch_block = (self.n_nodes >> (stage + 1)) // 2
        target_block = 2 * block + bit
        start = target_block * next_switch_block
        return range(start, start + next_switch_block)

    def _build_wiring(self) -> List[List[Tuple[List[int], List[int]]]]:
        rng = stream(self.seed, "multibutterfly-wiring")
        m = self.multiplicity
        wiring: List[List[Tuple[List[int], List[int]]]] = []
        for stage in range(self.n_stages - 1):
            switches_per_block = (self.n_nodes >> stage) // 2
            stage_wiring = []
            for i in range(self.switches_per_stage):
                block = i // switches_per_block
                per_direction = []
                for bit in (0, 1):
                    candidates = list(
                        self._sub_block_switches(stage, block, bit)
                    )
                    if not self.randomize:
                        # Structured wiring: round-robin by switch index.
                        targets = [
                            candidates[(i + k) % len(candidates)]
                            for k in range(m)
                        ]
                    elif len(candidates) >= m:
                        targets = rng.sample(candidates, m)
                    else:
                        # Tiny sub-blocks near the output: reuse switches.
                        targets = [rng.choice(candidates) for _ in range(m)]
                    per_direction.append(targets)
                stage_wiring.append(tuple(per_direction))
            wiring.append(stage_wiring)
        # Last stage: direction d of switch i feeds host 2i + d on all ports.
        wiring.append(
            [
                ([2 * i] * m, [2 * i + 1] * m)
                for i in range(self.switches_per_stage)
            ]
        )
        return wiring

    # -- navigation -----------------------------------------------------------

    def entry_switch(self, node: int) -> int:
        """First-stage switch a host injects into."""
        self._check_node(node)
        return node // 2

    def routing_bit(self, dst: int, stage: int) -> int:
        """The routing bit consumed at ``stage`` (destination MSB first)."""
        self._check_node(dst)
        if not 0 <= stage < self.n_stages:
            raise TopologyError(f"stage {stage} out of range")
        return (dst >> (self.n_stages - 1 - stage)) & 1

    def routing_bits(self, dst: int) -> List[int]:
        """All routing bits for a packet headed to ``dst`` (one per stage)."""
        return [self.routing_bit(dst, s) for s in range(self.n_stages)]

    def next_switches(self, stage: int, switch: int, bit: int) -> Sequence[int]:
        """The m next-stage switches (or the host, at the last stage)
        reachable from (stage, switch) in direction ``bit``."""
        return self.wiring[stage][switch][bit]

    def is_last_stage(self, stage: int) -> bool:
        """True when ``stage`` connects to hosts."""
        return stage == self.n_stages - 1

    def deterministic_path(self, src: int, dst: int) -> List[int]:
        """Switch indices visited using port 0 everywhere (m=1 semantics).

        This is the deterministic testing path used for fault diagnosis
        (Sec. IV-F).
        """
        path = []
        switch = self.entry_switch(src)
        for stage in range(self.n_stages):
            path.append(switch)
            bit = self.routing_bit(dst, stage)
            switch = self.next_switches(stage, switch, bit)[0]
        return path

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise TopologyError(f"node {node} out of range [0, {self.n_nodes})")

    @property
    def total_switches(self) -> int:
        """Total 2x2 switches in the network."""
        return self.n_stages * self.switches_per_stage

    @property
    def switches_per_node(self) -> float:
        """Switches per server node (used by the power model)."""
        return self.total_switches / self.n_nodes
