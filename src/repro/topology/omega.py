"""Omega network topology [42] as an alternative Baldur substrate.

Sec. IV notes Baldur should 'achieve similar results with other
multi-stage topologies (e.g., Benes, Omega)' since many multi-stage
networks are largely isomorphic [43].  This module provides the classic
omega network behind the same interface as
:class:`~repro.topology.butterfly.MultiButterflyTopology`, so
:class:`~repro.core.baldur_network.BaldurNetwork` can be built on either.

Structure: log2(N) identical stages of N/2 switches connected by perfect
shuffles (rotate-left of the wire address).  Destination-tag routing
consumes the destination MSB first, exactly like the multi-butterfly, so
the same length-encoded routing bits work unchanged.  Unlike the
randomized multi-butterfly, the omega wiring is *deterministic*: with
multiplicity m, the m ports of a direction all reach the same next-stage
switch, so the network has no expansion property -- the ablation bench
uses this to quantify what randomization buys (Sec. IV-E).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import TopologyError

__all__ = ["OmegaTopology"]


class OmegaTopology:
    """Omega network for ``n_nodes`` (a power of two >= 4)."""

    def __init__(self, n_nodes: int, multiplicity: int = 1, seed: int = 0):
        if n_nodes < 4 or n_nodes & (n_nodes - 1):
            raise TopologyError(
                f"node count must be a power of two >= 4, got {n_nodes}"
            )
        if multiplicity < 1:
            raise TopologyError("multiplicity must be >= 1")
        self.n_nodes = n_nodes
        self.multiplicity = multiplicity
        self.seed = seed  # unused: omega wiring is deterministic
        self.n_stages = n_nodes.bit_length() - 1
        self.switches_per_stage = n_nodes // 2

    def _shuffle(self, wire: int) -> int:
        """Perfect shuffle: rotate the wire address left by one bit."""
        msb = (wire >> (self.n_stages - 1)) & 1
        return ((wire << 1) | msb) & (self.n_nodes - 1)

    def entry_switch(self, node: int) -> int:
        """Hosts pass through one shuffle before stage 0."""
        self._check_node(node)
        return self._shuffle(node) // 2

    def routing_bit(self, dst: int, stage: int) -> int:
        """Destination-tag routing, MSB first (same as multi-butterfly)."""
        self._check_node(dst)
        if not 0 <= stage < self.n_stages:
            raise TopologyError(f"stage {stage} out of range")
        return (dst >> (self.n_stages - 1 - stage)) & 1

    def routing_bits(self, dst: int) -> List[int]:
        """All routing bits for a packet headed to ``dst``."""
        return [self.routing_bit(dst, s) for s in range(self.n_stages)]

    def next_switches(self, stage: int, switch: int, bit: int) -> Sequence[int]:
        """The next-stage switch (or host) reached in direction ``bit``.

        All m ports lead to the same place: omega has exactly one path
        between every (source, destination) pair.
        """
        wire = 2 * switch + bit
        if self.is_last_stage(stage):
            return [wire] * self.multiplicity
        return [self._shuffle(wire) // 2] * self.multiplicity

    def is_last_stage(self, stage: int) -> bool:
        """True when ``stage`` connects to hosts."""
        return stage == self.n_stages - 1

    def deterministic_path(self, src: int, dst: int) -> List[int]:
        """Switch indices visited from ``src`` to ``dst`` (unique path)."""
        path = []
        switch = self.entry_switch(src)
        for stage in range(self.n_stages):
            path.append(switch)
            switch = self.next_switches(
                stage, switch, self.routing_bit(dst, stage)
            )[0]
        return path

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise TopologyError(f"node {node} out of range [0, {self.n_nodes})")

    @property
    def total_switches(self) -> int:
        """Total 2x2 switches in the network."""
        return self.n_stages * self.switches_per_stage
