"""RotorNet-style rotor topology: round-robin matchings over rotor switches.

A rotor network connects ``n_nodes`` endpoints through ``n_rotors``
optical rotor switches.  Each rotor blindly cycles through a fixed,
precomputed sequence of *matchings* (perfect permutations of the
endpoints); traffic waits in per-destination queues at the source until
the rotation connects source to destination.  No per-packet switching
decisions are ever made -- the "routing" is the rotation schedule itself,
which is what lets a rotor switch dispense with schedulers, buffers, and
request/grant arbitration entirely (RotorNet, SIGCOMM'17).

The matching set is the classic round-robin construction: matching with
offset ``o`` connects ``src -> (src + o) mod n`` for every source, and
offsets ``1 .. n-1`` together cover every ordered endpoint pair exactly
once.  Offsets are dealt round-robin across the rotors, so the rotors'
simultaneous matchings in any slot are disjoint, and one full cycle of
``ceil((n-1)/n_rotors)`` slots gives every pair at least one direct
connection per cycle.
"""

from __future__ import annotations

from typing import List

from repro.errors import TopologyError

__all__ = ["RotorTopology"]


class RotorTopology:
    """Fixed rotation schedule for ``n_nodes`` endpoints, ``n_rotors`` rotors.

    ``matching(rotor, slot)`` is the permutation rotor ``rotor`` applies
    during slot ``slot`` (slots index the global, infinitely repeating
    rotation): a list mapping each source to its matched destination, or
    to itself for the identity entries of an idle rotor (a rotor whose
    matching list is shorter than the cycle sits dark for the remainder).
    """

    __slots__ = (
        "n_nodes",
        "n_rotors",
        "n_matchings",
        "slots_per_cycle",
        "_cycles",
    )

    def __init__(self, n_nodes: int, n_rotors: int = 4):
        if n_nodes < 2:
            raise TopologyError(
                f"a rotor network needs at least 2 endpoints, got {n_nodes}"
            )
        if n_rotors < 1:
            raise TopologyError(f"n_rotors must be >= 1, got {n_rotors}")
        self.n_nodes = n_nodes
        self.n_rotors = min(n_rotors, n_nodes - 1)
        self.n_matchings = n_nodes - 1
        self.slots_per_cycle = -(-self.n_matchings // self.n_rotors)
        # Offsets 1..n-1 dealt round-robin: rotor r gets offsets
        # r+1, r+1+n_rotors, ...  Each rotor's cycle is padded with the
        # identity matching (self-loops) to the common cycle length so
        # every rotor advances in lockstep.
        identity = list(range(n_nodes))
        self._cycles: List[List[List[int]]] = []
        for rotor in range(self.n_rotors):
            cycle = [
                [(src + offset) % n_nodes for src in range(n_nodes)]
                for offset in range(
                    rotor + 1, self.n_matchings + 1, self.n_rotors
                )
            ]
            while len(cycle) < self.slots_per_cycle:
                cycle.append(identity)
            self._cycles.append(cycle)

    def matching(self, rotor: int, slot: int) -> List[int]:
        """The permutation rotor ``rotor`` applies during global ``slot``.

        ``matching(r, s)[src]`` is the destination endpoint src's uplink
        into rotor ``r`` reaches during that slot (``src`` itself for an
        idle/dark entry).  ``slot`` may be any non-negative slot index;
        the rotation repeats every :attr:`slots_per_cycle` slots.
        """
        if not 0 <= rotor < self.n_rotors:
            raise TopologyError(f"rotor {rotor} out of range")
        if slot < 0:
            raise TopologyError(f"slot {slot} must be >= 0")
        return self._cycles[rotor][slot % self.slots_per_cycle]

    def slots_until_matched(self, src: int, dst: int, slot: int = 0) -> int:
        """Slots from ``slot`` until some rotor connects ``src -> dst``.

        Zero when a rotor already matches the pair in ``slot`` itself.
        Every ordered pair is matched once per cycle, so the result is
        always in ``[0, slots_per_cycle)``.
        """
        for node in (src, dst):
            if not 0 <= node < self.n_nodes:
                raise TopologyError(
                    f"node {node} out of range [0, {self.n_nodes})"
                )
        if src == dst:
            raise TopologyError("src and dst must differ")
        offset = (dst - src) % self.n_nodes
        # Offset o lives in rotor (o-1) % n_rotors at cycle position
        # (o-1) // n_rotors.
        position = (offset - 1) // self.n_rotors
        return (position - slot) % self.slots_per_cycle

    @property
    def total_switches(self) -> int:
        """The rotor switches (each one optical, bufferless, schedulerless)."""
        return self.n_rotors

    def describe(self) -> str:
        """Human-readable rotation summary."""
        return (
            f"rotor nodes={self.n_nodes} rotors={self.n_rotors} "
            f"matchings={self.n_matchings} "
            f"slots_per_cycle={self.slots_per_cycle}"
        )
