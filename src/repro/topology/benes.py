"""Benes network topology [41] as an alternative Baldur substrate.

Sec. IV expects Baldur to achieve similar results on other multi-stage
topologies, naming Benes explicitly.  A Benes network for N = 2^S nodes
has 2S-1 stages: an S-1-stage *scatter* half (an inverse omega) where the
routing bits are free -- any choice still reaches every destination -- and
an S-stage omega half routed by destination tag.  Choosing the scatter
bits uniformly at random is Valiant-style load balancing: it gives path
diversity *through the topology* rather than through port multiplicity.

Construction (verified exhaustively in the tests): a packet on wire ``w``
enters switch ``w // 2``; in the scatter half the output wire ``2i + b``
is rotated *right* between stages, in the routing half it is rotated
*left*, and the final stage's output wire is the destination.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import TopologyError
from repro.sim.rand import stream

__all__ = ["BenesTopology"]


class BenesTopology:
    """Benes network for ``n_nodes`` (a power of two >= 4)."""

    def __init__(
        self,
        n_nodes: int,
        multiplicity: int = 1,
        seed: int = 0,
        deterministic_scatter: bool = False,
    ):
        """``deterministic_scatter=True`` pins the free bits to 0 (used by
        the fault-diagnosis test mode, which needs deterministic paths)."""
        if n_nodes < 4 or n_nodes & (n_nodes - 1):
            raise TopologyError(
                f"node count must be a power of two >= 4, got {n_nodes}"
            )
        if multiplicity < 1:
            raise TopologyError("multiplicity must be >= 1")
        self.n_nodes = n_nodes
        self.multiplicity = multiplicity
        self.deterministic_scatter = deterministic_scatter
        self._address_bits = n_nodes.bit_length() - 1
        self.n_stages = 2 * self._address_bits - 1
        self.switches_per_stage = n_nodes // 2
        self._rng = stream(seed, "benes-scatter")

    # -- wire arithmetic ---------------------------------------------------

    def _rol(self, wire: int) -> int:
        msb = (wire >> (self._address_bits - 1)) & 1
        return ((wire << 1) | msb) & (self.n_nodes - 1)

    def _ror(self, wire: int) -> int:
        return (wire >> 1) | ((wire & 1) << (self._address_bits - 1))

    @property
    def scatter_stages(self) -> int:
        """Stages whose routing bit is free (S - 1)."""
        return self._address_bits - 1

    # -- topology interface --------------------------------------------------

    def entry_switch(self, node: int) -> int:
        """Hosts drive wire ``node`` into stage 0 directly."""
        self._check_node(node)
        return node // 2

    def routing_bit(self, dst: int, stage: int) -> int:
        """Free (random) bit in the scatter half; destination tag after."""
        self._check_node(dst)
        if not 0 <= stage < self.n_stages:
            raise TopologyError(f"stage {stage} out of range")
        if stage < self.scatter_stages:
            if self.deterministic_scatter:
                return 0
            return self._rng.getrandbits(1)
        tag_stage = stage - self.scatter_stages
        return (dst >> (self._address_bits - 1 - tag_stage)) & 1

    def routing_bits(self, dst: int) -> List[int]:
        """One full set of routing bits (scatter bits freshly drawn)."""
        return [self.routing_bit(dst, s) for s in range(self.n_stages)]

    def next_switches(self, stage: int, switch: int, bit: int) -> Sequence[int]:
        """Next-stage switch (or host at the last stage)."""
        wire = 2 * switch + bit
        if self.is_last_stage(stage):
            return [wire] * self.multiplicity
        if stage < self.scatter_stages:
            return [self._ror(wire) // 2] * self.multiplicity
        return [self._rol(wire) // 2] * self.multiplicity

    def is_last_stage(self, stage: int) -> bool:
        """True when ``stage`` connects to hosts."""
        return stage == self.n_stages - 1

    def deterministic_path(self, src: int, dst: int) -> List[int]:
        """Switches visited with all scatter bits pinned to 0."""
        path = []
        switch = self.entry_switch(src)
        for stage in range(self.n_stages):
            path.append(switch)
            if stage < self.scatter_stages:
                bit = 0
            else:
                tag_stage = stage - self.scatter_stages
                bit = (dst >> (self._address_bits - 1 - tag_stage)) & 1
            switch = self.next_switches(stage, switch, bit)[0]
        return path

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise TopologyError(f"node {node} out of range [0, {self.n_nodes})")

    @property
    def total_switches(self) -> int:
        """Total 2x2 switches (almost double a butterfly's)."""
        return self.n_stages * self.switches_per_stage
