"""Three-level fat-tree topology [17] with full bisection bandwidth.

A k-ary fat-tree has k pods, each with k/2 edge and k/2 aggregation
switches; (k/2)^2 core switches connect the pods.  Every switch has radix
k, and the network supports k^3/4 hosts: k = 16 hosts 1,024 nodes with
radix-16 switches, k = 80 hosts 128,000 (the Sec. II-A example), and
k = 160 hosts 1,024,000 (the '16 to 160' radix growth of Sec. VI-A).

Link levels carry the Table VI delays: level 1 edge<->host (10 ns), level 2
edge<->aggregation (50 ns), level 3 aggregation<->core (100 ns).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import TopologyError

__all__ = ["FatTreeTopology"]


class FatTreeTopology:
    """k-ary 3-level fat-tree (k even)."""

    def __init__(self, k: int):
        if k < 2 or k % 2:
            raise TopologyError(f"k must be even and >= 2, got {k}")
        self.k = k
        self.half = k // 2
        self.n_pods = k
        self.n_nodes = k**3 // 4
        self.edge_per_pod = self.half
        self.agg_per_pod = self.half
        self.n_core = self.half * self.half
        self.n_switches = k * k + self.n_core  # k pods x (k/2+k/2) + core
        self.radix = k

    @classmethod
    def for_nodes(cls, n_nodes: int) -> "FatTreeTopology":
        """Smallest fat-tree with at least ``n_nodes`` hosts."""
        if n_nodes < 2:
            raise TopologyError("need at least 2 nodes")
        k = 2
        while cls(k).n_nodes < n_nodes:
            k += 2
        return cls(k)

    # -- id mapping -------------------------------------------------------------
    # Hosts are numbered pod-major: host = pod*(k^2/4) + edge*(k/2) + slot.

    def locate_host(self, host: int) -> Tuple[int, int, int]:
        """(pod, edge switch index within pod, slot) of ``host``."""
        if not 0 <= host < self.n_nodes:
            raise TopologyError(f"host {host} out of range")
        per_pod = self.k * self.k // 4
        pod, rest = divmod(host, per_pod)
        edge, slot = divmod(rest, self.half)
        return pod, edge, slot

    def host_id(self, pod: int, edge: int, slot: int) -> int:
        """Inverse of :meth:`locate_host`."""
        if not (
            0 <= pod < self.k and 0 <= edge < self.half and 0 <= slot < self.half
        ):
            raise TopologyError(f"invalid host location ({pod},{edge},{slot})")
        return pod * (self.k * self.k // 4) + edge * self.half + slot

    # -- connectivity -------------------------------------------------------------

    def cores_above_agg(self, agg: int) -> range:
        """Core switch indices reachable from aggregation index ``agg``
        (same for every pod): cores agg*(k/2) .. agg*(k/2)+k/2-1."""
        if not 0 <= agg < self.half:
            raise TopologyError(f"agg index {agg} out of range")
        return range(agg * self.half, (agg + 1) * self.half)

    def agg_below_core(self, core: int) -> int:
        """The aggregation index (in every pod) a core connects down to."""
        if not 0 <= core < self.n_core:
            raise TopologyError(f"core {core} out of range")
        return core // self.half

    def same_edge(self, a: int, b: int) -> bool:
        """True when two hosts share an edge switch."""
        pa, ea, _ = self.locate_host(a)
        pb, eb, _ = self.locate_host(b)
        return (pa, ea) == (pb, eb)

    def same_pod(self, a: int, b: int) -> bool:
        """True when two hosts share a pod."""
        return self.locate_host(a)[0] == self.locate_host(b)[0]

    def minimal_hop_count(self, a: int, b: int) -> int:
        """Switch hops between two hosts (1, 3, or 5)."""
        if a == b:
            return 0
        if self.same_edge(a, b):
            return 1
        if self.same_pod(a, b):
            return 3
        return 5

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return (
            f"fat-tree k={self.k} pods={self.n_pods} nodes={self.n_nodes} "
            f"switches={self.n_switches} radix={self.radix}"
        )
