"""Dragonfly topology [16] with the recommended balanced configuration.

A dragonfly with p terminals per router, a routers per group, and h global
channels per router supports g = a*h + 1 groups and N = p*a*g nodes.  The
paper uses 'the most optimized architecture recommended in [16]', i.e. the
balanced a = 2p, h = p configuration (radix p + (a-1) + h: 15 at the 1K
scale, 95 at the 1M scale -- the '16 to 96' radix growth of Sec. VI-A).

Global channels use the consecutive assignment: group g's channel
c = r*h + l (router-local link l of router r) connects to group c when
c < g, else c + 1; the reverse channel lands on the peer router computed
symmetrically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import TopologyError

__all__ = ["DragonflyTopology"]


@dataclass(frozen=True)
class _GlobalLink:
    """One directed global channel endpoint resolution."""

    peer_group: int
    peer_router: int
    peer_link: int


class DragonflyTopology:
    """Balanced dragonfly (a = 2p, h = p) for at least ``n_nodes`` nodes."""

    def __init__(self, p: int):
        if p < 1:
            raise TopologyError("p must be >= 1")
        self.p = p
        self.a = 2 * p
        self.h = p
        self.groups = self.a * self.h + 1
        self.n_nodes = self.p * self.a * self.groups
        self.routers_per_group = self.a
        self.n_routers = self.a * self.groups
        self.radix = self.p + (self.a - 1) + self.h

    @classmethod
    def for_nodes(cls, n_nodes: int) -> "DragonflyTopology":
        """Smallest balanced dragonfly with at least ``n_nodes`` nodes."""
        if n_nodes < 2:
            raise TopologyError("need at least 2 nodes")
        p = 1
        while cls(p).n_nodes < n_nodes:
            p += 1
        return cls(p)

    # -- id mapping -----------------------------------------------------------

    def router_of_node(self, node: int) -> Tuple[int, int]:
        """(group, local router index) hosting ``node``."""
        if not 0 <= node < self.n_nodes:
            raise TopologyError(f"node {node} out of range")
        router = node // self.p
        return router // self.a, router % self.a

    def router_id(self, group: int, local: int) -> int:
        """Flat router id."""
        if not 0 <= group < self.groups or not 0 <= local < self.a:
            raise TopologyError(f"invalid router ({group}, {local})")
        return group * self.a + local

    def nodes_of_router(self, group: int, local: int) -> range:
        """Terminal node ids attached to a router."""
        base = (group * self.a + local) * self.p
        return range(base, base + self.p)

    # -- global channel assignment ---------------------------------------------

    def global_peer(self, group: int, local: int, link: int) -> _GlobalLink:
        """Resolve global channel ``link`` of router (group, local)."""
        if not 0 <= link < self.h:
            raise TopologyError(f"global link {link} out of range")
        channel = local * self.h + link
        peer_group = channel if channel < group else channel + 1
        # The reverse channel in peer_group that points back at ``group``.
        back_channel = group if group < peer_group else group - 1
        return _GlobalLink(
            peer_group=peer_group,
            peer_router=back_channel // self.h,
            peer_link=back_channel % self.h,
        )

    def gateway_router(self, src_group: int, dst_group: int) -> Tuple[int, int]:
        """(router local index, link index) in ``src_group`` owning the
        global channel to ``dst_group``."""
        if src_group == dst_group:
            raise TopologyError("groups must differ")
        channel = dst_group if dst_group < src_group else dst_group - 1
        return channel // self.h, channel % self.h

    # -- path helpers -----------------------------------------------------------

    def minimal_path_groups(
        self, src_group: int, dst_group: int
    ) -> List[int]:
        """Group sequence of the minimal path."""
        if src_group == dst_group:
            return [src_group]
        return [src_group, dst_group]

    def minimal_hop_count(self, src: int, dst: int) -> int:
        """Router-to-router hops on the minimal path (l-g-l worst case)."""
        (sg, sl), (dg, dl) = self.router_of_node(src), self.router_of_node(dst)
        if (sg, sl) == (dg, dl):
            return 0
        if sg == dg:
            return 1
        gw_local, _ = self.gateway_router(sg, dg)
        peer = self.global_peer(sg, gw_local, self.gateway_router(sg, dg)[1])
        hops = 1  # the global hop
        if gw_local != sl:
            hops += 1
        if peer.peer_router != dl:
            hops += 1
        return hops

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return (
            f"dragonfly p={self.p} a={self.a} h={self.h} "
            f"groups={self.groups} nodes={self.n_nodes} radix={self.radix}"
        )
