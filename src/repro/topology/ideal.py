"""The ideal reference network: infinite bandwidth, flat latency.

Table VI: every packet is delivered exactly 200 ns after it is created,
regardless of load, size, or destination.  Used as the lower bound in
Fig. 6/7 ('Baldur's average packet latency is only 1.7X-3.4X higher').
"""

from __future__ import annotations

from repro import constants as C
from repro.errors import TopologyError

__all__ = ["IdealTopology"]


class IdealTopology:
    """A topology-free ideal network of ``n_nodes``."""

    def __init__(
        self, n_nodes: int, latency_ns: float = C.IDEAL_PACKET_LATENCY_NS
    ):
        if n_nodes < 2:
            raise TopologyError("need at least 2 nodes")
        if latency_ns <= 0:
            raise TopologyError("latency must be positive")
        self.n_nodes = n_nodes
        self.latency_ns = latency_ns

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return f"ideal nodes={self.n_nodes} latency={self.latency_ns}ns"
