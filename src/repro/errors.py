"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ReproError):
    """Raised when the discrete-event kernel is misused (e.g. scheduling an
    event in the past, or re-triggering an already-triggered event)."""


class TopologyError(ReproError):
    """Raised for invalid topology parameters (e.g. a node count that is not
    a power of two for a butterfly, or a radix that is not constructible)."""


class CircuitError(ReproError):
    """Raised for malformed gate-level netlists (dangling wires, fan-in
    violations, combinational loops without latches)."""


class EncodingError(ReproError):
    """Raised when a length-encoded optical waveform cannot be decoded."""


class ConfigurationError(ReproError):
    """Raised for invalid experiment or model configuration values."""


class FaultInjectionError(ReproError):
    """Raised for invalid fault-injection requests: malformed fault models
    (negative corruption probability, an end time before the start time, an
    unknown switch id), inconsistent chaos-schedule parameters (non-positive
    MTBF/MTTR), or attaching faults to a network that cannot host them."""


class SweepExecutionError(ReproError):
    """Raised by the sweep engine when execution cannot continue and the
    fault policy says failures must abort (``on_error="raise"``): a job
    timed out or exhausted its retry budget, the worker pool broke more
    often than ``max_pool_rebuilds`` allows, or the sweep-level deadline
    expired with jobs still pending.  With ``on_error="record"`` the same
    conditions become per-job :class:`~repro.runner.JobOutcome` statuses
    instead and the sweep returns partial results."""


class ShardingUnsupportedError(ConfigurationError):
    """Raised when ``run(shards=N)`` with ``N > 1`` is requested for a
    network or configuration the sharded engine cannot execute: the
    buffered electrical simulators (their credit feedback is zero-latency,
    so the conservative lookahead window would be empty — DESIGN.md
    section 14), closed-loop workloads (``receive_hook``), attached
    observability (tracer/metrics/profiler), fault injection, or a
    simulator whose pending event queue holds anything other than plain
    packet injections."""


class InvariantViolationError(ReproError):
    """Raised when the packet-conservation audit detects a leak: the ledger
    ``injected = delivered + terminally dropped + given up + in flight``
    failed to balance, or a packet was delivered/dropped/given-up twice.
    Any occurrence is a simulator bug, never a legitimate network outcome."""
