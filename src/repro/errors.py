"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ReproError):
    """Raised when the discrete-event kernel is misused (e.g. scheduling an
    event in the past, or re-triggering an already-triggered event)."""


class TopologyError(ReproError):
    """Raised for invalid topology parameters (e.g. a node count that is not
    a power of two for a butterfly, or a radix that is not constructible)."""


class CircuitError(ReproError):
    """Raised for malformed gate-level netlists (dangling wires, fan-in
    violations, combinational loops without latches)."""


class EncodingError(ReproError):
    """Raised when a length-encoded optical waveform cannot be decoded."""


class ConfigurationError(ReproError):
    """Raised for invalid experiment or model configuration values."""
