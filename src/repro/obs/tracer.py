"""Packet lifecycle tracing: ring-buffered typed events with JSONL export.

A :class:`Tracer` is attached to any network via
:meth:`~repro.netsim.network.NetworkSimulator.attach_tracer` (the same
plumbing pattern as ``attach_faults``).  Once attached, the simulator
records one :class:`TraceEvent` per lifecycle transition:

========================  =====================================================
event type                emitted when
========================  =====================================================
``inject``                a data packet enters its source NIC queue
``stage_arrival``         a packet header reaches a switch
``arb_win``               Baldur arbitration grants an output port
``arb_loss``              Baldur arbitration finds no free port
``drop``                  a packet is discarded in-network
``credit_stall``          an electrical output port stalls on downstream credit
``ack``                   an ACK is sent by a receiver / consumed by a source
``retransmit``            a source times out and re-sends a data packet
``deliver``               the last byte reaches the destination host
``give_up``               a source abandons a packet after max retries
========================  =====================================================

Events live in a bounded ring buffer (old events are evicted once
``capacity`` is exceeded), but per-type counts in :attr:`Tracer.counts`
cover the *whole* run regardless of eviction, so conservation cross-checks
against :meth:`LatencyStats.conservation` stay exact.

Tracing is strictly passive: it draws no random numbers and never touches
simulation state, so attaching a tracer cannot perturb results (the
determinism suite pins this).  With no tracer attached the simulators only
pay a ``is None`` check per hook site -- no event objects are allocated.
"""

from __future__ import annotations

import json
from collections import deque
from hashlib import sha256
from pathlib import Path
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    TextIO,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError

__all__ = ["TraceEvent", "Tracer", "format_timeline"]

DEFAULT_CAPACITY = 65536
"""Default ring-buffer size (events, not bytes)."""

EVENT_TYPES = (
    "inject",
    "stage_arrival",
    "arb_win",
    "arb_loss",
    "drop",
    "credit_stall",
    "ack",
    "retransmit",
    "deliver",
    "give_up",
)
"""Every event type a simulator may record (the JSONL schema's ``type``)."""


class TraceEvent:
    """One timestamped lifecycle event of one packet."""

    __slots__ = (
        "t", "etype", "pid", "src", "dst", "is_ack", "switch", "stage",
        "port", "acked", "note",
    )

    def __init__(
        self,
        t: float,
        etype: str,
        pid: Optional[int] = None,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        is_ack: bool = False,
        switch: Optional[int] = None,
        stage: Any = None,
        port: Optional[int] = None,
        acked: Optional[Sequence[int]] = None,
        note: Optional[str] = None,
    ) -> None:
        self.t = t
        self.etype = etype
        self.pid = pid
        self.src = src
        self.dst = dst
        self.is_ack = is_ack
        self.switch = switch
        self.stage = stage
        self.port = port
        self.acked: Optional[Tuple[int, ...]] = (
            tuple(acked) if acked is not None else None
        )
        self.note = note

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload; ``None`` fields are omitted for compactness."""
        payload: Dict[str, Any] = {"t": self.t, "type": self.etype}
        for field in ("pid", "src", "dst", "switch", "stage", "port", "note"):
            value = getattr(self, field)
            if value is not None:
                payload[field] = value
        if self.is_ack:
            payload["is_ack"] = True
        if self.acked is not None:
            payload["acked"] = list(self.acked)
        return payload

    def concerns(self, pid: int) -> bool:
        """True if this event belongs to packet ``pid``'s flow (its own
        lifecycle events plus any ACK that covers it)."""
        if self.pid == pid:
            return True
        return self.acked is not None and pid in self.acked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceEvent {self.etype} t={self.t} pid={self.pid}>"


class Tracer:
    """Ring-buffered recorder of :class:`TraceEvent` objects."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.recorded = 0
        self.counts: Dict[str, int] = {}

    # -- recording (the simulator-facing API) -------------------------------

    def record(
        self,
        t: float,
        etype: str,
        packet: Any = None,
        switch: Optional[int] = None,
        stage: Any = None,
        port: Optional[int] = None,
        acked: Optional[Sequence[int]] = None,
        note: Optional[str] = None,
    ) -> None:
        """Record one event, pulling endpoint fields off ``packet``."""
        event = (
            TraceEvent(
                t, etype, pid=packet.pid, src=packet.src, dst=packet.dst,
                is_ack=packet.is_ack, switch=switch, stage=stage, port=port,
                acked=acked, note=note,
            )
            if packet is not None
            else TraceEvent(
                t, etype, switch=switch, stage=stage, port=port,
                acked=acked, note=note,
            )
        )
        self._ring.append(event)
        self.recorded += 1
        self.counts[etype] = self.counts.get(etype, 0) + 1

    # -- reading ------------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first (ring eviction applies)."""
        return list(self._ring)

    @property
    def evicted(self) -> int:
        """How many events the ring buffer has discarded."""
        return self.recorded - len(self._ring)

    def count(self, etype: str) -> int:
        """Whole-run count of one event type (eviction-proof)."""
        return self.counts.get(etype, 0)

    def flow(self, pid: int) -> List[TraceEvent]:
        """Every retained event of packet ``pid``'s flow, in time order."""
        return [e for e in self._ring if e.concerns(pid)]

    def pick_flow(
        self,
        src: Optional[int] = None,
        dst: Optional[int] = None,
    ) -> Optional[int]:
        """Choose a pid worth replaying: prefers a flow that saw drops or
        retransmissions (the interesting case), else a delivered flow,
        else any injected flow.  ``src``/``dst`` restrict the candidates.
        """
        injected: List[int] = []
        eventful: Set[int] = set()
        delivered: Set[int] = set()
        for event in self._ring:
            if event.pid is None or event.is_ack:
                continue
            if src is not None and event.src != src:
                continue
            if dst is not None and event.dst != dst:
                continue
            if event.etype == "inject":
                injected.append(event.pid)
            elif event.etype in ("drop", "retransmit", "give_up"):
                eventful.add(event.pid)
            elif event.etype == "deliver":
                delivered.add(event.pid)
        for pid in injected:
            if pid in eventful and pid in delivered:
                return pid
        for pid in injected:
            if pid in eventful:
                return pid
        for pid in injected:
            if pid in delivered:
                return pid
        return injected[0] if injected else None

    # -- export -------------------------------------------------------------

    def to_jsonl(self, target: Union[str, Path, TextIO]) -> int:
        """Write retained events as JSON Lines; returns the line count.

        ``target`` is a path or an open text file.  One event per line,
        keys sorted -- the file is deterministic for a deterministic run.
        """
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                return self.to_jsonl(fh)
        events = self.events
        for event in events:
            target.write(
                json.dumps(
                    event.to_dict(), sort_keys=True, allow_nan=False
                )
            )
            target.write("\n")
        return len(events)

    def digest(self) -> str:
        """SHA-256 over the retained event stream (trace-equality checks)."""
        hasher = sha256()
        for event in self._ring:
            hasher.update(
                json.dumps(
                    event.to_dict(), sort_keys=True, allow_nan=False
                ).encode()
            )
            hasher.update(b"\n")
        return hasher.hexdigest()

    def summary(self) -> Dict[str, Any]:
        """JSON-safe rollup: whole-run counts plus ring/digest metadata."""
        return {
            "recorded": self.recorded,
            "retained": len(self._ring),
            "evicted": self.evicted,
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
            "digest": self.digest(),
        }

    def describe(self) -> str:
        """One-line human summary."""
        top = ", ".join(
            f"{k}={self.counts[k]}" for k in sorted(self.counts)
        )
        return f"Tracer({self.recorded} events: {top})"


def format_timeline(events: Sequence[TraceEvent]) -> List[str]:
    """Render one flow's events as human-readable timeline lines.

    Timestamps are printed relative to the first event so a replay reads
    as elapsed time along the flow's life.
    """
    if not events:
        return ["(no events)"]
    t0 = events[0].t
    lines: List[str] = []
    for event in events:
        parts = [f"+{event.t - t0:>12.2f}ns", f"{event.etype:<13}"]
        if event.pid is not None:
            kind = "ack" if event.is_ack else "pkt"
            parts.append(f"{kind} {event.pid} {event.src}->{event.dst}")
        if event.switch is not None:
            loc = f"switch {event.switch}"
            if event.stage is not None:
                loc += f" (stage {event.stage})"
            parts.append(loc)
        if event.port is not None:
            parts.append(f"port {event.port}")
        if event.acked is not None:
            parts.append(f"acks {list(event.acked)}")
        if event.note:
            parts.append(f"[{event.note}]")
        lines.append("  ".join(parts))
    return lines
