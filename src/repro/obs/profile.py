"""Kernel profiling: opt-in counters for the discrete-event hot loop.

ROADMAP wants the simulators "as fast as the hardware allows"; before a
hot loop can be optimized it has to be measured.  A :class:`KernelProfile`
is enabled on an :class:`~repro.sim.Environment` via
:meth:`~repro.sim.Environment.enable_profiling` and then observes every
dispatched callback:

* ``events_dispatched`` -- total queue pops;
* ``max_heap_depth`` -- peak event-queue length (memory pressure proxy);
* per-callback-type call counts and accumulated wall time, keyed by the
  callback's ``__qualname__`` (``BaldurNetwork._arrive_stage``,
  ``OutputPort._on_sent``, ...), which is exactly the breakdown needed to
  decide *which* simulator path to optimize next.

Profiling is off by default and costs nothing when disabled: the kernel's
``step()`` does a single ``is None`` check.  Wall times come from
``time.perf_counter`` and are *not* deterministic -- they never feed back
into simulation state, only into this report.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["KernelProfile"]


class KernelProfile:
    """Accumulates kernel dispatch statistics for one Environment."""

    __slots__ = ("events_dispatched", "max_heap_depth", "calls", "wall_s")

    def __init__(self) -> None:
        self.events_dispatched = 0
        self.max_heap_depth = 0
        self.calls: Dict[str, int] = {}
        self.wall_s: Dict[str, float] = {}

    def dispatch(
        self, fn: Callable[..., Any], args: Tuple[Any, ...], depth: int
    ) -> None:
        """Run one callback under measurement (called by the kernel)."""
        self.events_dispatched += 1
        if depth > self.max_heap_depth:
            self.max_heap_depth = depth
        name = getattr(fn, "__qualname__", None) or repr(fn)
        start = perf_counter()
        try:
            fn(*args)
        finally:
            elapsed = perf_counter() - start
            self.calls[name] = self.calls.get(name, 0) + 1
            self.wall_s[name] = self.wall_s.get(name, 0.0) + elapsed

    def hottest(self, top: int = 10) -> List[Tuple[str, float, int]]:
        """(callback, wall seconds, calls), by wall time descending."""
        return sorted(
            (
                (name, self.wall_s[name], self.calls[name])
                for name in self.wall_s
            ),
            key=lambda row: (-row[1], row[0]),
        )[:top]

    def summary(self) -> Dict[str, Any]:
        """JSON-safe rollup of the profile."""
        return {
            "events_dispatched": self.events_dispatched,
            "max_heap_depth": self.max_heap_depth,
            "callbacks": {
                name: {
                    "calls": self.calls[name],
                    "wall_s": self.wall_s[name],
                }
                for name in sorted(self.calls)
            },
        }

    def describe(self) -> str:
        """Multi-line human summary (hottest callbacks first)."""
        lines = [
            f"kernel: {self.events_dispatched} events dispatched, "
            f"peak heap depth {self.max_heap_depth}"
        ]
        for name, wall, calls in self.hottest():
            lines.append(f"  {wall * 1e3:9.2f} ms  {calls:>9} calls  {name}")
        return "\n".join(lines)
