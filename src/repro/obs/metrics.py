"""Windowed per-switch metrics time series.

A :class:`MetricsRegistry` is attached to any network via
:meth:`~repro.netsim.network.NetworkSimulator.attach_metrics`.  Simulators
then feed it two kinds of signals, both keyed by (metric name, switch id):

* **counters** (:meth:`MetricsRegistry.incr`) -- monotone event counts:
  arrivals, drops, arbitration conflicts, credit stalls, ...;
* **gauges** (:meth:`MetricsRegistry.observe_max`) -- instantaneous levels
  sampled on events, of which the per-window *peak* is kept: port
  occupancy (Baldur), queued bytes (electrical switches).

Samples are bucketed into fixed windows of ``window_ns`` simulated
nanoseconds, giving a time series per (metric, switch) at zero cost when
no registry is attached (the hook sites are ``is None`` checks, same as
``fault_hook``).  Like tracing, metrics collection is strictly passive:
it draws no randomness and cannot perturb simulation results.

:meth:`rollup` produces a compact JSON-safe summary (totals and peaks per
switch) that sweep jobs embed in their result dicts; :meth:`to_jsonl`
exports the full time series for offline analysis.  Both iterate in
sorted order so output is deterministic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, TextIO, Tuple, Union

from repro.errors import ConfigurationError

__all__ = ["MetricsRegistry", "RunnerCounters"]

DEFAULT_WINDOW_NS = 1000.0
"""Default aggregation window (1 us of simulated time)."""


class RunnerCounters:
    """Execution-layer counters for the sweep engine's fault machinery.

    Where :class:`MetricsRegistry` observes the *simulated* network,
    ``RunnerCounters`` observes the *execution layer*: retries, worker
    crashes, pool rebuilds, timeouts, quarantines, serial fallbacks.
    :func:`~repro.runner.engine.run_sweep` keeps one per sweep and copies
    its snapshot into ``SweepReport.counters``, so dashboards and CI
    artifacts see how much supervision a campaign needed even when every
    job ultimately succeeded.

    Deliberately tiny: name -> monotone count, sorted on export.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0 on first use)."""
        self._counts[name] = self._counts.get(name, 0) + n

    def count(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """JSON-safe sorted copy of every nonzero counter."""
        return {name: self._counts[name] for name in sorted(self._counts)}

    def describe(self) -> str:
        """One-line human summary."""
        parts = [f"{k}={v}" for k, v in sorted(self._counts.items())]
        return f"RunnerCounters({', '.join(parts) or 'empty'})"


class MetricsRegistry:
    """Collects windowed per-switch counters and gauges."""

    def __init__(self, window_ns: float = DEFAULT_WINDOW_NS) -> None:
        if window_ns <= 0:
            raise ConfigurationError("window_ns must be positive")
        self.window_ns = float(window_ns)
        # metric -> switch id -> window index -> value
        self._counters: Dict[str, Dict[int, Dict[int, float]]] = {}
        self._gauges: Dict[str, Dict[int, Dict[int, float]]] = {}

    def _window(self, t: float) -> int:
        return int(t // self.window_ns)

    # -- recording (the simulator-facing API) -------------------------------

    def incr(self, metric: str, switch_id: int, t: float, n: float = 1) -> None:
        """Add ``n`` to a counter's current window."""
        per_switch = self._counters.setdefault(metric, {})
        windows = per_switch.setdefault(switch_id, {})
        w = self._window(t)
        windows[w] = windows.get(w, 0) + n

    def observe_max(
        self, metric: str, switch_id: int, t: float, value: float
    ) -> None:
        """Record a gauge sample; the window keeps its peak value."""
        per_switch = self._gauges.setdefault(metric, {})
        windows = per_switch.setdefault(switch_id, {})
        w = self._window(t)
        prev = windows.get(w)
        if prev is None or value > prev:
            windows[w] = value

    # -- reading ------------------------------------------------------------

    @property
    def metrics(self) -> List[str]:
        """Every metric name seen so far (counters then gauges), sorted."""
        return sorted(set(self._counters) | set(self._gauges))

    def totals(self, metric: str) -> Dict[int, float]:
        """Whole-run counter totals per switch id."""
        per_switch = self._counters.get(metric, {})
        return {
            sid: sum(windows.values())
            for sid, windows in sorted(per_switch.items())
        }

    def peaks(self, metric: str) -> Dict[int, float]:
        """Whole-run gauge peaks per switch id."""
        per_switch = self._gauges.get(metric, {})
        return {
            sid: max(windows.values())
            for sid, windows in sorted(per_switch.items())
        }

    def series(self, metric: str, switch_id: int) -> List[Tuple[int, float]]:
        """The (window index, value) time series of one (metric, switch)."""
        windows = self._counters.get(metric, {}).get(switch_id)
        if windows is None:
            windows = self._gauges.get(metric, {}).get(switch_id, {})
        return sorted(windows.items())

    def hotspots(self, metric: str, top: int = 5) -> List[Tuple[int, float]]:
        """The ``top`` switches by counter total, descending (diagnosis:
        *where* congestion forms, per the Sec. IV-F visibility story)."""
        totals = self.totals(metric)
        return sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))[:top]

    # -- export -------------------------------------------------------------

    def rollup(self) -> Dict[str, Any]:
        """Compact JSON-safe summary embedded in sweep job results.

        Switch ids become string keys (JSON objects require them); window
        detail is reduced to totals/peaks plus the number of active
        windows, keeping result payloads small and canonical.
        """
        counters: Dict[str, Dict[str, Dict[str, float]]] = {}
        for metric in sorted(self._counters):
            counters[metric] = {
                str(sid): {
                    "total": sum(windows.values()),
                    "windows": len(windows),
                }
                for sid, windows in sorted(self._counters[metric].items())
            }
        gauges: Dict[str, Dict[str, Dict[str, float]]] = {}
        for metric in sorted(self._gauges):
            gauges[metric] = {
                str(sid): {
                    "peak": max(windows.values()),
                    "windows": len(windows),
                }
                for sid, windows in sorted(self._gauges[metric].items())
            }
        return {
            "window_ns": self.window_ns,
            "counters": counters,
            "gauges": gauges,
        }

    def to_jsonl(self, target: Union[str, Path, TextIO]) -> int:
        """Write the full time series as JSON Lines; returns line count.

        One line per (metric, switch, window), sorted, so the file is
        deterministic for a deterministic run.
        """
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                return self.to_jsonl(fh)
        n = 0
        for kind, store in (("counter", self._counters),
                            ("gauge", self._gauges)):
            for metric in sorted(store):
                for sid in sorted(store[metric]):
                    for window, value in sorted(store[metric][sid].items()):
                        target.write(json.dumps({
                            "kind": kind,
                            "metric": metric,
                            "switch": sid,
                            "window": window,
                            "t_start_ns": window * self.window_ns,
                            "value": value,
                        }, sort_keys=True, allow_nan=False))
                        target.write("\n")
                        n += 1
        return n

    def describe(self) -> str:
        """One-line human summary."""
        parts: List[str] = []
        for metric in sorted(self._counters):
            total = sum(sum(w.values()) for w in self._counters[metric].values())
            parts.append(f"{metric}={total:g}")
        for metric in sorted(self._gauges):
            peak = max(max(w.values()) for w in self._gauges[metric].values())
            parts.append(f"{metric}(peak)={peak:g}")
        return f"MetricsRegistry({', '.join(parts) or 'empty'})"
