"""Failure-artifact registry: export traces/metrics when a test fails.

Tests (or any driver) register live :class:`~repro.obs.Tracer` /
:class:`~repro.obs.MetricsRegistry` objects here; the pytest hook in
``tests/conftest.py`` calls :func:`export_all` when a test fails, dumping
each registered object as JSONL under ``$REPRO_TEST_ARTIFACTS_DIR``
(default ``test-artifacts/``).  CI uploads that directory on failed runs,
so a red build ships the packet-level evidence needed to diagnose it.

The registry is process-global and cleared between tests; anything that
exposes ``to_jsonl(path)`` can be registered.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Dict, List

__all__ = ["register", "clear", "pending", "export_all", "artifacts_dir"]

ARTIFACTS_DIR_ENV = "REPRO_TEST_ARTIFACTS_DIR"
"""Environment override for where failure artifacts are written."""

# FORK-001 audited (repro.lint.flow.FORK_STATE_ALLOWLIST): deliberately
# process-local -- each process exports the tracers *it* registered when
# *it* fails; the registry never feeds simulation results.
_PENDING: Dict[str, object] = {}


def register(label: str, exporter) -> None:
    """Register an object with a ``to_jsonl(path)`` method for export.

    Re-registering a label replaces the previous object (a test loop can
    keep registering its latest tracer).
    """
    _PENDING[label] = exporter


def clear() -> None:
    """Drop every registered exporter (called between tests)."""
    _PENDING.clear()


def pending() -> Dict[str, object]:
    """A snapshot of the currently registered exporters."""
    return dict(_PENDING)


def artifacts_dir() -> Path:
    """Where failure artifacts go (env override or ``test-artifacts/``)."""
    return Path(os.environ.get(ARTIFACTS_DIR_ENV, "test-artifacts"))


def _safe(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")[:150]


def export_all(context: str, directory=None) -> List[Path]:
    """Export every registered object as ``<context>--<label>.jsonl``.

    Returns the written paths (empty if nothing is registered -- the
    common case, so failures without observability stay cheap).
    """
    if not _PENDING:
        return []
    root = Path(directory) if directory is not None else artifacts_dir()
    root.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for label, exporter in _PENDING.items():
        path = root / f"{_safe(context)}--{_safe(label)}.jsonl"
        exporter.to_jsonl(path)
        written.append(path)
    return written
