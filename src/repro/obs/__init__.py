"""Observability plane: packet tracing, per-switch metrics, kernel profiling.

CODES-style simulators pair every network model with a first-class
instrumentation plane; this package is ours.  Three always-available,
**off-by-default** facilities shared by all five simulators:

* :class:`Tracer` -- ring-buffered packet lifecycle events (inject,
  stage arrival, arbitration win/loss, drop, ACK, retransmit, deliver)
  with JSONL export and flow-timeline replay (``repro-bench trace``);
  attach with :meth:`~repro.netsim.network.NetworkSimulator.attach_tracer`;
* :class:`MetricsRegistry` -- windowed per-switch/per-stage counters and
  gauges (occupancy, arbitration conflicts, drops, credit stalls); attach
  with :meth:`~repro.netsim.network.NetworkSimulator.attach_metrics`;
* :class:`KernelProfile` -- opt-in event-kernel counters (events
  dispatched, heap depth, per-callback wall time); enable with
  :meth:`~repro.sim.Environment.enable_profiling`.

The overhead contract (DESIGN.md §9): with nothing attached, hook sites
are single ``is None`` checks and allocate nothing; attached observers
are strictly passive (no RNG draws, no simulation-state writes), so they
can never change results.  Sweep jobs opt in via the spec's ``obs``
parameter and embed :func:`obs_payload` rollups in their result dicts.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry, RunnerCounters
from repro.obs.profile import KernelProfile
from repro.obs.tracer import TraceEvent, Tracer, format_timeline

__all__ = [
    "KernelProfile",
    "MetricsRegistry",
    "RunnerCounters",
    "TraceEvent",
    "Tracer",
    "format_timeline",
    "obs_payload",
]


def obs_payload(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    profile: Optional[KernelProfile] = None,
) -> Dict[str, Any]:
    """The JSON-safe observability rollup a sweep job embeds in its result.

    Only deterministic parts are included by default; the kernel profile's
    wall times are wall-clock and are only embedded when explicitly passed
    (sweep jobs never do -- it would break byte-identical results files).
    """
    payload: Dict[str, Any] = {}
    if tracer is not None:
        payload["trace"] = tracer.summary()
    if metrics is not None:
        payload["metrics"] = metrics.rollup()
    if profile is not None:
        payload["profile"] = profile.summary()
    return payload
