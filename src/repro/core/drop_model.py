"""The 'in-house tool' for worst-case drop-rate estimation (Sec. IV-E).

For large networks where detailed simulation is impractical, the paper
estimates the multiplicity needed for a <1% drop rate by simulating the
worst-case scenario: *one packet per server node, all injected so that they
arrive at the first stage of the network at the same time*.  This module
implements that tool, numpy-vectorized so it runs past one million nodes.

At each stage, the packets at every (switch, direction) bin contend for the
m physical ports of that direction; bins with more than m packets drop the
excess uniformly at random.  Survivors proceed to a uniformly random switch
of the correct sub-block (the distributional equivalent of the randomized
wiring).  The structure of the result is Poisson-like: with one packet per
node, the mean occupancy of every bin is ~1, so per-stage overflow
probability falls steeply with m -- m=4 crosses below 1% total drops at
1,024 nodes (10 stages) and m=5 at over a million nodes (20 stages),
reproducing the paper's selection rule.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.sim.rand import numpy_stream

__all__ = ["one_shot_drop_rate", "WORST_CASE_PATTERNS"]


def _dst_random_permutation(n: int, rng: np.random.Generator) -> np.ndarray:
    """A random fixed-point-free pairing of the nodes."""
    while True:
        perm = rng.permutation(n)
        if not np.any(perm == np.arange(n)):
            return perm


def _dst_transpose(n: int, rng: np.random.Generator) -> np.ndarray:
    """Bit-transpose: swap the two halves of the node address (Sec. V-A)."""
    bits = n.bit_length() - 1
    half = bits // 2
    src = np.arange(n)
    low = src & ((1 << half) - 1)
    high = src >> half
    return (low << (bits - half)) | high


def _dst_bisection(n: int, rng: np.random.Generator) -> np.ndarray:
    """Random pairing of the two halves of the machine (Sec. V-A)."""
    half = n // 2
    lower = rng.permutation(half)
    dst = np.empty(n, dtype=np.int64)
    dst[:half] = lower + half  # lower half sends up
    dst[half + lower] = np.arange(half)  # partners reply down
    return dst


WORST_CASE_PATTERNS: Dict[
    str, Callable[[int, np.random.Generator], np.ndarray]
] = {
    "random_permutation": _dst_random_permutation,
    "transpose": _dst_transpose,
    "bisection": _dst_bisection,
}
"""Traffic patterns supported by the worst-case tool."""


def one_shot_drop_rate(
    n_nodes: int,
    multiplicity: int,
    pattern: str = "random_permutation",
    seed: int = 0,
    trials: int = 3,
    destinations: Optional[np.ndarray] = None,
) -> float:
    """Worst-case drop rate: all nodes inject one packet simultaneously.

    Returns the fraction of packets dropped before reaching their
    destination, averaged over ``trials`` independent wirings.  Pass
    ``destinations`` to override the pattern with an explicit destination
    array.
    """
    if n_nodes < 4 or n_nodes & (n_nodes - 1):
        raise TopologyError("node count must be a power of two >= 4")
    if multiplicity < 1:
        raise ConfigurationError("multiplicity must be >= 1")
    if destinations is None and pattern not in WORST_CASE_PATTERNS:
        raise ConfigurationError(
            f"unknown pattern {pattern!r}; "
            f"options: {sorted(WORST_CASE_PATTERNS)}"
        )
    stages = n_nodes.bit_length() - 1
    total_dropped = 0
    for trial in range(trials):
        rng = numpy_stream(seed, f"one-shot-{trial}")
        if destinations is not None:
            dst = np.asarray(destinations, dtype=np.int64)
            if dst.shape != (n_nodes,):
                raise ConfigurationError(
                    "destinations must have one entry per node"
                )
        else:
            dst = WORST_CASE_PATTERNS[pattern](n_nodes, rng)
        switch = np.arange(n_nodes, dtype=np.int64) // 2
        alive_dst = dst
        for stage in range(stages):
            bit = (alive_dst >> (stages - 1 - stage)) & 1
            bins = switch * 2 + bit
            survivors, rank = _contend(bins, multiplicity, rng)
            alive_dst = alive_dst[survivors]
            bit = bit[survivors]
            rank = rank[survivors]
            bins = bins[survivors]
            switch = switch[survivors]
            if stage < stages - 1:
                # The m ports of a (switch, direction) are wired to m
                # *distinct* random switches of the correct sub-block, so
                # the k-th winner of a bin lands on the k-th port's target:
                # a per-bin random base plus the winner's rank, modulo the
                # sub-block size.
                sub_switches = max(1, (n_nodes >> (stage + 1)) // 2)
                block = switch // max(1, (n_nodes >> stage) // 2)
                target_block = 2 * block + bit
                bases = rng.integers(
                    0, sub_switches, size=n_nodes  # one per possible bin
                )
                offset = (bases[bins % n_nodes] + rank) % sub_switches
                switch = target_block * sub_switches + offset
        total_dropped += n_nodes - alive_dst.shape[0]
    return total_dropped / (trials * n_nodes)


def _contend(bins: np.ndarray, capacity: int, rng: np.random.Generator):
    """(winners mask, per-packet rank): up to ``capacity`` winners per bin.

    Rank is the packet's position among its bin's contenders (random order);
    winners are those with rank < capacity.
    """
    tiebreak = rng.random(bins.shape[0])
    order = np.lexsort((tiebreak, bins))
    sorted_bins = bins[order]
    new_bin = np.ones(sorted_bins.shape[0], dtype=bool)
    new_bin[1:] = sorted_bins[1:] != sorted_bins[:-1]
    group_start = np.maximum.accumulate(
        np.where(new_bin, np.arange(sorted_bins.shape[0]), 0)
    )
    rank_sorted = np.arange(sorted_bins.shape[0]) - group_start
    winners = np.empty(bins.shape[0], dtype=bool)
    rank = np.empty(bins.shape[0], dtype=np.int64)
    winners[order] = rank_sorted < capacity
    rank[order] = rank_sorted
    return winners, rank
