"""Fault diagnosis procedure for Baldur (Sec. IV-F, last paragraph).

When an error is detected, Baldur isolates it to a single 2x2 TL switch:
test signals driven by the server nodes block all output ports except one
in every switch, which makes routing deterministic even at multiplicity
greater than 1.  Diagnostic probe packets are then sent between node
pairs; intersecting the paths of lost probes and subtracting the switches
on any delivered probe's path converges on the faulty switch.

This module drives the whole procedure against a live
:class:`~repro.core.baldur_network.BaldurNetwork` with an injected fault.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.baldur_network import BaldurNetwork
from repro.errors import ConfigurationError
from repro.sim.rand import stream
from repro.tl.reliability import diagnose_faulty_switch, make_observation

__all__ = ["run_diagnosis", "probe_outcomes"]


def probe_outcomes(
    network: BaldurNetwork,
    probes: Sequence[Tuple[int, int]],
    spacing_ns: float = 2_000.0,
) -> List[tuple]:
    """Send probe packets through a test-mode network; return observations.

    Probes are spaced out in time so they never contend with each other --
    any loss is attributable to a fault, not congestion.  The network must
    have ``enable_retransmission=False`` (a lost probe must stay lost) and
    test mode enabled (deterministic paths).
    """
    if network.enable_retransmission:
        raise ConfigurationError(
            "diagnosis probes require enable_retransmission=False"
        )
    if network.test_port is None:
        raise ConfigurationError("enable_test_mode() before probing")
    network.record_paths = True
    packets = []
    for i, (src, dst) in enumerate(probes):
        packets.append(network.submit(src, dst, time=i * spacing_ns))
    network.run()
    observations = []
    for packet in packets:
        path = network.paths.get(packet.pid, [])
        delivered = packet.deliver_time is not None
        # A dropped probe's recorded path ends at the faulty switch; the
        # full intended path is the deterministic one.
        full_path = _deterministic_flat_path(network, packet.src, packet.dst)
        observations.append(make_observation(full_path, delivered))
    return observations


def _deterministic_flat_path(
    network: BaldurNetwork, src: int, dst: int
) -> List[int]:
    topo = network.topology
    port = network.test_port
    path = []
    switch = topo.entry_switch(src)
    for stage in range(topo.n_stages):
        path.append(network.flat_switch_id(stage, switch))
        bit = topo.routing_bit(dst, stage)
        switch = topo.next_switches(stage, switch, bit)[port]
    return path


def run_diagnosis(
    n_nodes: int,
    faulty: Tuple[int, int],
    multiplicity: int = 4,
    n_probes: int = 64,
    seed: int = 0,
    test_port: int = 0,
) -> dict:
    """Full diagnosis flow: inject a fault, probe, isolate.

    Returns a report with the candidate switches; with enough probes the
    candidate list converges to exactly the injected fault.
    """
    network = BaldurNetwork(
        n_nodes,
        multiplicity=multiplicity,
        seed=seed,
        enable_retransmission=False,
    )
    network.inject_fault(*faulty)
    network.enable_test_mode(test_port)

    rng = stream(seed, "diagnosis-probes")
    probes = []
    for _ in range(n_probes):
        src = rng.randrange(n_nodes)
        dst = rng.randrange(n_nodes)
        while dst == src:
            dst = rng.randrange(n_nodes)
        probes.append((src, dst))

    observations = probe_outcomes(network, probes)
    candidates = diagnose_faulty_switch(observations)
    faulty_flat = network.flat_switch_id(*faulty)
    return {
        "injected_flat_id": faulty_flat,
        "candidates": candidates,
        "isolated": candidates == [faulty_flat],
        "probes_sent": len(probes),
        "probes_lost": sum(1 for o in observations if not o.delivered),
    }
