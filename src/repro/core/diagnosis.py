"""Fault diagnosis procedure for Baldur (Sec. IV-F, last paragraph).

When an error is detected, Baldur isolates it to a single 2x2 TL switch:
test signals driven by the server nodes block all output ports except one
in every switch, which makes routing deterministic even at multiplicity
greater than 1.  Diagnostic probe packets are then sent between node
pairs; intersecting the paths of lost probes and subtracting the switches
on any delivered probe's path converges on the faulty switch.

With *multiple* concurrent faults a single deterministic path family is
not enough -- lost probes through different faults may share no switch.
The multi-fault flow therefore repeats the probe round once per test
port (each port selects a different deterministic path family over the
same wiring) and runs group-testing isolation
(:func:`~repro.tl.reliability.diagnose_faulty_switches`) over the union
of the observations.

This module drives the whole procedure against a live
:class:`~repro.core.baldur_network.BaldurNetwork` with injected faults.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.baldur_network import BaldurNetwork
from repro.errors import ConfigurationError
from repro.sim.rand import stream
from repro.tl.reliability import (
    diagnose_faulty_switch,
    diagnose_faulty_switches,
    make_observation,
)

__all__ = ["run_diagnosis", "probe_outcomes"]


def probe_outcomes(
    network: BaldurNetwork,
    probes: Sequence[Tuple[int, int]],
    spacing_ns: float = 2_000.0,
) -> List[tuple]:
    """Send probe packets through a test-mode network; return observations.

    Probes are spaced out in time so they never contend with each other --
    any loss is attributable to a fault, not congestion.  The network must
    have ``enable_retransmission=False`` (a lost probe must stay lost) and
    test mode enabled (deterministic paths).
    """
    if network.enable_retransmission:
        raise ConfigurationError(
            "diagnosis probes require enable_retransmission=False"
        )
    if network.test_port is None:
        raise ConfigurationError("enable_test_mode() before probing")
    network.record_paths = True
    packets = []
    for i, (src, dst) in enumerate(probes):
        packets.append(network.submit(src, dst, time=i * spacing_ns))
    network.run()
    observations = []
    for packet in packets:
        delivered = packet.deliver_time is not None
        # A dropped probe's recorded path ends at the faulty switch; the
        # full intended path is the deterministic one.
        full_path = _deterministic_flat_path(network, packet.src, packet.dst)
        observations.append(make_observation(full_path, delivered))
    return observations


def _deterministic_flat_path(
    network: BaldurNetwork, src: int, dst: int
) -> List[int]:
    topo = network.topology
    port = network.test_port
    path = []
    switch = topo.entry_switch(src)
    for stage in range(topo.n_stages):
        path.append(network.flat_switch_id(stage, switch))
        bit = topo.routing_bit(dst, stage)
        switch = topo.next_switches(stage, switch, bit)[port]
    return path


def _normalize_faults(faulty) -> List[Tuple[int, int]]:
    """Accept ``(stage, switch)``, a sequence of them, or nothing."""
    if faulty is None:
        return []
    try:
        items = list(faulty)
    except TypeError:
        raise ConfigurationError(
            f"faulty must be a (stage, switch) pair or a sequence of "
            f"them, got {faulty!r}"
        ) from None
    if not items:
        return []
    if all(isinstance(x, int) for x in items):
        items = [tuple(items)]
    normalized = []
    for item in items:
        try:
            stage, switch = item
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"each fault must be a (stage, switch) pair, got {item!r}"
            ) from None
        if not isinstance(stage, int) or not isinstance(switch, int):
            raise ConfigurationError(
                f"fault coordinates must be integers, got {item!r}"
            )
        normalized.append((stage, switch))
    return normalized


def _probe_list(n_nodes: int, n_probes: int, seed: int) -> List[Tuple[int, int]]:
    rng = stream(seed, "diagnosis-probes")
    probes = []
    for _ in range(n_probes):
        src = rng.randrange(n_nodes)
        dst = rng.randrange(n_nodes)
        while dst == src:
            dst = rng.randrange(n_nodes)
        probes.append((src, dst))
    return probes


def run_diagnosis(
    n_nodes: int,
    faulty,
    multiplicity: int = 4,
    n_probes: int = 64,
    seed: int = 0,
    test_port: int = 0,
) -> dict:
    """Full diagnosis flow: inject fault(s), probe, isolate.

    ``faulty`` is a single ``(stage, switch)`` pair, a sequence of such
    pairs (including the empty sequence for a fault-free control run), or
    ``None``.  A single fault keeps the original one-round flow through
    ``test_port``; zero or multiple faults probe once per test port
    (``range(multiplicity)``) -- the networks share seed and therefore
    wiring, so observations compose -- and run multi-fault group-testing
    isolation over the union.

    Returns a report with the candidate switches; with enough probes the
    candidate list converges to exactly the injected faults.
    """
    faults = _normalize_faults(faulty)

    def fresh_network() -> BaldurNetwork:
        network = BaldurNetwork(
            n_nodes,
            multiplicity=multiplicity,
            seed=seed,
            enable_retransmission=False,
        )
        for stage, switch in faults:
            network.inject_fault(stage, switch)
        return network

    probes = _probe_list(n_nodes, n_probes, seed)

    if len(faults) == 1:
        network = fresh_network()
        network.enable_test_mode(test_port)
        observations = probe_outcomes(network, probes)
        candidates = diagnose_faulty_switch(observations)
        injected = [network.flat_switch_id(*faults[0])]
    else:
        observations = []
        network = None
        for port in range(multiplicity):
            network = fresh_network()
            network.enable_test_mode(port)
            observations.extend(probe_outcomes(network, probes))
        candidates = diagnose_faulty_switches(observations)
        injected = sorted(network.flat_switch_id(*f) for f in faults)

    report = {
        "injected_flat_ids": sorted(injected),
        "candidates": candidates,
        "isolated": candidates == sorted(injected),
        "probes_sent": len(observations),
        "probes_lost": sum(1 for o in observations if not o.delivered),
    }
    if len(faults) == 1:
        report["injected_flat_id"] = injected[0]
    return report
