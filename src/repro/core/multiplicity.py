"""Multiplicity selection for a target drop rate (Sec. IV-E).

The paper's rule: given a network scale, find the smallest multiplicity
whose *worst-case* (one-shot, all-nodes-simultaneous) drop rate stays under
1% across traffic patterns.  The published outcomes are multiplicity 4 for
1,024 nodes, 5 for over a million nodes, and 3 for the 32-node AWGR
comparison (Sec. VII).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro import constants as C
from repro.core.drop_model import WORST_CASE_PATTERNS, one_shot_drop_rate
from repro.errors import ConfigurationError

__all__ = ["required_multiplicity", "multiplicity_for_scale"]


def required_multiplicity(
    n_nodes: int,
    target_drop_rate: float = C.TARGET_DROP_RATE,
    patterns: Optional[Iterable[str]] = None,
    seed: int = 0,
    trials: int = 3,
    max_multiplicity: int = 8,
) -> int:
    """Smallest multiplicity with worst-case drop rate below the target.

    Evaluates :func:`one_shot_drop_rate` for every pattern and takes the
    worst; raises if even ``max_multiplicity`` is insufficient.
    """
    if not 0 < target_drop_rate < 1:
        raise ConfigurationError("target drop rate must be in (0, 1)")
    pattern_list = list(patterns or WORST_CASE_PATTERNS)
    for m in range(1, max_multiplicity + 1):
        worst = max(
            one_shot_drop_rate(n_nodes, m, pattern, seed=seed, trials=trials)
            for pattern in pattern_list
        )
        if worst < target_drop_rate:
            return m
    raise ConfigurationError(
        f"no multiplicity <= {max_multiplicity} meets the "
        f"{target_drop_rate:.0%} target at {n_nodes} nodes"
    )


def multiplicity_for_scale(n_nodes: int) -> int:
    """The paper's published multiplicity choices by scale (Sec. IV-E/VII).

    <= 64 nodes: 3; up to 8K nodes: 4; larger (through 1M+): 5.  Use
    :func:`required_multiplicity` to recompute these from the drop model.
    """
    if n_nodes <= 64:
        return C.MULTIPLICITY_FOR_32
    if n_nodes < 16_384:
        return C.MULTIPLICITY_FOR_1K
    return C.MULTIPLICITY_FOR_1M


def drop_rate_table(
    n_nodes: int,
    multiplicities: Iterable[int] = (1, 2, 3, 4, 5),
    pattern: str = "transpose",
    seed: int = 0,
    trials: int = 3,
) -> Dict[int, float]:
    """Worst-case drop rate per multiplicity (the Sec. IV-E sweep)."""
    return {
        m: one_shot_drop_rate(n_nodes, m, pattern, seed=seed, trials=trials)
        for m in multiplicities
    }
