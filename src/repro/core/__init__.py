"""Baldur: the paper's primary contribution (Sec. IV)."""

from repro.core.baldur_network import BaldurNetwork
from repro.core.diagnosis import probe_outcomes, run_diagnosis
from repro.core.drop_model import WORST_CASE_PATTERNS, one_shot_drop_rate
from repro.core.multiplicity import (
    drop_rate_table,
    multiplicity_for_scale,
    required_multiplicity,
)

__all__ = [
    "BaldurNetwork",
    "probe_outcomes",
    "run_diagnosis",
    "WORST_CASE_PATTERNS",
    "one_shot_drop_rate",
    "drop_rate_table",
    "multiplicity_for_scale",
    "required_multiplicity",
]
