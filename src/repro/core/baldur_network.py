"""The Baldur all-optical network simulator (Sec. IV/V).

Bufferless, clock-less multi-butterfly of 2x2 TL switches:

* **Cut-through streaming** -- a packet's head traverses one stage per
  switch latency (1.5 ns at multiplicity 4, Table V); each traversed output
  port is occupied for the packet's full serialization time.
* **Drops** -- if none of the m output ports of the routing direction is
  free when the header arrives, the packet is dropped on the spot (there
  are no optical buffers).
* **Path multiplicity + randomness** -- a free port is chosen uniformly at
  random among the free ports of the direction; the randomized inter-stage
  wiring provides expansion [14], [19].
* **Retransmission** -- receivers return ACK packets through the network
  (ACKs contend and drop like any packet).  A transmitter that misses the
  ACK within its local timeout retransmits after a binary-exponential-
  backoff delay [48], keeping unACKed packets in a per-node retransmission
  buffer whose peak occupancy is tracked (the 536 KB observation of
  Sec. IV-E).

Latency results account for all drop/retransmission overheads (Sec. V-B).
"""

from __future__ import annotations

from heapq import heappush
from typing import Dict, List, Optional, Set, Tuple

from repro import constants as C
from repro.errors import ConfigurationError, ShardingUnsupportedError
from repro.netsim.network import NetworkSimulator
from repro.netsim.packet import ACK_SIZE_BYTES, Packet
from repro.shard.runtime import MSG_ARRIVE, MSG_DELIVER, shard_stream_seed
from repro.sim.rand import stream
from repro.tl.switch_circuit import switch_model
from repro.topology.butterfly import MultiButterflyTopology

__all__ = ["BaldurNetwork"]

DEFAULT_TIMEOUT_NS = 3000.0
"""Retransmission timeout: comfortably above the unloaded data+ACK RTT
(~700 ns) so only real drops trigger retransmission."""

BEB_SLOT_NS = 200.0
"""Binary exponential backoff slot."""

DEFAULT_MAX_ATTEMPTS = 64
"""Give-up bound; with sub-percent drop rates this is never reached."""

ACK_COALESCE_WINDOW_NS = 50.0
"""Traffic-combining window: deliveries from the same source arriving
within this window share one ACK (Sec. VIII extension)."""


class BaldurNetwork(NetworkSimulator):
    """Packet simulator for Baldur."""

    # Every attribute read in _arrive_stage/_deliver/_transmit resolves
    # through slots (see NetworkSimulator.__slots__).
    __slots__ = (
        "topology",
        "multiplicity",
        "link_delay_ns",
        "link_rate_gbps",
        "switch_latency_ns",
        "timeout_ns",
        "max_attempts",
        "enable_retransmission",
        "_rng",
        "_beb_rng",
        "_busy",
        "_sps",
        "_wiring",
        "_bit_table",
        "_last_stage",
        "_randrange",
        "_getrandbits",
        "_hot",
        "_nic_free_at",
        "_entry",
        "_pending",
        "_delivered_pids",
        "_retx_buffer_bytes",
        "peak_retx_buffer_bytes",
        "lost_packets",
        "packet_filter",
        "ack_coalescing",
        "ack_coalesce_window_ns",
        "filtered_packets",
        "acks_sent",
        "_pending_ack_covers",
        "faulty_switches",
        "test_port",
        "_record_paths",
        "paths",
        "masked_switches",
        "_given_up_pids",
        "unreachable",
        "_quiet",
        "_slow_arb",
        "_fast",
        "_tx_cache",
        "_seed",
    )

    def __init__(
        self,
        n_nodes: int,
        multiplicity: int = C.BALDUR_MULTIPLICITY,
        seed: int = 0,
        link_delay_ns: float = C.BALDUR_LINK_DELAY_NS,
        timeout_ns: float = DEFAULT_TIMEOUT_NS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        enable_retransmission: bool = True,
        topology=None,
        packet_filter=None,
        ack_coalescing: bool = False,
        ack_coalesce_window_ns: float = ACK_COALESCE_WINDOW_NS,
        link_rate_gbps: float = C.LINK_DATA_RATE_GBPS,
    ):
        """Build a Baldur network.

        ``topology`` accepts any multi-stage topology exposing the
        multi-butterfly interface (``n_stages``, ``switches_per_stage``,
        ``entry_switch``, ``routing_bit``, ``next_switches``,
        ``is_last_stage``); by default a randomized multi-butterfly is
        constructed.  ``packet_filter`` enables the in-network security
        filtering of Sec. VIII (a predicate dropping matching packets at
        the first stage); ``ack_coalescing`` enables the traffic-combining
        extension (one ACK acknowledges every delivery it covers).
        """
        super().__init__(n_nodes)
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        self.topology = topology or MultiButterflyTopology(
            n_nodes, multiplicity, seed
        )
        if self.topology.n_nodes != n_nodes:
            raise ConfigurationError(
                "topology node count does not match the network"
            )
        self.multiplicity = multiplicity
        self.link_delay_ns = link_delay_ns
        self.link_rate_gbps = link_rate_gbps
        self.switch_latency_ns = switch_model(multiplicity).latency_ns
        self.timeout_ns = timeout_ns
        self.max_attempts = max_attempts
        self.enable_retransmission = enable_retransmission
        self._seed = seed
        self._rng = stream(seed, "baldur-arbitration")
        self._beb_rng = stream(seed, "baldur-beb")

        # Port occupancy, flattened into one preallocated list:
        # _busy[((stage * sps + switch) * 2 + bit) * m + k] is the time
        # until which physical port k of that (switch, direction) is
        # occupied by a streaming packet.  One flat list keeps arbitration
        # to index arithmetic (no nested-list indirection per hop).
        sps = self.topology.switches_per_stage
        self._busy: List[float] = (
            [0.0] * (self.topology.n_stages * sps * 2 * multiplicity)
        )
        # Hot-path bindings (see _arrive_stage): per-hop method/attribute
        # lookups resolved once here.  _wiring/_bit_table are None for
        # topologies without those tables (e.g. Benes, whose routing_bit
        # draws RNG and so cannot be precomputed) -- the per-hop code then
        # falls back to the topology's methods.
        self._sps = sps
        self._wiring = getattr(self.topology, "wiring", None)
        self._bit_table = getattr(self.topology, "bit_table", None)
        self._last_stage = next(
            s for s in range(self.topology.n_stages)
            if self.topology.is_last_stage(s)
        )
        self._randrange = self._rng.randrange
        self._getrandbits = self._rng.getrandbits
        # All per-hop constants in one tuple: _arrive_stage unpacks it
        # with a single attribute load instead of ~10 (everything here is
        # immutable for the lifetime of the network; mutable/attachable
        # state -- tracer, metrics, faults, masks -- is still read fresh
        # from self on every call).
        self._hot = (
            sps,
            self._last_stage,
            multiplicity,
            self._busy,
            self._bit_table,
            self._wiring,
            self.switch_latency_ns,
            self.link_delay_ns,
            self.link_rate_gbps,
            self._getrandbits,
            self.env,
        )
        # Host NICs serialize injections (data and ACKs share the NIC).
        self._nic_free_at = [0.0] * n_nodes
        # Entry switches, precomputed: _transmit runs once per attempt of
        # every data packet and ACK, and entry_switch() validates its
        # argument on every call.
        self._entry = [
            self.topology.entry_switch(node) for node in range(n_nodes)
        ]
        # Retransmission state.
        self._pending: Dict[int, Packet] = {}
        self._delivered_pids: Set[int] = set()
        self._retx_buffer_bytes = [0] * n_nodes
        self.peak_retx_buffer_bytes = [0] * n_nodes
        self.lost_packets = 0
        # Extensions and diagnosis support.
        self.packet_filter = packet_filter
        self.ack_coalescing = ack_coalescing
        self.ack_coalesce_window_ns = ack_coalesce_window_ns
        self.filtered_packets = 0
        self.acks_sent = 0
        self._pending_ack_covers: Dict[int, List[int]] = {}
        self.faulty_switches: Set[tuple] = set()
        self.test_port: Optional[int] = None
        self._record_paths = False
        self.paths: Dict[int, List[int]] = {}
        # Degraded-mode operation (Sec. IV-F): switches diagnosed as faulty
        # and masked out of routing; the m-way multiplicity routes around.
        self.masked_switches: Set[Tuple[int, int]] = set()
        # Retransmission hardening: pids the source explicitly abandoned
        # (at-most-once delivery suppresses any late copy), and per-flow
        # give-up counts for unreachable-destination reporting.
        self._given_up_pids: Set[int] = set()
        self.unreachable: Dict[Tuple[int, int], int] = {}
        # Serialization times by packet size at the network's (fixed) link
        # rate: first transmits and ACKs hit this dict instead of
        # re-deriving the wire time per packet.
        self._tx_cache: Dict[int, float] = {}
        # _quiet/_slow_arb compress the per-hop observability and
        # arbitration-mode checks into one read each; see
        # _refresh_hot_flags.
        self._refresh_hot_flags()

    def _refresh_hot_flags(self) -> None:
        """Recompute the per-hop fast-path gates.

        ``_quiet`` is True when no observer/fault machinery is attached
        (skip the whole _arrive_stage preamble); ``_slow_arb`` is True
        when arbitration needs the explicit free-port list.  Every
        mutation point -- attach_tracer/attach_metrics/attach_faults via
        the _install hooks, inject_fault, mask_switch/unmask_switch,
        enable_test_mode -- refreshes both, so the hot loop reads one
        slot instead of five.
        """
        self._quiet = (
            self.tracer is None
            and self.metrics is None
            and self.fault_injector is None
            and not self.faulty_switches
        )
        self._slow_arb = (
            self.test_port is not None
            or bool(self.masked_switches)
            or self.metrics is not None
        )
        # One combined gate for the hottest call: when set, _arrive_stage
        # skips its entire preamble with a single slot read.
        self._fast = (
            self._quiet and not self._slow_arb and not self._record_paths
        )

    @property
    def record_paths(self) -> bool:
        """Whether each hop is appended to ``paths`` (diagnosis runs)."""
        return self._record_paths

    @record_paths.setter
    def record_paths(self, value: bool) -> None:
        self._record_paths = bool(value)
        self._refresh_hot_flags()

    def _install_obs(self) -> None:
        super()._install_obs()
        self._refresh_hot_flags()

    def _install_faults(self) -> None:
        super()._install_faults()
        self._refresh_hot_flags()

    # -- fault injection and diagnosis support (Sec. IV-F) ------------------

    def inject_fault(self, stage: int, switch: int) -> None:
        """Mark a 2x2 switch as faulty: it drops every packet it sees."""
        if not 0 <= stage < self.topology.n_stages:
            raise ConfigurationError(f"stage {stage} out of range")
        if not 0 <= switch < self.topology.switches_per_stage:
            raise ConfigurationError(f"switch {switch} out of range")
        self.faulty_switches.add((stage, switch))
        self._refresh_hot_flags()

    def mask_switch(self, stage: int, switch: int) -> None:
        """Degraded mode (Sec. IV-F): exclude a diagnosed switch from
        routing.  Upstream switches stop selecting ports that lead to it,
        so traffic flows through the remaining m-1 paths of each direction.
        Entry (stage-0) switches cannot be routed around -- masking one
        only documents the fault; its hosts' traffic still enters there.
        """
        if not 0 <= stage < self.topology.n_stages:
            raise ConfigurationError(f"stage {stage} out of range")
        if not 0 <= switch < self.topology.switches_per_stage:
            raise ConfigurationError(f"switch {switch} out of range")
        self.masked_switches.add((stage, switch))
        self._refresh_hot_flags()

    def unmask_switch(self, stage: int, switch: int) -> None:
        """Return a repaired switch to service."""
        self.masked_switches.discard((stage, switch))
        self._refresh_hot_flags()

    def switch_ids(self) -> List[int]:
        """Flat ids of every 2x2 switch (stage-major, as in diagnosis)."""
        return list(
            range(self.topology.n_stages * self.topology.switches_per_stage)
        )

    def enable_test_mode(self, port: int = 0) -> None:
        """Diagnosis test mode (Sec. IV-F): test signals block all output
        ports except ``port`` in every switch, making routing deterministic
        even at multiplicity > 1."""
        if not 0 <= port < self.multiplicity:
            raise ConfigurationError(
                f"test port {port} out of range [0, {self.multiplicity})"
            )
        self.test_port = port
        self._refresh_hot_flags()

    def flat_switch_id(self, stage: int, switch: int) -> int:
        """Flat id used in recorded paths."""
        return stage * self.topology.switches_per_stage + switch

    # -- injection -----------------------------------------------------------

    def _inject(self, packet: Packet) -> None:
        filt = self.packet_filter
        if filt is not None and filt(packet):
            # In-network filtering (Sec. VIII): the first-stage switch
            # blocks the packet; no retransmission state is created.
            self.filtered_packets += 1
            if self.tracer is not None:
                self.tracer.record(
                    self.env.now, "drop", packet, note="filtered"
                )
            if not packet.is_ack:
                self._record_terminal_drop(packet)
            return
        if self.tracer is not None:
            self.tracer.record(self.env.now, "inject", packet)
        if self.enable_retransmission and not packet.is_ack:
            src = packet.src
            retx = self._retx_buffer_bytes
            retx[src] += packet.size_bytes
            self._pending[packet.pid] = packet
            peak = retx[src]
            if peak > self.peak_retx_buffer_bytes[src]:
                self.peak_retx_buffer_bytes[src] = peak
        self._transmit(packet, 1)

    def _transmit(self, packet: Packet, attempt: int) -> None:
        """Serialize onto the source NIC and launch into stage 0."""
        env = self.env
        now = env._now
        src = packet.src
        nic = self._nic_free_at
        free_at = nic[src]
        start = free_at if free_at > now else now
        rate = self.link_rate_gbps
        if packet._tx_rate == rate:
            tx = packet._tx_ns
        else:
            # First transmit of this packet: take the wire time from the
            # per-size cache (same deterministic value the packet memo
            # would compute) and seed the memo for later hops.
            size = packet.size_bytes
            tx = self._tx_cache.get(size)
            if tx is None:
                tx = packet.serialization_time_ns(rate)
                self._tx_cache[size] = tx
            else:
                packet._tx_rate = rate
                packet._tx_ns = tx
        nic[src] = start + tx
        # start >= now and the offsets are non-negative model constants,
        # so the unvalidated inline heap push (Environment._push,
        # open-coded) is safe here.
        queue = env._queue
        seq = env._seq
        ctx = self._shard_ctx
        if ctx is None or ctx.stage_shard[0] == ctx.shard:
            heappush(
                queue,
                (start + self.link_delay_ns, seq,
                 self._arrive_stage, (packet, 0, self._entry[src])),
            )
            seq += 1
        else:
            # Sharded worker whose stage-0 block lives elsewhere: the
            # injection-link hop crosses the cut.  The retransmission
            # timeout (below) always stays with the source host.
            ctx.send(
                ctx.stage_shard[0],
                (MSG_ARRIVE, start + self.link_delay_ns, 0,
                 self._entry[src], packet.pid, src, packet.dst,
                 packet.size_bytes, packet.create_time, packet.is_ack,
                 packet.acked_pid, packet.hops),
            )
        if (
            self.enable_retransmission
            and not packet.is_ack
            and attempt <= self.max_attempts
        ):
            heappush(
                queue,
                (start + self.timeout_ns, seq,
                 self._check_timeout, (packet, attempt)),
            )
            seq += 1
        env._seq = seq

    # -- switch traversal ---------------------------------------------------------

    def _arrive_stage(self, packet: Packet, stage: int, switch: int) -> None:
        """Packet header reaches (stage, switch): arbitrate and forward.

        This is the simulator's hottest function (one call per packet per
        stage), so it is engineered as a fast/slow split (DESIGN.md
        section 10).  The fast path -- no test mode, no masked switches,
        no metrics -- arbitrates with an allocation-free two-pass scan of
        the flat ``_busy`` array; the slow path builds the explicit
        free-port list that masking/test-mode filtering and the metrics
        occupancy gauge need.  Both consume the arbitration RNG
        identically (one ``randrange(n_free)`` draw iff more than one
        port is free, picking the idx-th free port in ascending order),
        so results are byte-identical across paths.
        """
        (sps, last_stage, m, busy, bits, wiring, switch_latency,
         link_delay, rate, getrandbits, env) = self._hot
        now = env._now  # dispatch set the clock; skip the property hop
        fast = self._fast
        if fast:
            tracer = metrics = injector = None
        else:
            if self._record_paths:
                self.paths.setdefault(packet.pid, []).append(
                    stage * sps + switch
                )
            tracer = self.tracer
            metrics = self.metrics
            injector = self.fault_injector
            faulty = self.faulty_switches
            flat = stage * sps + switch
            if tracer is not None:
                tracer.record(
                    now, "stage_arrival", packet, switch=flat, stage=stage
                )
            if metrics is not None:
                metrics.incr("arrivals", flat, now)
            if (stage, switch) in faulty or (
                injector is not None and injector.check_drop(flat, now)
            ):
                self._drop_in_network(packet, stage=stage, switch=switch,
                                      note="fault")
                return
        bit = (
            bits[packet.dst][stage]
            if bits is not None
            else self.topology.routing_bit(packet.dst, stage)
        )
        last = stage == last_stage
        targets = (
            wiring[stage][switch][bit]
            if wiring is not None
            else self.topology.next_switches(stage, switch, bit)
        )
        base = ((stage * sps + switch) * 2 + bit) * m
        if not fast and self._slow_arb:
            # Slow path: the explicit free-port list.  Test mode pins one
            # port, degraded mode filters ports by masked target, and the
            # metrics occupancy gauge needs the full free count.
            if self.test_port is not None:
                free = (
                    [self.test_port]
                    if busy[base + self.test_port] <= now else []
                )
            else:
                free = [k for k in range(m) if busy[base + k] <= now]
                if self.masked_switches and not last:
                    # Degraded mode: never forward into a masked switch.
                    free = [
                        k for k in free
                        if (stage + 1, targets[k]) not in self.masked_switches
                    ]
            if metrics is not None:
                n_busy = m - len(free)
                metrics.observe_max("occupancy_ports", flat, now, n_busy)
                if n_busy:
                    metrics.incr("arb_conflicts", flat, now)
            if not free:
                if tracer is not None:
                    tracer.record(
                        now, "arb_loss", packet, switch=flat, stage=stage
                    )
                self._drop_in_network(packet, stage=stage, switch=switch,
                                      note="all ports busy")
                return
            n_free = len(free)
            k = free[self._randrange(n_free)] if n_free > 1 else free[0]
        else:
            # Fast path: count the free ports without building a list.
            n_free = 0
            k = base
            i = base
            end = base + m
            while i < end:
                if busy[i] <= now:
                    n_free += 1
                    k = i
                i += 1
            if n_free == 0:
                if tracer is not None:
                    tracer.record(
                        now, "arb_loss", packet, switch=flat, stage=stage
                    )
                self._drop_in_network(packet, stage=stage, switch=switch,
                                      note="all ports busy")
                return
            if n_free > 1:
                # Same draw as the list path: pick the idx-th free port
                # in ascending order.  randrange(n) is inlined as
                # CPython's Random._randbelow rejection loop (draw
                # bit_length(n) bits, reject >= n) -- verbatim, so the
                # RNG stream stays byte-identical while skipping two
                # Python call frames per arbitration.
                nbits = n_free.bit_length()
                idx = getrandbits(nbits)
                while idx >= n_free:
                    idx = getrandbits(nbits)
                if n_free == m:
                    # Every port is free (the common case at light load):
                    # the idx-th free port is simply port idx.
                    k = base + idx
                else:
                    i = base
                    while True:
                        if busy[i] <= now:
                            if idx == 0:
                                k = i
                                break
                            idx -= 1
                        i += 1
            k -= base
        tx = (
            packet._tx_ns if packet._tx_rate == rate
            else packet.serialization_time_ns(rate)
        )
        busy[base + k] = now + tx
        if tracer is not None:
            tracer.record(
                now, "arb_win", packet, switch=flat, stage=stage, port=k
            )
        packet.hops += 1
        latency = switch_latency
        if injector is not None:
            latency += injector.extra_latency_ns(flat, now)
        # Delays below are sums of non-negative model constants, so the
        # unvalidated inline heap push (Environment._push, open-coded to
        # save a call per hop) is safe.
        seq = env._seq
        env._seq = seq + 1
        ctx = self._shard_ctx
        if ctx is None:
            if last:
                # Head exits to the host link; last byte lands after tx
                # time.  The delay sum is grouped exactly as the
                # pre-optimization schedule(delay) call computed it --
                # float addition is not associative, and byte-identity
                # demands identical rounding.
                heappush(
                    env._queue,
                    (now + (latency + link_delay + tx), seq,
                     self._deliver, (packet,)),
                )
            else:
                heappush(
                    env._queue,
                    (now + latency, seq,
                     self._arrive_stage, (packet, stage + 1, targets[k])),
                )
            return
        # Sharded worker: forward across the cut when the next element is
        # owned elsewhere.  Cut inter-stage hops carry the optional extra
        # inter-cabinet fiber delay (ctx.cut_delay_ns; plan lookahead).
        if last:
            when = now + (latency + link_delay + tx)
            dest = ctx.host_shard[packet.dst]
            if dest == ctx.shard:
                heappush(env._queue, (when, seq, self._deliver, (packet,)))
            else:
                ctx.send(
                    dest,
                    (MSG_DELIVER, when, packet.pid, packet.src, packet.dst,
                     packet.size_bytes, packet.create_time, packet.is_ack,
                     packet.acked_pid, packet.hops),
                )
        else:
            dest = ctx.stage_shard[stage + 1]
            if dest == ctx.shard:
                heappush(
                    env._queue,
                    (now + latency, seq,
                     self._arrive_stage, (packet, stage + 1, targets[k])),
                )
            else:
                ctx.send(
                    dest,
                    (MSG_ARRIVE, now + (latency + ctx.cut_delay_ns),
                     stage + 1, targets[k], packet.pid, packet.src,
                     packet.dst, packet.size_bytes, packet.create_time,
                     packet.is_ack, packet.acked_pid, packet.hops),
                )

    def _drop_in_network(
        self,
        packet: Packet,
        stage: Optional[int] = None,
        switch: Optional[int] = None,
        note: Optional[str] = None,
    ) -> None:
        """An in-network drop; terminal when no retransmission follows.

        ``stage``/``switch`` locate the drop for tracing and per-switch
        metrics attribution when known.
        """
        packet.dropped = True
        self.stats.record_drop(is_ack=packet.is_ack)
        flat = (
            self.flat_switch_id(stage, switch)
            if stage is not None and switch is not None
            else None
        )
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "drop", packet,
                switch=flat, stage=stage, note=note,
            )
        if self.metrics is not None and flat is not None:
            self.metrics.incr("drops", flat, self.env.now)
        if not packet.is_ack and not self.enable_retransmission:
            self._record_terminal_drop(packet)

    # -- delivery and acknowledgements ------------------------------------------------

    def _deliver(self, packet: Packet) -> None:
        if packet.is_ack:
            self._handle_ack(packet)
            return
        pid = packet.pid
        if pid in self._given_up_pids:
            # The source already declared this packet lost and the ledger
            # counted it as given up; at-most-once delivery suppresses the
            # late copy entirely (no stats, no hook, no ACK).
            return
        now = self.env._now
        delivered = self._delivered_pids
        if pid not in delivered:
            delivered.add(pid)
            packet.deliver_time = now
            self._on_delivered(packet, now)
        # ACK every arrival (duplicates re-ACK in case the ACK was lost).
        if self.enable_retransmission:
            if self.ack_coalescing:
                self._coalesce_ack(packet, now)
            else:
                self._send_ack(packet.dst, packet.src, (pid,), now)

    def _send_ack(self, src: int, dst: int, covered, now: float) -> None:
        pid = self._next_pid
        self._next_pid = pid + 1
        ack = Packet(
            pid=pid,
            src=src,
            dst=dst,
            size_bytes=ACK_SIZE_BYTES,
            create_time=now,
            is_ack=True,
            acked_pid=tuple(covered),
        )
        filt = self.packet_filter
        if filt is not None and filt(ack):
            self.filtered_packets += 1
            if self.tracer is not None:
                self.tracer.record(now, "drop", ack, note="filtered")
            return
        self.acks_sent += 1
        if self.tracer is not None:
            self.tracer.record(
                now, "ack", ack, acked=tuple(covered), note="sent"
            )
        self._transmit(ack, 1)

    def _coalesce_ack(self, packet: Packet, now: float) -> None:
        """Traffic-combining extension (Sec. VIII): deliveries from the
        same source within a short window share one ACK."""
        key = packet.dst * self.n_nodes + packet.src
        covers = self._pending_ack_covers.get(key)
        if covers is not None:
            covers.append(packet.pid)
            return
        self._pending_ack_covers[key] = [packet.pid]

        def flush() -> None:
            covered = self._pending_ack_covers.pop(key, [])
            if covered:
                self._send_ack(
                    packet.dst, packet.src, covered, self.env.now
                )

        self.env.schedule(self.ack_coalesce_window_ns, flush)

    def _handle_ack(self, ack: Packet) -> None:
        covered = (
            ack.acked_pid
            if isinstance(ack.acked_pid, tuple)
            else (ack.acked_pid,)
        )
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "ack", ack, acked=covered, note="received"
            )
        pending_pop = self._pending.pop
        retx = self._retx_buffer_bytes
        for pid in covered:
            data = pending_pop(pid, None)
            if data is not None:
                retx[data.src] -= data.size_bytes

    # -- timeouts and backoff ---------------------------------------------------------

    def _check_timeout(self, packet: Packet, attempt: int) -> None:
        if packet.pid not in self._pending:
            return  # ACKed in the meantime
        if attempt >= self.max_attempts:
            # Max-retry give-up: report the unreachable destination
            # explicitly instead of backing off forever.
            self._pending.pop(packet.pid, None)
            self._retx_buffer_bytes[packet.src] -= packet.size_bytes
            self.lost_packets += 1
            if packet.pid not in self._delivered_pids:
                # Truly undelivered (not just a lost ACK): close the
                # ledger entry and bar any still-streaming copy from
                # being counted later (the delivery/give-up race).
                self._given_up_pids.add(packet.pid)
                flow = (packet.src, packet.dst)
                self.unreachable[flow] = self.unreachable.get(flow, 0) + 1
                self._record_give_up(packet)
            return
        self.stats.record_retransmission()
        packet.retransmissions += 1
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "retransmit", packet,
                note=f"attempt {attempt + 1}",
            )
        backoff = (
            self._beb_rng.randrange(0, 2 ** min(attempt, 10)) * BEB_SLOT_NS
        )
        self.env.schedule(
            backoff, self._transmit, packet, attempt + 1
        )

    # -- sharded execution (repro.shard, DESIGN.md section 14) -------------------------

    def shard_plan(self, n_shards: int, shard_latency_ns: float = 0.0):
        """Stage-cut partition: contiguous stage blocks, matching
        contiguous host blocks.  ``shard_latency_ns`` models extra
        inter-cabinet fiber on the cut inter-stage hops (0.0 keeps
        single-cabinet physics; the lookahead is then one switch
        latency)."""
        if self._wiring is None or self._bit_table is None:
            raise ShardingUnsupportedError(
                "sharded Baldur requires a topology with precomputed "
                "wiring/bit tables (randomized multi-butterfly); "
                f"{type(self.topology).__name__} has none"
            )
        from repro.shard.plan import multistage_plan

        return multistage_plan(
            self.topology,
            n_shards,
            link_delay_ns=self.link_delay_ns,
            switch_latency_ns=self.switch_latency_ns,
            cut_delay_ns=shard_latency_ns,
        )

    def _shard_check_supported(self) -> None:
        reasons = []
        if self.faulty_switches:
            reasons.append("injected switch faults")
        if self.masked_switches:
            reasons.append("masked switches (degraded mode)")
        if self.test_port is not None:
            reasons.append("diagnosis test mode")
        if self._record_paths:
            reasons.append("path recording")
        if reasons:
            raise ShardingUnsupportedError(
                "cannot shard this Baldur run: " + "; ".join(reasons)
            )

    def shard_recipe(self):
        return (
            type(self),
            {
                "n_nodes": self.n_nodes,
                "multiplicity": self.multiplicity,
                "seed": self._seed,
                "link_delay_ns": self.link_delay_ns,
                "timeout_ns": self.timeout_ns,
                "max_attempts": self.max_attempts,
                "enable_retransmission": self.enable_retransmission,
                # The live topology object: inherited copy-on-write by
                # forked workers, shared by inline workers -- read-only
                # either way, and never pickled.
                "topology": self.topology,
                "packet_filter": self.packet_filter,
                "ack_coalescing": self.ack_coalescing,
                "ack_coalesce_window_ns": self.ack_coalesce_window_ns,
                "link_rate_gbps": self.link_rate_gbps,
            },
        )

    def _shard_bind(self, ctx, root_seed: int) -> None:
        """Rebind the RNG streams to the documented per-shard contract:
        shard ``i`` draws from ``stream(derive_seed(root, f"shard:{i}"),
        label)`` with the unchanged substream labels."""
        super()._shard_bind(ctx, root_seed)
        seed = shard_stream_seed(root_seed, ctx.shard)
        self._rng = stream(seed, "baldur-arbitration")
        self._beb_rng = stream(seed, "baldur-beb")
        self._randrange = self._rng.randrange
        self._getrandbits = self._rng.getrandbits
        # _hot caches _getrandbits; rebuild it with the shard stream.
        self._hot = (
            self._sps,
            self._last_stage,
            self.multiplicity,
            self._busy,
            self._bit_table,
            self._wiring,
            self.switch_latency_ns,
            self.link_delay_ns,
            self.link_rate_gbps,
            self._getrandbits,
            self.env,
        )

    def _shard_schedule_inbox(self, messages) -> None:
        env = self.env
        for msg in messages:
            kind = msg[0]
            if kind == MSG_ARRIVE:
                (_kind, when, stage, switch, pid, src, dst, size_bytes,
                 create_time, is_ack, acked_pid, hops) = msg
                packet = Packet(
                    pid=pid,
                    src=src,
                    dst=dst,
                    size_bytes=size_bytes,
                    create_time=create_time,
                    is_ack=is_ack,
                    acked_pid=acked_pid,
                )
                packet.hops = hops
                env.schedule_at(when, self._arrive_stage, packet, stage, switch)
            elif kind == MSG_DELIVER:
                (_kind, when, pid, src, dst, size_bytes,
                 create_time, is_ack, acked_pid, hops) = msg
                packet = Packet(
                    pid=pid,
                    src=src,
                    dst=dst,
                    size_bytes=size_bytes,
                    create_time=create_time,
                    is_ack=is_ack,
                    acked_pid=acked_pid,
                )
                packet.hops = hops
                env.schedule_at(when, self._deliver, packet)
            else:  # pragma: no cover - protocol bug
                raise ConfigurationError(
                    f"unknown cross-shard message kind {kind}"
                )

    def _shard_note_remote_delivery(self, pid: int) -> None:
        # The destination shard delivered this packet: mark it delivered
        # locally so _check_timeout stands down (same set _deliver uses;
        # the pid spaces cannot collide -- data pids are parent-allocated
        # and globally unique).
        self._delivered_pids.add(pid)

    def _shard_unmatched_delivery_notice(self, pid: int) -> None:
        if pid in self._given_up_pids:
            # Outcome conflict inside one lookahead window: the source
            # gave up while the delivery (already executed remotely) was
            # in notice flight.  Both outcomes were counted; one
            # correction unit rebalances the audit.
            self._ledger_corrections += 1
        else:
            super()._shard_unmatched_delivery_notice(pid)

    def _shard_export(self):
        payload = super()._shard_export()
        payload["lost_packets"] = self.lost_packets
        payload["acks_sent"] = self.acks_sent
        payload["filtered_packets"] = self.filtered_packets
        payload["retx_buffer_bytes"] = self._retx_buffer_bytes
        payload["peak_retx_buffer_bytes"] = self.peak_retx_buffer_bytes
        payload["unreachable"] = self.unreachable
        payload["given_up_pids"] = sorted(self._given_up_pids)
        return payload

    def _shard_absorb(self, payloads, plan, until) -> None:
        super()._shard_absorb(payloads, plan, until)
        self.lost_packets = sum(p["lost_packets"] for p in payloads)
        self.acks_sent = sum(p["acks_sent"] for p in payloads)
        self.filtered_packets = sum(p["filtered_packets"] for p in payloads)
        # Per-host arrays are only ever touched on the owning shard, so
        # elementwise sum/max reconstructs the owner's values exactly.
        n = self.n_nodes
        self._retx_buffer_bytes = [
            sum(p["retx_buffer_bytes"][i] for p in payloads) for i in range(n)
        ]
        self.peak_retx_buffer_bytes = [
            max(p["peak_retx_buffer_bytes"][i] for p in payloads)
            for i in range(n)
        ]
        given_up: Set[int] = set()
        unreachable: Dict[Tuple[int, int], int] = {}
        for p in payloads:
            given_up.update(p["given_up_pids"])
            for flow, count in sorted(p["unreachable"].items()):
                unreachable[flow] = unreachable.get(flow, 0) + count
        self._given_up_pids = given_up
        self.unreachable = unreachable

    # -- reporting --------------------------------------------------------------------

    def unloaded_latency_ns(
        self,
        src: int = 0,
        dst: int = 1,
        size_bytes: int = C.PACKET_SIZE_BYTES,
    ) -> float:
        """Analytic zero-load end-to-end latency of one packet.

        Injection link + one switch latency per stage + ejection link +
        one serialization time (cut-through: the head streams through all
        stages; the last byte lands one wire time after the head).  The
        multi-butterfly is stage-symmetric, so this is independent of the
        (src, dst) pair; a single packet in an otherwise idle network
        must measure exactly this (the conformance-test invariant).
        """
        return (
            2 * self.link_delay_ns
            + self.topology.n_stages * self.switch_latency_ns
            + C.packet_serialization_ns(size_bytes, self.link_rate_gbps)
        )

    @property
    def peak_retx_buffer_kb(self) -> float:
        """Largest per-node retransmission-buffer occupancy seen (KB)."""
        return max(self.peak_retx_buffer_bytes) / 1024.0

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return (
            f"baldur nodes={self.n_nodes} m={self.multiplicity} "
            f"stages={self.topology.n_stages} "
            f"switch_latency={self.switch_latency_ns}ns"
        )
