"""The Baldur all-optical network simulator (Sec. IV/V).

Bufferless, clock-less multi-butterfly of 2x2 TL switches:

* **Cut-through streaming** -- a packet's head traverses one stage per
  switch latency (1.5 ns at multiplicity 4, Table V); each traversed output
  port is occupied for the packet's full serialization time.
* **Drops** -- if none of the m output ports of the routing direction is
  free when the header arrives, the packet is dropped on the spot (there
  are no optical buffers).
* **Path multiplicity + randomness** -- a free port is chosen uniformly at
  random among the free ports of the direction; the randomized inter-stage
  wiring provides expansion [14], [19].
* **Retransmission** -- receivers return ACK packets through the network
  (ACKs contend and drop like any packet).  A transmitter that misses the
  ACK within its local timeout retransmits after a binary-exponential-
  backoff delay [48], keeping unACKed packets in a per-node retransmission
  buffer whose peak occupancy is tracked (the 536 KB observation of
  Sec. IV-E).

Latency results account for all drop/retransmission overheads (Sec. V-B).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro import constants as C
from repro.errors import ConfigurationError
from repro.netsim.network import NetworkSimulator
from repro.netsim.packet import ACK_SIZE_BYTES, Packet
from repro.sim.rand import stream
from repro.tl.switch_circuit import switch_model
from repro.topology.butterfly import MultiButterflyTopology

__all__ = ["BaldurNetwork"]

DEFAULT_TIMEOUT_NS = 3000.0
"""Retransmission timeout: comfortably above the unloaded data+ACK RTT
(~700 ns) so only real drops trigger retransmission."""

BEB_SLOT_NS = 200.0
"""Binary exponential backoff slot."""

DEFAULT_MAX_ATTEMPTS = 64
"""Give-up bound; with sub-percent drop rates this is never reached."""

ACK_COALESCE_WINDOW_NS = 50.0
"""Traffic-combining window: deliveries from the same source arriving
within this window share one ACK (Sec. VIII extension)."""


class BaldurNetwork(NetworkSimulator):
    """Packet simulator for Baldur."""

    def __init__(
        self,
        n_nodes: int,
        multiplicity: int = C.BALDUR_MULTIPLICITY,
        seed: int = 0,
        link_delay_ns: float = C.BALDUR_LINK_DELAY_NS,
        timeout_ns: float = DEFAULT_TIMEOUT_NS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        enable_retransmission: bool = True,
        topology=None,
        packet_filter=None,
        ack_coalescing: bool = False,
        ack_coalesce_window_ns: float = ACK_COALESCE_WINDOW_NS,
        link_rate_gbps: float = C.LINK_DATA_RATE_GBPS,
    ):
        """Build a Baldur network.

        ``topology`` accepts any multi-stage topology exposing the
        multi-butterfly interface (``n_stages``, ``switches_per_stage``,
        ``entry_switch``, ``routing_bit``, ``next_switches``,
        ``is_last_stage``); by default a randomized multi-butterfly is
        constructed.  ``packet_filter`` enables the in-network security
        filtering of Sec. VIII (a predicate dropping matching packets at
        the first stage); ``ack_coalescing`` enables the traffic-combining
        extension (one ACK acknowledges every delivery it covers).
        """
        super().__init__(n_nodes)
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        self.topology = topology or MultiButterflyTopology(
            n_nodes, multiplicity, seed
        )
        if self.topology.n_nodes != n_nodes:
            raise ConfigurationError(
                "topology node count does not match the network"
            )
        self.multiplicity = multiplicity
        self.link_delay_ns = link_delay_ns
        self.link_rate_gbps = link_rate_gbps
        self.switch_latency_ns = switch_model(multiplicity).latency_ns
        self.timeout_ns = timeout_ns
        self.max_attempts = max_attempts
        self.enable_retransmission = enable_retransmission
        self._rng = stream(seed, "baldur-arbitration")
        self._beb_rng = stream(seed, "baldur-beb")

        # Port occupancy: _busy[(stage * sps + switch) * 2 + bit][k] is the
        # time until which physical port k of that (switch, direction) is
        # occupied by a streaming packet.
        sps = self.topology.switches_per_stage
        self._busy: List[List[float]] = [
            [0.0] * multiplicity
            for _ in range(self.topology.n_stages * sps * 2)
        ]
        # Host NICs serialize injections (data and ACKs share the NIC).
        self._nic_free_at = [0.0] * n_nodes
        # Retransmission state.
        self._pending: Dict[int, Packet] = {}
        self._delivered_pids: Set[int] = set()
        self._retx_buffer_bytes = [0] * n_nodes
        self.peak_retx_buffer_bytes = [0] * n_nodes
        self.lost_packets = 0
        # Extensions and diagnosis support.
        self.packet_filter = packet_filter
        self.ack_coalescing = ack_coalescing
        self.ack_coalesce_window_ns = ack_coalesce_window_ns
        self.filtered_packets = 0
        self.acks_sent = 0
        self._pending_ack_covers: Dict[int, List[int]] = {}
        self.faulty_switches: Set[tuple] = set()
        self.test_port: Optional[int] = None
        self.record_paths = False
        self.paths: Dict[int, List[int]] = {}
        # Degraded-mode operation (Sec. IV-F): switches diagnosed as faulty
        # and masked out of routing; the m-way multiplicity routes around.
        self.masked_switches: Set[Tuple[int, int]] = set()
        # Retransmission hardening: pids the source explicitly abandoned
        # (at-most-once delivery suppresses any late copy), and per-flow
        # give-up counts for unreachable-destination reporting.
        self._given_up_pids: Set[int] = set()
        self.unreachable: Dict[Tuple[int, int], int] = {}

    # -- fault injection and diagnosis support (Sec. IV-F) ------------------

    def inject_fault(self, stage: int, switch: int) -> None:
        """Mark a 2x2 switch as faulty: it drops every packet it sees."""
        if not 0 <= stage < self.topology.n_stages:
            raise ConfigurationError(f"stage {stage} out of range")
        if not 0 <= switch < self.topology.switches_per_stage:
            raise ConfigurationError(f"switch {switch} out of range")
        self.faulty_switches.add((stage, switch))

    def mask_switch(self, stage: int, switch: int) -> None:
        """Degraded mode (Sec. IV-F): exclude a diagnosed switch from
        routing.  Upstream switches stop selecting ports that lead to it,
        so traffic flows through the remaining m-1 paths of each direction.
        Entry (stage-0) switches cannot be routed around -- masking one
        only documents the fault; its hosts' traffic still enters there.
        """
        if not 0 <= stage < self.topology.n_stages:
            raise ConfigurationError(f"stage {stage} out of range")
        if not 0 <= switch < self.topology.switches_per_stage:
            raise ConfigurationError(f"switch {switch} out of range")
        self.masked_switches.add((stage, switch))

    def unmask_switch(self, stage: int, switch: int) -> None:
        """Return a repaired switch to service."""
        self.masked_switches.discard((stage, switch))

    def switch_ids(self) -> List[int]:
        """Flat ids of every 2x2 switch (stage-major, as in diagnosis)."""
        return list(
            range(self.topology.n_stages * self.topology.switches_per_stage)
        )

    def enable_test_mode(self, port: int = 0) -> None:
        """Diagnosis test mode (Sec. IV-F): test signals block all output
        ports except ``port`` in every switch, making routing deterministic
        even at multiplicity > 1."""
        if not 0 <= port < self.multiplicity:
            raise ConfigurationError(
                f"test port {port} out of range [0, {self.multiplicity})"
            )
        self.test_port = port

    def flat_switch_id(self, stage: int, switch: int) -> int:
        """Flat id used in recorded paths."""
        return stage * self.topology.switches_per_stage + switch

    # -- injection -----------------------------------------------------------

    def _inject(self, packet: Packet) -> None:
        if self.packet_filter is not None and self.packet_filter(packet):
            # In-network filtering (Sec. VIII): the first-stage switch
            # blocks the packet; no retransmission state is created.
            self.filtered_packets += 1
            if self.tracer is not None:
                self.tracer.record(
                    self.env.now, "drop", packet, note="filtered"
                )
            if not packet.is_ack:
                self._record_terminal_drop(packet)
            return
        if self.tracer is not None:
            self.tracer.record(self.env.now, "inject", packet)
        if self.enable_retransmission and not packet.is_ack:
            self._pending[packet.pid] = packet
            self._retx_buffer_bytes[packet.src] += packet.size_bytes
            peak = self._retx_buffer_bytes[packet.src]
            if peak > self.peak_retx_buffer_bytes[packet.src]:
                self.peak_retx_buffer_bytes[packet.src] = peak
        self._transmit(packet, attempt=1)

    def _transmit(self, packet: Packet, attempt: int) -> None:
        """Serialize onto the source NIC and launch into stage 0."""
        now = self.env.now
        start = max(now, self._nic_free_at[packet.src])
        tx = packet.serialization_time_ns(self.link_rate_gbps)
        self._nic_free_at[packet.src] = start + tx
        entry = self.topology.entry_switch(packet.src)
        self.env.schedule_at(
            start + self.link_delay_ns,
            self._arrive_stage,
            packet,
            0,
            entry,
        )
        if (
            self.enable_retransmission
            and not packet.is_ack
            and attempt <= self.max_attempts
        ):
            self.env.schedule_at(
                start + self.timeout_ns, self._check_timeout, packet, attempt
            )

    # -- switch traversal ---------------------------------------------------------

    def _arrive_stage(self, packet: Packet, stage: int, switch: int) -> None:
        """Packet header reaches (stage, switch): arbitrate and forward."""
        now = self.env.now
        topo = self.topology
        if self.record_paths:
            self.paths.setdefault(packet.pid, []).append(
                self.flat_switch_id(stage, switch)
            )
        injector = self.fault_injector
        flat = stage * topo.switches_per_stage + switch
        if self.tracer is not None:
            self.tracer.record(
                now, "stage_arrival", packet, switch=flat, stage=stage
            )
        if self.metrics is not None:
            self.metrics.incr("arrivals", flat, now)
        if (stage, switch) in self.faulty_switches or (
            injector is not None and injector.check_drop(flat, now)
        ):
            self._drop_in_network(packet, stage=stage, switch=switch,
                                  note="fault")
            return
        bit = topo.routing_bit(packet.dst, stage)
        last = topo.is_last_stage(stage)
        targets = topo.next_switches(stage, switch, bit)
        ports = self._busy[
            (stage * topo.switches_per_stage + switch) * 2 + bit
        ]
        if self.test_port is not None:
            free = [self.test_port] if ports[self.test_port] <= now else []
        else:
            free = [k for k in range(self.multiplicity) if ports[k] <= now]
            if self.masked_switches and not last:
                # Degraded mode: never forward into a masked switch.
                free = [
                    k for k in free
                    if (stage + 1, targets[k]) not in self.masked_switches
                ]
        if self.metrics is not None:
            busy = self.multiplicity - len(free)
            self.metrics.observe_max("occupancy_ports", flat, now, busy)
            if busy:
                self.metrics.incr("arb_conflicts", flat, now)
        if not free:
            if self.tracer is not None:
                self.tracer.record(
                    now, "arb_loss", packet, switch=flat, stage=stage
                )
            self._drop_in_network(packet, stage=stage, switch=switch,
                                  note="all ports busy")
            return
        k = free[self._rng.randrange(len(free))] if len(free) > 1 else free[0]
        ports[k] = now + packet.serialization_time_ns(self.link_rate_gbps)
        if self.tracer is not None:
            self.tracer.record(
                now, "arb_win", packet, switch=flat, stage=stage, port=k
            )
        packet.hops += 1
        latency = self.switch_latency_ns
        if injector is not None:
            latency += injector.extra_latency_ns(flat, now)
        if last:
            # Head exits to the host link; last byte lands after tx time.
            self.env.schedule(
                latency
                + self.link_delay_ns
                + packet.serialization_time_ns(self.link_rate_gbps),
                self._deliver,
                packet,
            )
        else:
            self.env.schedule(
                latency,
                self._arrive_stage,
                packet,
                stage + 1,
                targets[k],
            )

    def _drop_in_network(
        self,
        packet: Packet,
        stage: Optional[int] = None,
        switch: Optional[int] = None,
        note: Optional[str] = None,
    ) -> None:
        """An in-network drop; terminal when no retransmission follows.

        ``stage``/``switch`` locate the drop for tracing and per-switch
        metrics attribution when known.
        """
        packet.dropped = True
        self.stats.record_drop(is_ack=packet.is_ack)
        flat = (
            self.flat_switch_id(stage, switch)
            if stage is not None and switch is not None
            else None
        )
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "drop", packet,
                switch=flat, stage=stage, note=note,
            )
        if self.metrics is not None and flat is not None:
            self.metrics.incr("drops", flat, self.env.now)
        if not packet.is_ack and not self.enable_retransmission:
            self._record_terminal_drop(packet)

    # -- delivery and acknowledgements ------------------------------------------------

    def _deliver(self, packet: Packet) -> None:
        now = self.env.now
        if packet.is_ack:
            self._handle_ack(packet)
            return
        if packet.pid in self._given_up_pids:
            # The source already declared this packet lost and the ledger
            # counted it as given up; at-most-once delivery suppresses the
            # late copy entirely (no stats, no hook, no ACK).
            return
        if packet.pid not in self._delivered_pids:
            self._delivered_pids.add(packet.pid)
            packet.deliver_time = now
            self._on_delivered(packet, now)
        # ACK every arrival (duplicates re-ACK in case the ACK was lost).
        if self.enable_retransmission:
            if self.ack_coalescing:
                self._coalesce_ack(packet, now)
            else:
                self._send_ack(packet.dst, packet.src, (packet.pid,), now)

    def _send_ack(self, src: int, dst: int, covered, now: float) -> None:
        ack = Packet(
            pid=self._alloc_pid(),
            src=src,
            dst=dst,
            size_bytes=ACK_SIZE_BYTES,
            create_time=now,
            is_ack=True,
            acked_pid=tuple(covered),
        )
        if self.packet_filter is not None and self.packet_filter(ack):
            self.filtered_packets += 1
            if self.tracer is not None:
                self.tracer.record(now, "drop", ack, note="filtered")
            return
        self.acks_sent += 1
        if self.tracer is not None:
            self.tracer.record(
                now, "ack", ack, acked=tuple(covered), note="sent"
            )
        self._transmit(ack, attempt=1)

    def _coalesce_ack(self, packet: Packet, now: float) -> None:
        """Traffic-combining extension (Sec. VIII): deliveries from the
        same source within a short window share one ACK."""
        key = packet.dst * self.n_nodes + packet.src
        covers = self._pending_ack_covers.get(key)
        if covers is not None:
            covers.append(packet.pid)
            return
        self._pending_ack_covers[key] = [packet.pid]

        def flush() -> None:
            covered = self._pending_ack_covers.pop(key, [])
            if covered:
                self._send_ack(
                    packet.dst, packet.src, covered, self.env.now
                )

        self.env.schedule(self.ack_coalesce_window_ns, flush)

    def _handle_ack(self, ack: Packet) -> None:
        covered = (
            ack.acked_pid
            if isinstance(ack.acked_pid, tuple)
            else (ack.acked_pid,)
        )
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "ack", ack, acked=covered, note="received"
            )
        for pid in covered:
            data = self._pending.pop(pid, None)
            if data is not None:
                self._retx_buffer_bytes[data.src] -= data.size_bytes

    # -- timeouts and backoff ---------------------------------------------------------

    def _check_timeout(self, packet: Packet, attempt: int) -> None:
        if packet.pid not in self._pending:
            return  # ACKed in the meantime
        if attempt >= self.max_attempts:
            # Max-retry give-up: report the unreachable destination
            # explicitly instead of backing off forever.
            self._pending.pop(packet.pid, None)
            self._retx_buffer_bytes[packet.src] -= packet.size_bytes
            self.lost_packets += 1
            if packet.pid not in self._delivered_pids:
                # Truly undelivered (not just a lost ACK): close the
                # ledger entry and bar any still-streaming copy from
                # being counted later (the delivery/give-up race).
                self._given_up_pids.add(packet.pid)
                flow = (packet.src, packet.dst)
                self.unreachable[flow] = self.unreachable.get(flow, 0) + 1
                self._record_give_up(packet)
            return
        self.stats.record_retransmission()
        packet.retransmissions += 1
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "retransmit", packet,
                note=f"attempt {attempt + 1}",
            )
        backoff = (
            self._beb_rng.randrange(0, 2 ** min(attempt, 10)) * BEB_SLOT_NS
        )
        self.env.schedule(
            backoff, self._transmit, packet, attempt + 1
        )

    # -- reporting --------------------------------------------------------------------

    def unloaded_latency_ns(
        self,
        src: int = 0,
        dst: int = 1,
        size_bytes: int = C.PACKET_SIZE_BYTES,
    ) -> float:
        """Analytic zero-load end-to-end latency of one packet.

        Injection link + one switch latency per stage + ejection link +
        one serialization time (cut-through: the head streams through all
        stages; the last byte lands one wire time after the head).  The
        multi-butterfly is stage-symmetric, so this is independent of the
        (src, dst) pair; a single packet in an otherwise idle network
        must measure exactly this (the conformance-test invariant).
        """
        return (
            2 * self.link_delay_ns
            + self.topology.n_stages * self.switch_latency_ns
            + C.packet_serialization_ns(size_bytes, self.link_rate_gbps)
        )

    @property
    def peak_retx_buffer_kb(self) -> float:
        """Largest per-node retransmission-buffer occupancy seen (KB)."""
        return max(self.peak_retx_buffer_bytes) / 1024.0

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return (
            f"baldur nodes={self.n_nodes} m={self.multiplicity} "
            f"stages={self.topology.n_stages} "
            f"switch_latency={self.switch_latency_ns}ns"
        )
