"""AWGR optical-packet-switching comparison (Sec. VII).

At the 32-node scale the paper compares Baldur (multiplicity 3) against a
network built from one 32-radix AWGR using 3 wavelengths per output port.
Excluding the host transceivers/SerDes common to both networks:

* Baldur consumes 0.7 W per node -- pure TL switch-chip power;
* the AWGR network consumes 4.2 W per node -- per-wavelength optical
  receivers, SerDes for electrical header processing, header buffers, and
  tunable wavelength converters (TWCs).

The AWGR-side component constants below are calibrated to the published
4.2 W total with a plausible split (TWC-dominant, consistent with [3]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants as C
from repro.errors import ConfigurationError
from repro.power.network_power import baldur_power
from repro.tl.switch_circuit import switch_model

__all__ = ["AWGRPowerModel", "baldur_switch_power_per_node", "awgr_comparison"]

# Per-node AWGR component powers (calibrated; see module docstring).
AWGR_RECEIVER_W_PER_WAVELENGTH = 0.5
AWGR_TWC_W = 0.714
AWGR_HEADER_PROCESSING_W = 0.6  # buffers + arbitration logic per node


@dataclass(frozen=True)
class AWGRPowerModel:
    """Per-node power of an AWGR network (Sec. VII accounting)."""

    radix: int = C.AWGR_RADIX
    wavelengths: int = C.AWGR_WAVELENGTHS_USED

    def __post_init__(self):
        if self.wavelengths < 1 or self.wavelengths > self.radix:
            raise ConfigurationError(
                "wavelength count must be in [1, radix]"
            )

    @property
    def receivers_w(self) -> float:
        """Per-wavelength burst-mode receivers at each output port."""
        return self.wavelengths * AWGR_RECEIVER_W_PER_WAVELENGTH

    @property
    def serdes_w(self) -> float:
        """SerDes feeding the electrical header processor (both ways)."""
        return 2 * C.SERDES_POWER_W

    @property
    def header_processing_w(self) -> float:
        """Electrical header processing: buffers + control."""
        return AWGR_HEADER_PROCESSING_W

    @property
    def twc_w(self) -> float:
        """Tunable wavelength converter at each input."""
        return AWGR_TWC_W

    @property
    def total_per_node_w(self) -> float:
        """Total per node, excluding host transceivers/SerDes (common to
        both networks in the Sec. VII comparison)."""
        return (
            self.receivers_w
            + self.serdes_w
            + self.header_processing_w
            + self.twc_w
        )


def baldur_switch_power_per_node(
    n_nodes: int = 32, multiplicity: int = C.MULTIPLICITY_FOR_32
) -> float:
    """Baldur per-node TL switch-chip power (Sec. VII: 0.7 W at 32 nodes).

    Excludes host transceivers/SerDes and the retransmission buffer, per
    the paper's comparison accounting.
    """
    breakdown = baldur_power(n_nodes, multiplicity)
    return breakdown.switch_internal


def awgr_comparison(n_nodes: int = 32) -> dict:
    """The Sec. VII table: Baldur vs. AWGR at the given scale."""
    awgr = AWGRPowerModel()
    baldur = baldur_switch_power_per_node(n_nodes)
    return {
        "baldur_w_per_node": baldur,
        "awgr_w_per_node": awgr.total_per_node_w,
        "awgr_over_baldur": awgr.total_per_node_w / baldur,
        "paper_baldur_w": C.BALDUR_32NODE_POWER_PER_NODE_W,
        "paper_awgr_w": C.AWGR_32NODE_POWER_PER_NODE_W,
        "baldur_switch_latency_ns": switch_model(
            C.MULTIPLICITY_FOR_32
        ).latency_ns,
        "awgr_header_latency_ns": C.ELECTRICAL_SWITCH_LATENCY_NS,
    }
