"""Network power models (Sec. VI-A): calibration, rollups, sensitivity."""

from repro.power.awgr import (
    AWGRPowerModel,
    awgr_comparison,
    baldur_switch_power_per_node,
)
from repro.power.calibration import (
    ELECTRICAL_END_W,
    K_INTERNAL_W,
    OPTICAL_END_W,
    electrical_2x2_switch_power_w,
    electrical_internal_power_w,
    tl_switch_power_w,
)
from repro.power.network_power import (
    FIG8_SCALES,
    NETWORK_POWER_MODELS,
    PowerBreakdown,
    baldur_power,
    dragonfly_power,
    fattree_power,
    multibutterfly_power,
    power_scaling_sweep,
)
from repro.power.sensitivity import (
    SENSITIVITY_CASES,
    scaled_power,
    sensitivity_ratios,
)

__all__ = [
    "AWGRPowerModel",
    "awgr_comparison",
    "baldur_switch_power_per_node",
    "ELECTRICAL_END_W",
    "K_INTERNAL_W",
    "OPTICAL_END_W",
    "electrical_2x2_switch_power_w",
    "electrical_internal_power_w",
    "tl_switch_power_w",
    "FIG8_SCALES",
    "NETWORK_POWER_MODELS",
    "PowerBreakdown",
    "baldur_power",
    "dragonfly_power",
    "fattree_power",
    "multibutterfly_power",
    "power_scaling_sweep",
    "SENSITIVITY_CASES",
    "scaled_power",
    "sensitivity_ratios",
]
