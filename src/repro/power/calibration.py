"""Calibration of the ORION-lite electrical router power model.

The paper computes electrical router power with ORION 3.0 + Cacti 6.5
(Sec. VI-A), which we cannot run; instead we pin a parametric model to the
paper's own disclosed anchors:

1. *The 96.6X anchor.*  An electrical 2x2 switch with multiplicity 4
   consumes 96.6X more power than the TL switch (abstract / Sec. VI-A.2).
   The TL switch is 1,112 gates x 0.406 mW = 0.4515 W, so the electrical
   switch is 43.61 W.  Its 8 (bidirectional) ports carry one optical
   transceiver (1.5 W) + SerDes (0.693 W) each = 17.54 W, leaving
   **26.07 W of internal router power at radix 8**.

2. *Quadratic radix scaling.*  ORION's crossbar and allocator power grow
   quadratically with radix at fixed per-port bandwidth.  With
   ``P_int(R) = K * R^2`` and anchor (1), ``K = 26.07 / 64 = 0.4074 W``.
   This simultaneously reproduces, within ~15%:

   * eMB at 1,024 nodes: 5 switches/node x 43.61 W + host NIC = 220 W/node
     (paper: 223.5 W) with 41% of it O-E/E-O + SerDes (paper: 41.7%);
   * the 1K->1M per-node power growth factors: eMB 2.0X (paper 2.0X),
     fat-tree 7.9X (paper 9.0X), dragonfly 5.8X (paper 7.8X);
   * the Fig. 8 ratio envelope (Baldur 3.2X-26.4X better at 1K,
     14.6X-31.0X at 1M).

Link-class rules used by the rollups (per the Sec. VI-A methodology):

* optical link ends carry transceiver + SerDes (2.193 W per end);
* electrical link ends carry SerDes only (0.693 W per end);
* fat-tree level-1 (host) links are electrical; level-2/3 are optical;
* dragonfly terminal/local links are electrical below ~83K nodes, after
  which local links go optical (Sec. VI-A); global links always optical;
* Baldur and eMB links are optical end-to-end; Baldur hosts additionally
  pay the 1 MB retransmission buffer (0.741 W).
"""

from __future__ import annotations

from repro import constants as C
from repro.tl.switch_circuit import switch_model

__all__ = [
    "K_INTERNAL_W",
    "RADIX_EXPONENT",
    "OPTICAL_END_W",
    "ELECTRICAL_END_W",
    "electrical_internal_power_w",
    "electrical_2x2_switch_power_w",
    "tl_switch_power_w",
]

RADIX_EXPONENT = 2.0
"""Internal router power grows quadratically with radix (ORION scaling)."""

OPTICAL_END_W = C.TRANSCEIVER_POWER_W + C.SERDES_POWER_W
"""Per optical link end: transceiver + SerDes = 2.193 W."""

ELECTRICAL_END_W = C.SERDES_POWER_W
"""Per electrical link end: SerDes only = 0.693 W."""

_TL_M4_POWER_W = switch_model(4).power_w  # 1,112 gates x 0.406 mW
_ELECTRICAL_2X2_TOTAL_W = C.ELECTRICAL_TO_TL_SWITCH_POWER_RATIO * _TL_M4_POWER_W
_ELECTRICAL_2X2_PORTS = 8  # 2m bidirectional ports at m=4

K_INTERNAL_W = (
    _ELECTRICAL_2X2_TOTAL_W - _ELECTRICAL_2X2_PORTS * OPTICAL_END_W
) / _ELECTRICAL_2X2_PORTS**RADIX_EXPONENT
"""~0.407 W: solved from the 96.6X anchor (see module docstring)."""


def electrical_internal_power_w(radix: int) -> float:
    """Internal (buffers + crossbar + allocators + clock) router power.

    Excludes per-port transceivers/SerDes; those are added per link end by
    the network rollups according to the link class.
    """
    if radix < 2:
        raise ValueError(f"radix must be >= 2, got {radix}")
    return K_INTERNAL_W * radix**RADIX_EXPONENT


def electrical_2x2_switch_power_w(multiplicity: int = 4) -> float:
    """Full power of an electrical 2x2 switch with the given multiplicity,
    including its per-port optical transceivers and SerDes.

    At multiplicity 4 this is 96.6X the TL switch by construction.
    """
    ports = 2 * multiplicity
    return electrical_internal_power_w(ports) + ports * OPTICAL_END_W


def tl_switch_power_w(multiplicity: int) -> float:
    """Power of the all-optical TL switch (gate count x gate power)."""
    return switch_model(multiplicity).power_w
