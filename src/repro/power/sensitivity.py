"""Sensitivity analysis on switch power (Fig. 9).

The paper scales the power of network switches by 0.5X and 2X (for both
electrical and optical switches) to bound modelling inaccuracy.  The
'pessimistic case' for Baldur halves electrical switch power and doubles
optical (TL) switch power; even there Baldur remains 5.1X / 8.2X / 14.7X
more power-efficient than dragonfly / fat-tree / eMB at the 1M scale.
Transceivers and SerDes are not scaled (they are datasheet numbers).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.power.network_power import (
    NETWORK_POWER_MODELS,
    PowerBreakdown,
)

__all__ = ["scaled_power", "sensitivity_ratios", "SENSITIVITY_CASES"]

SENSITIVITY_CASES = {
    "baseline": (1.0, 1.0),
    "optimistic": (2.0, 0.5),  # electrical x2, optical x0.5
    "pessimistic": (0.5, 2.0),  # electrical x0.5, optical x2
}
"""(electrical switch factor, optical switch factor) per Fig. 9 case."""


def scaled_power(
    network: str,
    n_nodes: int,
    electrical_factor: float,
    optical_factor: float,
) -> PowerBreakdown:
    """Power breakdown with switch-power scaling applied.

    Baldur's switches are optical (TL); every baseline's are electrical.
    """
    if network not in NETWORK_POWER_MODELS:
        raise KeyError(f"unknown network {network!r}")
    base = NETWORK_POWER_MODELS[network](n_nodes)
    factor = optical_factor if network == "baldur" else electrical_factor
    return replace(base, switch_internal=base.switch_internal * factor)


def sensitivity_ratios(
    n_nodes: int = 1_048_576, case: str = "pessimistic"
) -> Dict[str, float]:
    """Baldur's power advantage over each baseline under a Fig. 9 case."""
    elec, opt = SENSITIVITY_CASES[case]
    baldur = scaled_power("baldur", n_nodes, elec, opt).total
    return {
        name: scaled_power(name, n_nodes, elec, opt).total / baldur
        for name in ("dragonfly", "fattree", "multibutterfly")
    }
