"""Per-topology network power rollups and the Fig. 8 scaling sweep.

Every rollup returns a :class:`PowerBreakdown` (watts per server node,
split by component) so the benches can print both totals and the
O-E/E-O/SerDes fractions the paper quotes.  The construction at each scale
follows Sec. VI-A: every network is re-optimized per scale (dragonfly/
fat-tree radix grows; Baldur/eMB stage count grows; Baldur multiplicity
follows the Sec. IV-E rule; dragonfly intra-group links go optical from
~83K nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import constants as C
from repro.core.multiplicity import multiplicity_for_scale
from repro.errors import ConfigurationError
from repro.power.calibration import (
    ELECTRICAL_END_W,
    OPTICAL_END_W,
    electrical_internal_power_w,
    tl_switch_power_w,
)
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.fattree import FatTreeTopology

__all__ = [
    "PowerBreakdown",
    "baldur_power",
    "multibutterfly_power",
    "fattree_power",
    "dragonfly_power",
    "power_scaling_sweep",
    "NETWORK_POWER_MODELS",
]


@dataclass
class PowerBreakdown:
    """Power per server node, in watts, by component."""

    network: str
    n_nodes: int
    switch_internal: float = 0.0
    optical_ends: float = 0.0
    electrical_ends: float = 0.0
    retx_buffer: float = 0.0
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total watts per server node."""
        return (
            self.switch_internal
            + self.optical_ends
            + self.electrical_ends
            + self.retx_buffer
        )

    @property
    def oeo_serdes_fraction(self) -> float:
        """Fraction of power in O-E/E-O conversions + SerDes (Sec. II-A)."""
        return (self.optical_ends + self.electrical_ends) / self.total

    @property
    def total_network_watts(self) -> float:
        """Whole-network power (per-node total x node count)."""
        return self.total * self.n_nodes


def _check_nodes(n_nodes: int) -> None:
    if n_nodes < 4:
        raise ConfigurationError("power models need at least 4 nodes")


def _stages(n_nodes: int) -> int:
    if n_nodes & (n_nodes - 1):
        raise ConfigurationError(
            "Baldur/multi-butterfly scales must be powers of two"
        )
    return n_nodes.bit_length() - 1


def baldur_power(n_nodes: int, multiplicity: int | None = None) -> PowerBreakdown:
    """Baldur power per node: TL switches + host optics + retx buffer.

    Hosts terminate one unidirectional fiber into the network and one out
    of it; each end carries a transceiver + SerDes.  Switches are pure TL
    gate power (no buffering, clocking, or per-port transceivers).
    """
    _check_nodes(n_nodes)
    m = multiplicity or multiplicity_for_scale(n_nodes)
    switches_per_node = _stages(n_nodes) / 2.0
    return PowerBreakdown(
        network="baldur",
        n_nodes=n_nodes,
        switch_internal=switches_per_node * tl_switch_power_w(m),
        optical_ends=2 * OPTICAL_END_W,
        retx_buffer=C.RETX_BUFFER_POWER_W_PER_MB * C.RETX_BUFFER_PROVISIONED_MB,
        detail={"multiplicity": m, "switches_per_node": switches_per_node},
    )


def multibutterfly_power(
    n_nodes: int, multiplicity: int = C.BALDUR_MULTIPLICITY
) -> PowerBreakdown:
    """Electrical multi-butterfly: buffered radix-2m switches, all-optical
    links, transceiver+SerDes on every switch port and host NIC."""
    _check_nodes(n_nodes)
    switches_per_node = _stages(n_nodes) / 2.0
    ports = 2 * multiplicity
    return PowerBreakdown(
        network="multibutterfly",
        n_nodes=n_nodes,
        switch_internal=switches_per_node
        * electrical_internal_power_w(ports),
        optical_ends=(switches_per_node * ports + 1) * OPTICAL_END_W,
        detail={"multiplicity": multiplicity,
                "switches_per_node": switches_per_node},
    )


def fattree_power(n_nodes: int) -> PowerBreakdown:
    """3-level fat-tree: radix grows with scale (16 at 1K, 160 at 1M).

    Level-1 (host) links are electrical; level-2/3 links optical.
    """
    _check_nodes(n_nodes)
    topo = FatTreeTopology.for_nodes(n_nodes)
    switches_per_node = topo.n_switches / topo.n_nodes
    # Link counts: host-edge k^3/4, edge-agg k^3/4, agg-core k^3/4.
    links_each = topo.n_nodes
    optical_ends = 2 * (2 * links_each) / topo.n_nodes  # levels 2 and 3
    electrical_ends = 2 * links_each / topo.n_nodes  # level 1
    return PowerBreakdown(
        network="fattree",
        n_nodes=topo.n_nodes,
        switch_internal=switches_per_node
        * electrical_internal_power_w(topo.radix),
        optical_ends=optical_ends * OPTICAL_END_W,
        electrical_ends=electrical_ends * ELECTRICAL_END_W,
        detail={"k": topo.k, "radix": topo.radix,
                "switches_per_node": switches_per_node},
    )


def dragonfly_power(n_nodes: int) -> PowerBreakdown:
    """Dragonfly: radix grows with scale (15 at 1K, 95 at 1M); local links
    switch from electrical to optical at ~83K nodes (Sec. VI-A)."""
    _check_nodes(n_nodes)
    topo = DragonflyTopology.for_nodes(n_nodes)
    nodes_per_group = topo.p * topo.a
    local_ends = topo.a * (topo.a - 1) / nodes_per_group
    global_ends = (topo.a * topo.h) / nodes_per_group
    terminal_ends = 2.0  # host NIC + router port
    local_optical = topo.n_nodes >= C.DRAGONFLY_OPTICAL_INTRA_GROUP_THRESHOLD
    optical = global_ends + (local_ends if local_optical else 0.0)
    electrical = terminal_ends + (0.0 if local_optical else local_ends)
    return PowerBreakdown(
        network="dragonfly",
        n_nodes=topo.n_nodes,
        switch_internal=electrical_internal_power_w(topo.radix) / topo.p,
        optical_ends=optical * OPTICAL_END_W,
        electrical_ends=electrical * ELECTRICAL_END_W,
        detail={
            "p": topo.p,
            "radix": topo.radix,
            "local_links_optical": float(local_optical),
        },
    )


NETWORK_POWER_MODELS = {
    "baldur": baldur_power,
    "multibutterfly": multibutterfly_power,
    "fattree": fattree_power,
    "dragonfly": dragonfly_power,
}
"""The four Fig. 8 networks."""

FIG8_SCALES = (1024, 4096, 16384, 65536, 262144, 1048576)
"""Node-count scales swept in Fig. 8 (1K-2K through 1M-1.4M; exact node
counts differ per topology, as the paper notes)."""


def power_scaling_sweep(
    scales: Optional[Sequence[int]] = None,
) -> Dict[str, List[PowerBreakdown]]:
    """Per-node power for every network at every scale (Fig. 8)."""
    if scales is None:
        scales = FIG8_SCALES
    return {
        name: [model(scale) for scale in scales]
        for name, model in NETWORK_POWER_MODELS.items()
    }
