"""Transistor-laser (TL) device model.

The paper characterizes TL gates with the Keysight ADS device simulator
(Sec. III, Tables III and IV).  We replace ADS with a rate-equation-lite
model: the TL optical response is governed by the interplay of the
spontaneous recombination lifetime and the cavity photon lifetime, and the
static electrical operating point sets the power.  Two dimensionless
calibration constants (documented below) absorb the details of the ADS
device deck; with the published Table III parameters the model reproduces
the published Table IV figures, and it extrapolates sensibly when device
parameters are scaled (used by the technology-scaling ablation bench).

Key relations:

* ``tau_opt = sqrt(tau_spon * tau_photon)`` -- the geometric mean of the two
  lifetimes, the time scale of a resonance-free laser response [29].
* propagation delay  = ``K_DELAY * tau_opt``
* rise/fall time     = ``K_RISE_FALL * tau_opt``
* max data rate      = ``1 / (2 * t_rise_fall + t_delay)`` -- a full optical
  swing (rise + fall) plus the gate delay must fit in one bit window for the
  eye to open.
* static power       = laser-branch bias + pull-down branch + a small
  dynamic CV^2 f term (static dominates; Sec. III footnote).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro import constants as C

__all__ = ["TLDeviceParameters", "TLGateCharacteristics", "characterize_gate"]

# Calibration constants fitted once against the published ADS results
# (Table IV).  K_DELAY maps the optical time constant to the 50%-to-50%
# propagation delay; K_RISE_FALL maps it to the 10%-90% edge time.
K_DELAY = 0.1924
K_RISE_FALL = 0.7278

# Base-node voltage swing implied by the modulation conditions of Table III;
# sets the (small) dynamic power term.
BASE_NODE_SWING_V = 0.06


@dataclass(frozen=True)
class TLDeviceParameters:
    """Device and circuit parameters of a TL gate (Table III).

    All defaults are the paper's values; construct with overrides to explore
    scaled technology nodes (see ``examples/technology_scaling.py``).
    """

    junction_capacitance_f: float = C.TL_JUNCTION_CAPACITANCE_F
    recombination_lifetime_s: float = C.TL_RECOMBINATION_LIFETIME_S
    photon_lifetime_s: float = C.TL_PHOTON_LIFETIME_S
    wavelength_nm: float = C.TL_WAVELENGTH_NM
    threshold_current_a: float = C.TL_THRESHOLD_CURRENT_A
    bias_current_a: float = C.TL_BIAS_CURRENT_A
    supply_v1_v: float = C.TL_SUPPLY_V1_V
    supply_v2_v: float = C.TL_SUPPLY_V2_V
    load_resistor_ohm: float = C.TL_LOAD_RESISTOR_OHM
    base_modulation_a: float = C.TL_BASE_MODULATION_A
    pd_junction_capacitance_f: float = C.TL_PD_JUNCTION_CAPACITANCE_F
    pd_average_current_a: float = C.TL_PD_AVERAGE_CURRENT_A
    gate_area_um2: float = C.TL_GATE_AREA_UM2

    def __post_init__(self):
        for name in (
            "junction_capacitance_f",
            "recombination_lifetime_s",
            "photon_lifetime_s",
            "threshold_current_a",
            "bias_current_a",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.bias_current_a < self.threshold_current_a:
            raise ValueError(
                "bias current must be at or above the lasing threshold"
            )

    def scaled(self, factor: float) -> "TLDeviceParameters":
        """Return parameters for a technology node scaled by ``factor`` < 1.

        Capacitances, lifetimes, currents, and area shrink with the node;
        supplies are held (oxide-limited).  Used for what-if projections
        (Sec. III: 'scaling the TL technology further to continue to improve
        latency/power').
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            junction_capacitance_f=self.junction_capacitance_f * factor,
            recombination_lifetime_s=self.recombination_lifetime_s * factor,
            photon_lifetime_s=self.photon_lifetime_s * factor,
            threshold_current_a=self.threshold_current_a * factor,
            bias_current_a=self.bias_current_a * factor,
            base_modulation_a=self.base_modulation_a * factor,
            pd_junction_capacitance_f=self.pd_junction_capacitance_f * factor,
            pd_average_current_a=self.pd_average_current_a * factor,
            gate_area_um2=self.gate_area_um2 * factor,
        )


@dataclass(frozen=True)
class TLGateCharacteristics:
    """Simulated characteristics of a TL logic gate (Table IV format).

    The same numbers apply to INV, NAND, NOR, AND, and OR gates: only the
    output TL limits speed/power, and the average photocurrent is kept equal
    across gate types (Sec. III).
    """

    area_um2: float
    rise_fall_time_ps: float
    delay_ps: float
    power_w: float
    data_rate_gbps: float
    eye_opening_fraction: float = field(default=0.0)

    @property
    def power_mw(self) -> float:
        """Gate power in milliwatts."""
        return self.power_w * 1e3

    @property
    def energy_per_bit_fj(self) -> float:
        """Energy per bit in femtojoules at the max data rate."""
        return self.power_w / (self.data_rate_gbps * 1e9) * 1e15


def characterize_gate(
    params: TLDeviceParameters | None = None,
) -> TLGateCharacteristics:
    """Characterize a TL gate from device parameters.

    With the default (Table III) parameters this reproduces Table IV:
    25 um^2, 7.3 ps rise/fall, 1.93 ps delay, 0.406 mW, 60 Gbps.
    """
    p = params or TLDeviceParameters()

    tau_opt_s = math.sqrt(p.recombination_lifetime_s * p.photon_lifetime_s)
    delay_ps = K_DELAY * tau_opt_s * 1e12
    rise_fall_ps = K_RISE_FALL * tau_opt_s * 1e12

    # A bit window must fit a full rise + fall plus the gate delay.
    bit_window_ps = 2.0 * rise_fall_ps + delay_ps
    data_rate_gbps = 1e3 / bit_window_ps

    # Static power: laser branch at +V1, pull-down branch at +V2 (average
    # photodetector current plus half the base modulation amplitude), plus a
    # small dynamic CV^2 f term.  Static dominates (Sec. III footnote), so
    # power is ~constant across data rates and activity factors.
    laser_branch_w = p.supply_v1_v * p.bias_current_a
    pulldown_branch_w = p.supply_v2_v * (
        p.pd_average_current_a + 0.5 * p.base_modulation_a
    )
    dynamic_w = (
        p.pd_junction_capacitance_f
        * BASE_NODE_SWING_V**2
        * data_rate_gbps
        * 1e9
    )
    power_w = laser_branch_w + pulldown_branch_w + dynamic_w

    # Eye opening: the fraction of the bit period not consumed by edges.
    bit_period_ps = 1e3 / data_rate_gbps
    eye = max(0.0, 1.0 - rise_fall_ps / bit_period_ps)

    return TLGateCharacteristics(
        area_um2=p.gate_area_um2,
        rise_fall_time_ps=rise_fall_ps,
        delay_ps=delay_ps,
        power_w=power_w,
        data_rate_gbps=data_rate_gbps,
        eye_opening_fraction=eye,
    )


def static_power_fraction(params: TLDeviceParameters | None = None) -> float:
    """Fraction of gate power that is static (should be ~0.95)."""
    chars = characterize_gate(params)
    p = params or TLDeviceParameters()
    static = p.supply_v1_v * p.bias_current_a + p.supply_v2_v * (
        p.pd_average_current_a + 0.5 * p.base_modulation_a
    )
    return static / chars.power_w
