"""The complete 2x2 all-optical TL switch netlist (Fig. 4a).

Structure (multiplicity 1):

* **Switch fabric** -- each input is split (SP0/SP1): one copy feeds the
  header processing unit, the other an AND gate (AND0/AND1) that masks off
  the first routing bit using the mask-off latch output.  The masked packet
  is delayed 132 ps in a waveguide (WD0/WD1) while arbitration completes,
  split again (SP2/SP3), and gated to either output by AND2-AND5 whose
  select inputs are the four grant signals; combiners C0/C1 OR the gated
  copies onto the two output ports.
* **Header processing unit** -- a line activity detector plus routing /
  valid / mask-off latches per input, and one 2x2 asynchronous arbiter per
  output port.

Routing-bit convention: first bit '0' (2T of light, latch stores 1) selects
output port 0; '1' (1T, latch stores 0) selects output port 1.

The module also provides the gate-count / latency / power model for switches
with multiplicity 1-5 (Table V) used by the architecture-level simulators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import constants as C
from repro.errors import ConfigurationError
from repro.tl.circuit import Circuit, Signal
from repro.tl.device import characterize_gate
from repro.tl.encoding import OpticalWaveform, encode_packet
from repro.tl.line_detector import LineActivityDetector

__all__ = ["TLSwitchCircuit", "SwitchModel", "switch_model"]


class TLSwitchCircuit:
    """A structural, simulatable 2x2 TL switch with multiplicity 1.

    Drive packets with :meth:`inject`, call :meth:`run`, then inspect the
    output signals' recorded waveforms (exactly how Fig. 5 was produced).
    """

    def __init__(self, bit_period_ps: float = 40.0):
        if bit_period_ps <= 0:
            raise ConfigurationError("bit period must be positive")
        self.bit_period_ps = bit_period_ps
        self.circuit = Circuit()
        circ = self.circuit

        self.inputs: List[Signal] = [
            circ.signal("in0"), circ.signal("in1")
        ]
        for sig in self.inputs:
            sig.record()

        # Header processing unit: one detector per input.
        self.detectors: List[LineActivityDetector] = []
        for i, inp in enumerate(self.inputs):
            circ.add_splitter(inp, 2)  # SP0 / SP1
            det = LineActivityDetector(
                circ, inp, bit_period_ps, name=f"det{i}"
            )
            det.record_all()
            self.detectors.append(det)

        # Switch fabric: mask off the first routing bit, then delay.
        delayed: List[Signal] = []
        for i, (inp, det) in enumerate(zip(self.inputs, self.detectors)):
            masked = circ.add_and(inp, det.maskoff_q, f"and{i}")
            wd = circ.add_waveguide_delay(
                masked, C.WAVEGUIDE_DELAY_WD_PS, f"wd{i}"
            )
            circ.add_splitter(wd, 2)  # SP2 / SP3
            delayed.append(wd)

        # Requests: input i requests port 0 when the routing latch holds 1
        # (first bit '0'), port 1 when it holds 0.
        requests = []
        for i, det in enumerate(self.detectors):
            req0 = circ.add_and(det.valid_q, det.routing_q, f"req{i}0")
            req1 = circ.add_and(det.valid_q, det.routing_qbar, f"req{i}1")
            requests.append((req0, req1))

        # One asynchronous arbiter per output port.
        self.grants: List[List[Signal]] = [[None, None], [None, None]]
        for port in (0, 1):
            g0, g1 = circ.add_mutex(
                requests[0][port], requests[1][port], f"arb{port}"
            )
            self.grants[0][port] = g0
            self.grants[1][port] = g1
            g0.record()
            g1.record()

        # Output multiplexers: AND2-AND5 gated by grants, OR'd by C0/C1.
        self.outputs: List[Signal] = []
        for port in (0, 1):
            gated0 = circ.add_and(
                delayed[0], self.grants[0][port], f"and{2 + 2 * port}"
            )
            gated1 = circ.add_and(
                delayed[1], self.grants[1][port], f"and{3 + 2 * port}"
            )
            out = circ.add_combiner([gated0, gated1], f"out{port}")
            out.record()
            self.outputs.append(out)

    def inject(
        self,
        input_port: int,
        routing_bits: Sequence[int],
        payload: bytes,
        start_ps: float = 0.0,
    ) -> OpticalWaveform:
        """Encode and drive a packet into ``input_port``; returns the
        injected waveform."""
        waveform = encode_packet(
            routing_bits, payload, self.bit_period_ps, start_ps
        )
        self.circuit.drive(self.inputs[input_port], waveform)
        return waveform

    def run(self, until_ps: Optional[float] = None) -> None:
        """Run the switch circuit simulation."""
        self.circuit.run(until=until_ps)

    @property
    def gate_count(self) -> int:
        """TL gates in this structural netlist (cf. ~60 quoted in Fig. 4)."""
        return self.circuit.budget.tl_gate_count

    def waveform_report(self, t_end_ps: float) -> str:
        """ASCII waveform dump of the Fig. 5 signals."""
        det0 = self.detectors[0]
        return self.circuit.render_waveforms(
            [
                self.inputs[0],
                det0.presence,
                det0.routing_q,
                det0.valid_q,
                det0.maskoff_q,
                self.grants[0][0],
                self.grants[0][1],
                self.outputs[0],
                self.outputs[1],
            ],
            t_end=t_end_ps,
        )


# ---------------------------------------------------------------------------
# Architecture-level switch model (Table V)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SwitchModel:
    """Gate count, latency, power, and area of a 2x2 TL switch.

    ``multiplicity`` m gives the switch 2m input and 2m output ports (m per
    direction); a packet succeeds if any of the m paths toward its direction
    is free (checked sequentially by the arbitration units, which is why
    latency grows with m).
    """

    multiplicity: int
    gate_count: int
    latency_ns: float

    @property
    def ports_per_direction(self) -> int:
        """m ports per output direction."""
        return self.multiplicity

    @property
    def total_ports(self) -> int:
        """2m inputs and 2m outputs."""
        return 2 * self.multiplicity

    @property
    def power_w(self) -> float:
        """Switch power: gate count x per-gate power (Sec. VI-A)."""
        return self.gate_count * characterize_gate().power_w

    @property
    def area_um2(self) -> float:
        """Active TL area of the switch."""
        return self.gate_count * C.TL_GATE_AREA_UM2


def _extrapolate_gates(m: int) -> int:
    """Quadratic fit 64m^2 + 22m, exact for Table V at m in 2..5."""
    return 64 * m * m + 22 * m


def _extrapolate_latency(m: int) -> float:
    """Quadratic fit to Table V latencies (exact at m in 1..4)."""
    return max(0.05, -0.11 + 0.2 * m + 0.05 * m * m)


def switch_model(multiplicity: int) -> SwitchModel:
    """The Table V switch model for a given path multiplicity.

    Multiplicities 1-5 use the published values verbatim; larger values
    extrapolate with the quadratic fits documented in DESIGN.md.
    """
    if multiplicity < 1:
        raise ConfigurationError("multiplicity must be >= 1")
    if multiplicity in C.GATES_PER_SWITCH:
        return SwitchModel(
            multiplicity=multiplicity,
            gate_count=C.GATES_PER_SWITCH[multiplicity],
            latency_ns=C.SWITCH_LATENCY_NS[multiplicity],
        )
    return SwitchModel(
        multiplicity=multiplicity,
        gate_count=_extrapolate_gates(multiplicity),
        latency_ns=_extrapolate_latency(multiplicity),
    )
