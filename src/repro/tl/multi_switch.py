"""Gate-level 2x2 TL switch with path multiplicity m (Sec. IV-E).

Extends the multiplicity-1 netlist of :mod:`repro.tl.switch_circuit`:

* **2m input ports** (m per logical input direction), each with its own
  line activity detector, routing/mask-off latches, masked data path, and
  waveguide delay -- all 2m packets are processed independently;
* **2m output ports** (m per output direction); a packet succeeds if at
  least one of the m ports of its direction is free, checked *sequentially*
  by the arbitration unit -- which is why Table V's switch latency grows
  with m (one extra check time per additional path);
* the fabric gates every (input, output port) pair with its grant and
  combines onto each output port.

The structural gate count grows quadratically with m, like Table V's
published counts (64m^2 + 22m for m >= 2); the published numbers remain
authoritative for the architecture-level models (``switch_model``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import constants as C
from repro.errors import ConfigurationError
from repro.tl.circuit import Circuit, Signal
from repro.tl.encoding import OpticalWaveform, encode_packet
from repro.tl.gates import GateType
from repro.tl.line_detector import LineActivityDetector

__all__ = ["TLMultiplicitySwitchCircuit"]


class _SequentialArbiter:
    """Per-direction arbitration over m output ports (Sec. IV-E).

    When a request rises, the unit checks the direction's ports in order
    and grants the first free one after ``(position + 1)`` check delays;
    a packet whose direction has no free port gets no grant and is dropped
    by the (dark) fabric ANDs.  Ports release when their holder's request
    falls.  There is no retry: arbitration happens once per packet, at
    header time, matching the bufferless drop semantics.
    """

    def __init__(
        self,
        circuit: Circuit,
        requests: Sequence[Signal],
        grants: Sequence[Sequence[Signal]],  # grants[req_idx][port]
        check_delay_ps: float,
    ):
        self.circuit = circuit
        self.requests = list(requests)
        self.grants = [list(g) for g in grants]
        self.check_delay_ps = check_delay_ps
        self.owner: List[Optional[int]] = [None] * len(self.grants[0])
        for idx, request in enumerate(self.requests):
            request.listen(self._make_listener(idx))

    def _make_listener(self, idx: int):
        def on_change(time: float, level: int) -> None:
            if level == 1:
                self._try_grant(idx, time)
            else:
                self._release(idx, time)

        return on_change

    def _try_grant(self, idx: int, time: float) -> None:
        for position, holder in enumerate(self.owner):
            if holder is None:
                self.owner[position] = idx
                delay = (position + 1) * self.check_delay_ps
                self.circuit.env.schedule(
                    delay, self.grants[idx][position].set, time + delay, 1
                )
                return

    def _release(self, idx: int, time: float) -> None:
        for position, holder in enumerate(self.owner):
            if holder == idx:
                self.owner[position] = None
                delay = self.check_delay_ps
                self.circuit.env.schedule(
                    delay, self.grants[idx][position].set, time + delay, 0
                )


class TLMultiplicitySwitchCircuit:
    """Simulatable 2x2 TL switch with 2m inputs and 2m outputs."""

    def __init__(self, multiplicity: int, bit_period_ps: float = 40.0):
        if multiplicity < 1:
            raise ConfigurationError("multiplicity must be >= 1")
        if bit_period_ps <= 0:
            raise ConfigurationError("bit period must be positive")
        self.multiplicity = multiplicity
        self.bit_period_ps = bit_period_ps
        self.circuit = Circuit()
        circ = self.circuit
        m = multiplicity

        # Input ports: index = direction * m + port.
        self.inputs: List[Signal] = [
            circ.signal(f"in{j}_{k}") for j in (0, 1) for k in range(m)
        ]
        self.detectors: List[LineActivityDetector] = []
        delayed: List[Signal] = []
        for i, inp in enumerate(self.inputs):
            inp.record()
            circ.add_splitter(inp, 2)
            det = LineActivityDetector(
                circ, inp, self.bit_period_ps, name=f"det{i}"
            )
            self.detectors.append(det)
            masked = circ.add_and(inp, det.maskoff_q, f"mask{i}")
            delayed.append(
                circ.add_waveguide_delay(
                    masked, C.WAVEGUIDE_DELAY_WD_PS, f"wd{i}"
                )
            )
            # Footnote 4: m valid latches per input, one per path.
            for _path in range(m - 1):
                circ.budget.add(GateType.LATCH)

        # Requests per (input, direction).
        requests = []
        for i, det in enumerate(self.detectors):
            req0 = circ.add_and(det.valid_q, det.routing_q, f"req{i}_d0")
            req1 = circ.add_and(det.valid_q, det.routing_qbar, f"req{i}_d1")
            requests.append((req0, req1))

        # Grants: grant[input][direction][port].
        self.grants = [
            [
                [circ.signal(f"grant{i}_d{d}_p{p}") for p in range(m)]
                for d in (0, 1)
            ]
            for i in range(len(self.inputs))
        ]
        for d in (0, 1):
            _SequentialArbiter(
                circ,
                [requests[i][d] for i in range(len(self.inputs))],
                [self.grants[i][d] for i in range(len(self.inputs))],
                check_delay_ps=circ.chars.delay_ps,
            )
            # Physical arbiter cost: a latch + two threshold gates per port.
            for _ in range(m):
                circ.budget.add(GateType.LATCH)
                circ.budget.add(GateType.THRESHOLD_NOT, 2)

        # Fabric: output port (d, p) combines the gated copies of every
        # input that may win it.
        self.outputs: List[Signal] = []
        for d in (0, 1):
            for p in range(m):
                gated = []
                for i in range(len(self.inputs)):
                    gated.append(
                        circ.add_and(
                            delayed[i],
                            self.grants[i][d][p],
                            f"fab{i}_d{d}_p{p}",
                        )
                    )
                out = circ.add_combiner(gated, f"out_d{d}_p{p}")
                out.record()
                self.outputs.append(out)

    def output(self, direction: int, port: int) -> Signal:
        """The output signal of (direction, physical port)."""
        return self.outputs[direction * self.multiplicity + port]

    def inject(
        self,
        direction: int,
        port: int,
        routing_bits: Sequence[int],
        payload: bytes,
        start_ps: float = 0.0,
    ) -> OpticalWaveform:
        """Drive a packet into input (direction, port)."""
        waveform = encode_packet(
            routing_bits, payload, self.bit_period_ps, start_ps
        )
        self.circuit.drive(
            self.inputs[direction * self.multiplicity + port], waveform
        )
        return waveform

    def run(self, until_ps: Optional[float] = None) -> None:
        """Run the circuit simulation."""
        self.circuit.run(until=until_ps)

    @property
    def gate_count(self) -> int:
        """Structural TL gate count (grows quadratically with m)."""
        return self.circuit.budget.tl_gate_count

    def lit_outputs(self, direction: int) -> List[int]:
        """Physical ports of ``direction`` that carried any light."""
        return [
            p
            for p in range(self.multiplicity)
            if self.output(direction, p).rise_times()
        ]
