"""Transistor-laser device, gate, codec, and circuit layer (Sec. III/IV)."""

from repro.tl.circuit import Circuit, Signal
from repro.tl.device import (
    TLDeviceParameters,
    TLGateCharacteristics,
    characterize_gate,
)
from repro.tl.encoding import (
    OpticalWaveform,
    decode_packet,
    decode_routing_bits,
    encode_packet,
    encode_routing_bits,
    length_encoding_overhead,
)
from repro.tl.gates import GateBudget, GateType, gate_power_w
from repro.tl.eye import EyeDiagram, simulate_eye
from repro.tl.line_detector import LineActivityDetector
from repro.tl.multi_switch import TLMultiplicitySwitchCircuit
from repro.tl.reliability import (
    error_probability,
    monte_carlo_error_rate,
    worst_case_margin_periods,
)
from repro.tl.switch_circuit import SwitchModel, TLSwitchCircuit, switch_model

__all__ = [
    "Circuit",
    "Signal",
    "TLDeviceParameters",
    "TLGateCharacteristics",
    "characterize_gate",
    "OpticalWaveform",
    "decode_packet",
    "decode_routing_bits",
    "encode_packet",
    "encode_routing_bits",
    "length_encoding_overhead",
    "GateBudget",
    "GateType",
    "gate_power_w",
    "EyeDiagram",
    "simulate_eye",
    "LineActivityDetector",
    "TLMultiplicitySwitchCircuit",
    "error_probability",
    "monte_carlo_error_rate",
    "worst_case_margin_periods",
    "SwitchModel",
    "TLSwitchCircuit",
    "switch_model",
]
