"""Eye-diagram simulation of a TL gate (Fig. 2c).

The paper shows the simulated eye diagram of a TL inverter at 60 Gbps with
'sufficient eye opening that indicates good signal integrity'.  This module
reproduces that figure: a pseudo-random bit sequence is driven through the
gate model -- finite 10-90% rise/fall time from Table IV, per-transition
Gaussian timing jitter [49] -- and the overlapped two-bit-period traces are
accumulated into an eye.  The quantitative outputs are the vertical eye
opening (fraction of the swing) and the horizontal opening (fraction of the
bit period); the ASCII rendering is the Fig. 2c visual.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import constants as C
from repro.errors import ConfigurationError
from repro.sim.rand import numpy_stream
from repro.tl.device import TLGateCharacteristics, characterize_gate

__all__ = ["EyeDiagram", "simulate_eye"]


@dataclass(frozen=True)
class EyeDiagram:
    """An accumulated eye: traces over a two-bit-period window."""

    bit_period_ps: float
    time_grid_ps: np.ndarray  # (samples,) within [0, 2T)
    traces: np.ndarray  # (n_traces, samples) signal levels in [0, 1]

    @property
    def vertical_opening(self) -> float:
        """Eye height at the sampling instant, as a fraction of the swing.

        Measured at the center of the second bit: the gap between the
        lowest '1' trace and the highest '0' trace.
        """
        center = np.argmin(
            np.abs(self.time_grid_ps - 1.5 * self.bit_period_ps)
        )
        samples = self.traces[:, center]
        highs = samples[samples >= 0.5]
        lows = samples[samples < 0.5]
        if highs.size == 0 or lows.size == 0:
            return 0.0
        return max(0.0, float(highs.min() - lows.max()))

    @property
    def horizontal_opening(self) -> float:
        """Fraction of the bit period where the vertical eye stays open."""
        open_cols = 0
        t0 = self.bit_period_ps
        window = (self.time_grid_ps >= t0) & (
            self.time_grid_ps < t0 + self.bit_period_ps
        )
        for col in np.nonzero(window)[0]:
            samples = self.traces[:, col]
            highs = samples[samples >= 0.5]
            lows = samples[samples < 0.5]
            if highs.size and lows.size and highs.min() - lows.max() > 0.2:
                open_cols += 1
        return open_cols / max(1, int(window.sum()))

    def render(self, width: int = 64, height: int = 16) -> str:
        """ASCII density plot of the eye (Fig. 2c style)."""
        grid = np.zeros((height, width), dtype=int)
        cols = np.clip(
            (self.time_grid_ps / self.time_grid_ps[-1] * (width - 1)).astype(int),
            0, width - 1,
        )
        for trace in self.traces:
            rows = np.clip(
                ((1.0 - trace) * (height - 1)).astype(int), 0, height - 1
            )
            grid[rows, cols] += 1
        shades = " .:*#"
        peak = grid.max() or 1
        lines = []
        for row in grid:
            line = "".join(
                shades[min(len(shades) - 1, int(v * (len(shades) - 1) / peak))]
                for v in row
            )
            lines.append("|" + line + "|")
        return "\n".join(lines)


def simulate_eye(
    data_rate_gbps: float = C.TL_GATE_DATA_RATE_GBPS,
    n_bits: int = 512,
    samples_per_bit: int = 32,
    jitter_variance_ps2: float = C.JITTER_VARIANCE_PS2,
    characteristics: Optional[TLGateCharacteristics] = None,
    seed: int = 0,
) -> EyeDiagram:
    """Drive a PRBS through the TL gate model and accumulate the eye.

    The output waveform has linear edges of the Table IV 10-90% rise/fall
    time; every transition carries an independent Gaussian jitter sample.
    """
    if n_bits < 8:
        raise ConfigurationError("need at least 8 bits for an eye")
    if data_rate_gbps <= 0:
        raise ConfigurationError("data rate must be positive")
    chars = characteristics or characterize_gate()
    bit_period_ps = 1e3 / data_rate_gbps
    # 10-90% linear edge spans rise_fall / 0.8 in total.
    edge_ps = chars.rise_fall_time_ps / 0.8
    rng = numpy_stream(seed, "eye-prbs")
    bits = rng.integers(0, 2, size=n_bits)
    sigma = math.sqrt(jitter_variance_ps2)

    grid = np.linspace(
        0.0, 2 * bit_period_ps, 2 * samples_per_bit, endpoint=False
    )
    traces: List[np.ndarray] = []
    for i in range(1, n_bits - 2):
        window = np.empty_like(grid)
        # Absolute time of the window start: bit i begins at i*T.
        for s, t in enumerate(grid):
            window[s] = _level_at(
                bits, i * bit_period_ps + t, bit_period_ps, edge_ps,
                sigma, rng, i,
            )
        traces.append(window)
    return EyeDiagram(
        bit_period_ps=bit_period_ps,
        time_grid_ps=grid,
        traces=np.array(traces),
    )


def _level_at(
    bits: np.ndarray,
    t_ps: float,
    bit_period_ps: float,
    edge_ps: float,
    sigma: float,
    rng: np.random.Generator,
    trace_index: int,
) -> float:
    """Analog level at absolute time ``t_ps`` with jittered linear edges."""
    index = int(t_ps // bit_period_ps)
    if index <= 0 or index >= len(bits):
        return float(bits[0])
    current, previous = bits[index], bits[index - 1]
    if current == previous:
        return float(current)
    # A transition occurred at the bit boundary; jitter it deterministically
    # per (trace, boundary) so all samples of one trace agree.
    jitter = _boundary_jitter(sigma, index, trace_index)
    edge_center = index * bit_period_ps + jitter
    progress = (t_ps - edge_center) / edge_ps + 0.5
    progress = min(1.0, max(0.0, progress))
    return float(previous) + (float(current) - float(previous)) * progress


def _boundary_jitter(sigma: float, boundary: int, trace: int) -> float:
    """Deterministic per-boundary Gaussian jitter (hash-seeded)."""
    rng = numpy_stream(boundary * 1_000_003 + trace, "eye-jitter")
    return float(rng.normal(0.0, sigma))
