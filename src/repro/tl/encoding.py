"""Clock-less length-based data encoding (Sec. IV-B) and 8b/10b payloads.

Baldur encodes the *routing bits* of a packet with a variant of Digital
Pulse Interval Width Modulation (DPIWM) so that switches can decode them
without clock recovery:

* logic '0' -> light for two bit periods (2T);
* logic '1' -> light for one bit period (T);
* each routing bit plus its following dark gap occupies exactly 3T.

The non-routing portion of the packet uses conventional 8b/10b encoding
(never more than 5 consecutive zeros), which the line activity detector
relies on: darkness longer than 6T signals end-of-packet.

This module provides waveform construction/decoding, a real 8b/10b codec
(5b/6b + 3b/4b with running disparity), and the bandwidth-overhead
calculation quoted in Sec. IV-B.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro import constants as C
from repro.errors import EncodingError

__all__ = [
    "OpticalWaveform",
    "encode_routing_bits",
    "encode_packet",
    "decode_routing_bits",
    "decode_packet",
    "encode_8b10b",
    "decode_8b10b",
    "length_encoding_overhead",
]


@dataclass(frozen=True)
class OpticalWaveform:
    """A binary optical signal: light intervals on a continuous time axis.

    Stored as a sorted tuple of toggle times; the signal is dark before the
    first toggle, and alternates at each subsequent toggle.
    """

    edges: Tuple[float, ...]

    def __post_init__(self):
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise EncodingError("waveform edges must be strictly increasing")

    @staticmethod
    def from_intervals(intervals: Sequence[Tuple[float, float]]) -> "OpticalWaveform":
        """Build from [(start, end), ...] light intervals (sorted, disjoint)."""
        edges: List[float] = []
        for start, end in intervals:
            if end <= start:
                raise EncodingError(f"empty light interval ({start}, {end})")
            if edges and start < edges[-1]:
                raise EncodingError("light intervals must be sorted/disjoint")
            if edges and start == edges[-1]:
                # Adjacent intervals merge into continuous light.
                edges.pop()
                edges.append(end)
            else:
                edges.extend((start, end))
        return OpticalWaveform(tuple(edges))

    def level_at(self, t: float) -> int:
        """Signal level (0/1) at time ``t`` (right-continuous)."""
        return bisect_right(self.edges, t) % 2

    def intervals(self) -> List[Tuple[float, float]]:
        """Light intervals as [(start, end), ...]."""
        return [
            (self.edges[i], self.edges[i + 1])
            for i in range(0, len(self.edges) - 1, 2)
        ]

    def shifted(self, delay: float) -> "OpticalWaveform":
        """The same waveform delayed by ``delay`` (a waveguide delay)."""
        return OpticalWaveform(tuple(t + delay for t in self.edges))

    @property
    def start(self) -> float:
        """Time of first light, or +inf for an all-dark waveform."""
        return self.edges[0] if self.edges else float("inf")

    @property
    def end(self) -> float:
        """Time of last light, or -inf for an all-dark waveform."""
        return self.edges[-1] if self.edges else float("-inf")


# ---------------------------------------------------------------------------
# Length-based routing-bit encoding
# ---------------------------------------------------------------------------


def encode_routing_bits(
    bits: Sequence[int], bit_period: float = 1.0, start: float = 0.0
) -> OpticalWaveform:
    """Encode routing bits with the length-based scheme (Fig. 3).

    ``bit_period`` is T in caller units (e.g. 40 ps at 25 Gbps).  Each bit
    occupies a 3T slot: '0' is light for 2T, '1' is light for T.
    """
    intervals: List[Tuple[float, float]] = []
    t = start
    for bit in bits:
        if bit not in (0, 1):
            raise EncodingError(f"routing bit must be 0 or 1, got {bit!r}")
        periods = (
            C.ENCODING_ZERO_PERIODS if bit == 0 else C.ENCODING_ONE_PERIODS
        )
        intervals.append((t, t + periods * bit_period))
        t += C.ENCODING_SLOT_PERIODS * bit_period
    return OpticalWaveform.from_intervals(intervals)


def decode_routing_bits(
    waveform: OpticalWaveform,
    count: int,
    bit_period: float = 1.0,
    tolerance_periods: float = C.TIMING_MARGIN_PERIODS,
) -> List[int]:
    """Decode ``count`` routing bits from the head of ``waveform``.

    A light pulse within ``tolerance_periods`` of 2T decodes as '0'; within
    the tolerance of T decodes as '1'.  Anything else raises
    :class:`EncodingError` -- this mirrors the 0.42T design margin verified
    in Sec. IV-F.
    """
    pulses = waveform.intervals()
    if len(pulses) < count:
        raise EncodingError(
            f"waveform has {len(pulses)} pulses, need {count} routing bits"
        )
    bits: List[int] = []
    for start, end in pulses[:count]:
        length = (end - start) / bit_period
        if abs(length - C.ENCODING_ZERO_PERIODS) <= tolerance_periods:
            bits.append(0)
        elif abs(length - C.ENCODING_ONE_PERIODS) <= tolerance_periods:
            bits.append(1)
        else:
            raise EncodingError(
                f"pulse of {length:.3f}T is outside the +/-"
                f"{tolerance_periods}T margin of both 1T and 2T"
            )
    return bits


# ---------------------------------------------------------------------------
# 8b/10b codec (payload encoding)
# ---------------------------------------------------------------------------

# 5b/6b code: index is the 5-bit value, entry is (abcdei) for RD- (negative
# running disparity).  When the 6b code is balanced it is used for both
# disparities; otherwise RD+ uses the complement.
_5B6B_RD_MINUS = [
    0b100111, 0b011101, 0b101101, 0b110001, 0b110101, 0b101001, 0b011001,
    0b111000, 0b111001, 0b100101, 0b010101, 0b110100, 0b001101, 0b101100,
    0b011100, 0b010111, 0b011011, 0b100011, 0b010011, 0b110010, 0b001011,
    0b101010, 0b011010, 0b111010, 0b110011, 0b100110, 0b010110, 0b110110,
    0b001110, 0b101110, 0b011110, 0b101011,
]

# 3b/4b code: index is the 3-bit value, entry is (fghj) for RD-.
_3B4B_RD_MINUS = [
    0b1011, 0b1001, 0b0101, 0b1100, 0b1101, 0b1010, 0b0110, 0b1110,
]
# D.x.A7 alternate encoding for x=7 to avoid run-length violations.
_3B4B_RD_MINUS_A7 = 0b0111


def _popcount(x: int) -> int:
    return bin(x).count("1")


def _encode_symbol(byte: int, rd: int) -> Tuple[int, int]:
    """Encode one byte into a 10-bit symbol given running disparity rd (+-1).

    Returns (symbol, new_rd).  Symbol bit order: abcdeifghj, MSB first.
    """
    low5 = byte & 0x1F
    high3 = (byte >> 5) & 0x7

    six = _5B6B_RD_MINUS[low5]
    six_ones = _popcount(six)
    if six_ones != 3:  # unbalanced: complement for RD+
        if rd > 0:
            six ^= 0b111111
        rd_after_six = rd if six_ones == 3 else -rd
    else:
        # Balanced codes keep disparity, except D.x.3 (111000/000111 rule):
        # 0b111000 is balanced but by convention flips for RD+.
        if six == 0b111000 and rd > 0:
            six = 0b000111
        rd_after_six = rd

    use_a7 = high3 == 7 and (
        (rd_after_six < 0 and low5 in (17, 18, 20))
        or (rd_after_six > 0 and low5 in (11, 13, 14))
    )
    four = _3B4B_RD_MINUS_A7 if use_a7 else _3B4B_RD_MINUS[high3]
    four_ones = _popcount(four)
    if four_ones != 2:
        if rd_after_six > 0:
            four ^= 0b1111
        rd_after = rd_after_six if four_ones == 2 else -rd_after_six
    else:
        if four == 0b1100 and rd_after_six > 0:
            four = 0b0011
        rd_after = rd_after_six

    return (six << 4) | four, rd_after


def encode_8b10b(data: bytes) -> List[int]:
    """Encode bytes into a 10-bits-per-byte stream (list of 0/1).

    Implements the 5b/6b + 3b/4b data-character tables with running
    disparity.  The output run-length property (no more than 5 identical
    bits in a row) is what the line activity detector's 6T rule relies on.
    """
    bits: List[int] = []
    rd = -1
    for byte in data:
        if not 0 <= byte <= 255:
            raise EncodingError(f"byte out of range: {byte}")
        symbol, rd = _encode_symbol(byte, rd)
        bits.extend((symbol >> shift) & 1 for shift in range(9, -1, -1))
    return bits


def decode_8b10b(bits: Sequence[int]) -> bytes:
    """Decode a 10-bits-per-byte stream back to bytes.

    Decoding is table-free: we re-encode each candidate byte under both
    disparities and match.  (O(256) per symbol; fine for test payloads.)
    """
    if len(bits) % 10 != 0:
        raise EncodingError("8b/10b stream length must be a multiple of 10")
    out = bytearray()
    rd = -1
    for i in range(0, len(bits), 10):
        symbol = 0
        for bit in bits[i : i + 10]:
            symbol = (symbol << 1) | bit
        for candidate in range(256):
            encoded, new_rd = _encode_symbol(candidate, rd)
            if encoded == symbol:
                out.append(candidate)
                rd = new_rd
                break
        else:
            raise EncodingError(f"invalid 8b/10b symbol {symbol:010b}")
    return bytes(out)


# ---------------------------------------------------------------------------
# Whole-packet encode/decode
# ---------------------------------------------------------------------------


def encode_packet(
    routing_bits: Sequence[int],
    payload: bytes,
    bit_period: float = 1.0,
    start: float = 0.0,
) -> OpticalWaveform:
    """Encode a full packet: length-encoded routing bits, 8b/10b payload.

    The payload begins immediately after the last routing-bit slot.
    """
    header = encode_routing_bits(routing_bits, bit_period, start)
    t = start + len(routing_bits) * C.ENCODING_SLOT_PERIODS * bit_period
    intervals = header.intervals()
    for bit in encode_8b10b(payload):
        if bit:
            intervals.append((t, t + bit_period))
        t += bit_period
    return OpticalWaveform.from_intervals(intervals)


def decode_packet(
    waveform: OpticalWaveform,
    routing_bit_count: int,
    bit_period: float = 1.0,
) -> Tuple[List[int], bytes]:
    """Decode a packet produced by :func:`encode_packet`.

    Returns (routing_bits, payload).  The payload region is sampled at the
    center of each bit period until 6T of continuous darkness is seen.
    """
    bits = decode_routing_bits(waveform, routing_bit_count, bit_period)
    payload_start = (
        waveform.start
        + routing_bit_count * C.ENCODING_SLOT_PERIODS * bit_period
    )
    dark_limit = C.END_OF_PACKET_DARK_PERIODS * bit_period
    samples: List[int] = []
    t = payload_start + 0.5 * bit_period
    dark_run = 0.0
    while dark_run < dark_limit and t < waveform.end + dark_limit:
        level = waveform.level_at(t)
        samples.append(level)
        dark_run = dark_run + bit_period if level == 0 else 0.0
        t += bit_period
    # Strip the trailing dark run that signalled end-of-packet.
    while samples and samples[-1] == 0 and len(samples) % 10 != 0:
        samples.pop()
    while len(samples) >= 10 and all(
        s == 0 for s in samples[-10:]
    ):
        del samples[-10:]
    return bits, decode_8b10b(samples)


# ---------------------------------------------------------------------------
# Bandwidth overhead (Sec. IV-B)
# ---------------------------------------------------------------------------


def length_encoding_overhead(
    routing_bit_count: int = 8,
    payload_bytes: int = C.PACKET_SIZE_BYTES,
    include_end_gap: bool = True,
) -> float:
    """Bandwidth overhead of length-encoding vs. pure 8b/10b (Sec. IV-B).

    The baseline packs the routing bits into the 8b/10b stream (10 bit
    periods per byte); the length-based scheme spends 3T per routing bit and
    (when ``include_end_gap``) a 6T end-of-packet gap.  The paper quotes
    0.34% for 8 routing bits and a 512-byte payload; this function brackets
    that: 0.39% with the end gap, 0.27% without.
    """
    if routing_bit_count <= 0 or payload_bytes <= 0:
        raise EncodingError("routing_bit_count and payload_bytes must be > 0")
    payload_periods = payload_bytes * 10
    routing_bytes = (routing_bit_count + 7) // 8
    baseline = payload_periods + routing_bytes * 10
    length_based = (
        payload_periods + routing_bit_count * C.ENCODING_SLOT_PERIODS
    )
    if include_end_gap:
        length_based += C.END_OF_PACKET_DARK_PERIODS
    return length_based / baseline - 1.0
