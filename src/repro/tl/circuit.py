"""Event-driven gate-level simulator for asynchronous TL optical circuits.

This is the HSPICE substitute used to validate the 2x2 TL switch (Fig. 5).
Optical signals are modelled as binary light levels on a continuous time
axis (picoseconds); TL gates re-evaluate when any input toggles and drive
their output after the Table IV propagation delay.  Because TL gates restore
optical signal strength (Sec. III), amplitude is abstracted away and only
timing behaviour is simulated.

Elements mirror :mod:`repro.tl.gates`: active gates (INV/AND/OR/NAND/NOR/
BUF), the SR latch (two cross-coupled NORs, built structurally), the
asynchronous mutex used by the arbiter [47], and passive splitters,
combiners (OR-by-superposition), and waveguide delays.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CircuitError
from repro.sim import Environment
from repro.tl.device import TLGateCharacteristics, characterize_gate
from repro.tl.encoding import OpticalWaveform
from repro.tl.gates import GateBudget, GateType

__all__ = ["Signal", "Circuit"]


class Signal:
    """A named optical signal with a binary level and change listeners."""

    __slots__ = ("name", "level", "_listeners", "_history", "_recording")

    def __init__(self, name: str, level: int = 0):
        self.name = name
        self.level = level
        self._listeners: List[Callable[[float, int], None]] = []
        self._history: List[Tuple[float, int]] = []
        self._recording = False

    def listen(self, callback: Callable[[float, int], None]) -> None:
        """Register ``callback(time, new_level)`` on level changes."""
        self._listeners.append(callback)

    def record(self) -> None:
        """Start recording this signal's transitions (for waveforms)."""
        self._recording = True

    def set(self, time: float, level: int) -> None:
        """Drive the signal to ``level`` at ``time`` (no-op if unchanged)."""
        if level == self.level:
            return
        self.level = level
        if self._recording:
            self._history.append((time, level))
        for listener in self._listeners:
            listener(time, level)

    def history(self) -> List[Tuple[float, int]]:
        """Recorded (time, level) transitions."""
        return list(self._history)

    def waveform(self) -> OpticalWaveform:
        """Recorded transitions as an :class:`OpticalWaveform`.

        Assumes the signal started dark and was recorded from t=0.
        """
        return OpticalWaveform(tuple(t for t, _ in self._history))

    def rise_times(self) -> List[float]:
        """Times of recorded 0->1 transitions."""
        return [t for t, level in self._history if level == 1]

    def fall_times(self) -> List[float]:
        """Times of recorded 1->0 transitions."""
        return [t for t, level in self._history if level == 0]


class _Gate:
    """An active TL gate: output = fn(inputs) after the gate delay."""

    __slots__ = ("circuit", "fn", "inputs", "output", "delay")

    def __init__(
        self,
        circuit: "Circuit",
        fn: Callable[..., int],
        inputs: Sequence[Signal],
        output: Signal,
        delay: float,
    ):
        self.circuit = circuit
        self.fn = fn
        self.inputs = list(inputs)
        self.output = output
        self.delay = delay
        for sig in self.inputs:
            sig.listen(self._on_input)
        # Establish the initial output level without delay.
        output.level = fn(*(s.level for s in self.inputs))

    def _on_input(self, time: float, _level: int) -> None:
        new = self.fn(*(s.level for s in self.inputs))
        env = self.circuit.env
        env.schedule(self.delay, self.output.set, time + self.delay, new)


class _Mutex:
    """Asynchronous 2-way mutual exclusion element (arbiter core, [47]).

    Built physically from a latch and two threshold NOT gates; modelled
    behaviourally: a grant follows its request after one gate delay, but at
    most one grant is high at a time; ties go to the lower-indexed request
    (the metastability resolution is abstracted to a deterministic choice,
    which keeps simulations reproducible).
    """

    __slots__ = ("circuit", "requests", "grants", "delay", "_owner")

    def __init__(
        self,
        circuit: "Circuit",
        requests: Sequence[Signal],
        grants: Sequence[Signal],
        delay: float,
    ):
        if len(requests) != 2 or len(grants) != 2:
            raise CircuitError("mutex requires exactly 2 requests and grants")
        self.circuit = circuit
        self.requests = list(requests)
        self.grants = list(grants)
        self.delay = delay
        self._owner: Optional[int] = None
        for sig in self.requests:
            sig.listen(self._on_change)

    def _on_change(self, time: float, _level: int) -> None:
        env = self.circuit.env
        levels = [s.level for s in self.requests]
        if self._owner is not None and not levels[self._owner]:
            released = self._owner
            self._owner = None
            env.schedule(self.delay, self.grants[released].set,
                         time + self.delay, 0)
        if self._owner is None:
            for idx in (0, 1):
                if levels[idx]:
                    self._owner = idx
                    env.schedule(self.delay, self.grants[idx].set,
                                 time + self.delay, 1)
                    break


class Circuit:
    """A TL optical circuit: signals + elements + gate budget + clock.

    Time unit is picoseconds.  Build netlists with the ``add_*`` methods,
    drive primary inputs with :meth:`drive`, then :meth:`run`.
    """

    def __init__(
        self,
        characteristics: Optional[TLGateCharacteristics] = None,
        max_fanin: int = 2,
    ):
        self.env = Environment()
        self.chars = characteristics or characterize_gate()
        self.budget = GateBudget(characteristics=self.chars)
        self.max_fanin = max_fanin
        self._signals: Dict[str, Signal] = {}

    # -- construction -------------------------------------------------------

    def signal(self, name: str, level: int = 0) -> Signal:
        """Create (or fetch) a named signal."""
        if name not in self._signals:
            self._signals[name] = Signal(name, level)
        return self._signals[name]

    def _check_fanin(self, inputs: Sequence[Signal], kind: str) -> None:
        if len(inputs) > self.max_fanin:
            raise CircuitError(
                f"{kind} gate fan-in {len(inputs)} exceeds the TL design "
                f"rule of {self.max_fanin} inputs (Sec. III)"
            )

    def _add_gate(
        self,
        gate_type: GateType,
        fn: Callable[..., int],
        inputs: Sequence[Signal],
        name: str,
        delay: Optional[float] = None,
    ) -> Signal:
        output = self.signal(name)
        _Gate(self, fn, inputs, output,
              self.chars.delay_ps if delay is None else delay)
        self.budget.add(gate_type)
        return output

    def add_inv(self, a: Signal, name: str) -> Signal:
        """Optical inverter (Fig. 2b)."""
        return self._add_gate(GateType.INV, lambda x: 1 - x, [a], name)

    def add_buf(self, a: Signal, name: str) -> Signal:
        """Buffer (signal regeneration)."""
        return self._add_gate(GateType.BUF, lambda x: x, [a], name)

    def add_and(self, a: Signal, b: Signal, name: str) -> Signal:
        """2-input optical AND."""
        self._check_fanin([a, b], "AND")
        return self._add_gate(GateType.AND, lambda x, y: x & y, [a, b], name)

    def add_or(self, a: Signal, b: Signal, name: str) -> Signal:
        """2-input optical OR."""
        self._check_fanin([a, b], "OR")
        return self._add_gate(GateType.OR, lambda x, y: x | y, [a, b], name)

    def add_nand(self, a: Signal, b: Signal, name: str) -> Signal:
        """2-input optical NAND."""
        self._check_fanin([a, b], "NAND")
        return self._add_gate(
            GateType.NAND, lambda x, y: 1 - (x & y), [a, b], name
        )

    def add_nor(self, a: Signal, b: Signal, name: str) -> Signal:
        """2-input optical NOR."""
        self._check_fanin([a, b], "NOR")
        return self._add_gate(
            GateType.NOR, lambda x, y: 1 - (x | y), [a, b], name
        )

    def add_waveguide_delay(
        self, a: Signal, delay_ps: float, name: str
    ) -> Signal:
        """Passive waveguide delay element [35], [36]."""
        if delay_ps <= 0:
            raise CircuitError("waveguide delay must be positive")
        output = self.signal(name)
        _Gate(self, lambda x: x, [a], output, delay_ps)
        self.budget.add(GateType.WAVEGUIDE_DELAY)
        return output

    def add_combiner(self, inputs: Sequence[Signal], name: str) -> Signal:
        """Passive optical combiner: output carries light iff any input does.

        Combiners are passive so arbitrary fan-in is allowed (the fan-in
        rule applies only to active TL gates).
        """
        if not inputs:
            raise CircuitError("combiner needs at least one input")
        output = self.signal(name)
        _Gate(self, lambda *xs: 1 if any(xs) else 0, inputs, output, 1e-6)
        self.budget.add(GateType.COMBINER)
        return output

    def add_splitter(self, a: Signal, count: int) -> List[Signal]:
        """Passive splitter: returns ``count`` references to the signal.

        Splitting is lossless at the logic level (TL gates restore signal
        strength); the element is recorded in the budget for area/cost.
        """
        if count < 2:
            raise CircuitError("a splitter must split into at least 2")
        self.budget.add(GateType.SPLITTER)
        return [a] * count

    def add_sr_latch(
        self, s: Signal, r: Signal, name: str
    ) -> Tuple[Signal, Signal]:
        """SR latch from two cross-coupled NOR gates [10].

        Returns (Q, Qbar).  Initial state is Q=0.
        """
        q = self.signal(name + ".q", level=0)
        qbar = self.signal(name + ".qbar", level=1)
        _Gate(self, lambda x, y: 1 - (x | y), [r, qbar], q,
              self.chars.delay_ps)
        _Gate(self, lambda x, y: 1 - (x | y), [s, q], qbar,
              self.chars.delay_ps)
        # Re-assert initial state (cross-coupled construction evaluates
        # both gates at level-build time).
        q.level, qbar.level = 0, 1
        self.budget.add(GateType.LATCH)
        return q, qbar

    def add_sample_latch(
        self,
        data: Signal,
        trigger: Signal,
        reset: Signal,
        name: str,
    ) -> Tuple[Signal, Signal]:
        """Edge-triggered sampling latch: on each rising edge of ``trigger``
        the current ``data`` level is captured (after one gate delay); a
        rising edge of ``reset`` clears it.

        This models the routing latch's 'measure the delayed signal at the
        falling edge' semantics (Fig. 3) behaviourally; it is still built
        from two cross-coupled NORs physically and is budgeted as a latch.
        Returns (Q, Qbar).
        """
        q = self.signal(name + ".q", level=0)
        qbar = self.signal(name + ".qbar", level=1)
        delay = self.chars.delay_ps

        def on_trigger(time: float, level: int) -> None:
            if level == 1:
                sampled = data.level
                self.env.schedule(delay, q.set, time + delay, sampled)
                self.env.schedule(delay, qbar.set, time + delay, 1 - sampled)

        def on_reset(time: float, level: int) -> None:
            if level == 1:
                self.env.schedule(delay, q.set, time + delay, 0)
                self.env.schedule(delay, qbar.set, time + delay, 1)

        trigger.listen(on_trigger)
        reset.listen(on_reset)
        self.budget.add(GateType.LATCH)
        return q, qbar

    def add_mutex(
        self, req0: Signal, req1: Signal, name: str
    ) -> Tuple[Signal, Signal]:
        """2-way asynchronous arbiter: a latch plus two threshold NOT gates
        [47].  Returns (grant0, grant1); at most one is ever high."""
        g0 = self.signal(name + ".grant0")
        g1 = self.signal(name + ".grant1")
        _Mutex(self, [req0, req1], [g0, g1], self.chars.delay_ps)
        self.budget.add(GateType.LATCH)
        self.budget.add(GateType.THRESHOLD_NOT, 2)
        return g0, g1

    # -- stimulus and execution ----------------------------------------------

    def drive(self, signal: Signal, waveform: OpticalWaveform) -> None:
        """Schedule a waveform onto a primary input signal."""
        level = 1
        for edge in waveform.edges:
            self.env.schedule_at(edge, signal.set, edge, level)
            level = 1 - level

    def run(self, until: Optional[float] = None) -> None:
        """Run the circuit until quiescent or until time ``until`` (ps)."""
        self.env.run(until=until)

    # -- reporting ------------------------------------------------------------

    def render_waveforms(
        self,
        signals: Sequence[Signal],
        t_end: float,
        t_start: float = 0.0,
        width: int = 72,
    ) -> str:
        """Render recorded signals as ASCII waveforms (Fig. 5 style)."""
        lines = []
        step = (t_end - t_start) / width
        for sig in signals:
            history = sig.history()
            chars = []
            for i in range(width):
                t = t_start + (i + 0.5) * step
                level = 0
                for when, lvl in history:
                    if when <= t:
                        level = lvl
                    else:
                        break
                chars.append("#" if level else "_")
            lines.append(f"{sig.name:>16} |{''.join(chars)}|")
        return "\n".join(lines)
