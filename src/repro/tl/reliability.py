"""Reliability analysis of the TL switch (Sec. IV-F).

Optical amplitude is self-restoring in TL gates, so correctness hinges on
*timing*: the switch tolerates up to 0.42T of change in any routing bit's
length in the presence of 10% gate delay/rise-fall variation and 1 ps
waveguide-delay variation.  Timing jitter at each signal transition is a
zero-mean Gaussian with variance 1.53 (ps^2) [49]; a routing bit's edges
cross ~5 re-timing elements per switch (mask-off AND, waveguide delay,
fabric AND, combiner, and the detector sampling path), so the accumulated
jitter seen at the decode point has variance ~5 x 1.53.  With the 25 Gbps
bit period (T = 40 ps) the 0.42T margin then corresponds to a ~6.1 sigma
exceedance, i.e. an error probability of ~1e-9 -- the paper's figure.

The module provides the worst-case margin derivation, the analytic error
probability, a Monte-Carlo cross-check, and the error-scenario enumeration
plus the fault-diagnosis support described at the end of Sec. IV-F.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro import constants as C
from repro.sim.rand import numpy_stream
from repro.tl.device import characterize_gate

__all__ = [
    "worst_case_margin_periods",
    "error_probability",
    "monte_carlo_error_rate",
    "ERROR_SCENARIOS",
    "diagnose_faulty_switch",
    "diagnose_faulty_switches",
]

# Active re-timing elements a routing bit's edges traverse inside one switch
# (see module docstring); each contributes one independent jitter sample.
RETIMING_ELEMENTS_PER_SWITCH = 5

ERROR_SCENARIOS = (
    "routing bit of length 2T (T) incorrectly stored as T (2T)",
    "valid bit goes high (low) while the routing bit is invalid (valid)",
    "mask off bit latched incorrectly",
    "line activity detector misses packet presence/absence",
)
"""The four major error scenarios enumerated in Sec. IV-F; all reduce to a
routing-bit-length (or framing-window) timing violation, so one margin
analysis covers them."""


def worst_case_margin_periods(
    bit_period_ps: float = 40.0,
    gate_variation_fraction: float = C.GATE_DELAY_VARIATION_FRACTION,
    waveguide_variation_ps: float = C.WAVEGUIDE_DELAY_VARIATION_PS,
    gates_in_path: int = 3,
    waveguides_in_path: int = 2,
) -> float:
    """Worst-case timing margin, in bit periods, after static variations.

    The tightest window in the design is the 0.5T slack between the valid
    latch set time (2.5T) and the neighbouring routing-bit boundaries; the
    accumulated worst-case variation of the gates and waveguide delays in
    the set-pulse path eats into it.  With the paper's parameters and the
    25 Gbps bit period this evaluates to ~0.42T (the figure the authors
    verified manually).
    """
    chars = characterize_gate()
    window_ps = 0.5 * bit_period_ps
    gate_term = gates_in_path * gate_variation_fraction * chars.delay_ps
    waveguide_term = waveguides_in_path * waveguide_variation_ps
    margin_ps = window_ps - gate_term - waveguide_term
    return margin_ps / bit_period_ps


def error_probability(
    margin_periods: float = C.TIMING_MARGIN_PERIODS,
    bit_period_ps: float = 40.0,
    jitter_variance_ps2: float = C.JITTER_VARIANCE_PS2,
    retiming_elements: int = RETIMING_ELEMENTS_PER_SWITCH,
) -> float:
    """Analytic probability that accumulated jitter exceeds the margin.

    Two-sided Gaussian tail: ``2 * Q(margin / sigma_total)`` with
    ``sigma_total = sqrt(retiming_elements * jitter_variance)``.
    Defaults reproduce the paper's ~1e-9.
    """
    if margin_periods <= 0:
        return 1.0
    sigma = math.sqrt(retiming_elements * jitter_variance_ps2)
    margin_ps = margin_periods * bit_period_ps
    z = margin_ps / sigma
    return math.erfc(z / math.sqrt(2.0))


def monte_carlo_error_rate(
    margin_periods: float,
    bit_period_ps: float,
    jitter_variance_ps2: float,
    retiming_elements: int = RETIMING_ELEMENTS_PER_SWITCH,
    trials: int = 100_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the margin-exceedance probability.

    Samples ``retiming_elements`` independent Gaussian jitters per trial and
    counts trials whose accumulated jitter magnitude exceeds the margin.
    Used to validate :func:`error_probability` at inflated jitter levels
    (the 1e-9 regime itself is unreachable by direct MC).
    """
    rng = numpy_stream(seed, "reliability-mc")
    sigma = math.sqrt(jitter_variance_ps2)
    jitter = rng.normal(0.0, sigma, size=(trials, retiming_elements))
    total = jitter.sum(axis=1)
    margin_ps = margin_periods * bit_period_ps
    return float(np.mean(np.abs(total) > margin_ps))


# ---------------------------------------------------------------------------
# Fault diagnosis (Sec. IV-F, last paragraph)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Observation:
    """One diagnostic packet: the path it took and whether it arrived."""

    path: Sequence[int]  # switch ids traversed, in stage order
    delivered: bool


def diagnose_faulty_switch(
    observations: Sequence[_Observation],
) -> List[int]:
    """Isolate faulty switch candidates from diagnostic packet outcomes.

    In Baldur with multiplicity 1 (or with test signals forcing one output
    per switch), every packet's path is deterministic, so a faulty switch is
    identified by intersecting the paths of lost packets and subtracting
    every switch that appears on any delivered packet's path.  Returns the
    remaining candidate switch ids (a single id once enough packets have
    been observed).
    """
    lost = [set(obs.path) for obs in observations if not obs.delivered]
    if not lost:
        return []
    candidates = set.intersection(*lost)
    for obs in observations:
        if obs.delivered:
            candidates -= set(obs.path)
    return sorted(candidates)


def diagnose_faulty_switches(
    observations: Sequence[_Observation],
) -> List[int]:
    """Isolate *multiple* concurrent faulty switches (group testing).

    A probe is lost iff its path crosses at least one faulty switch, so
    single-fault path intersection (:func:`diagnose_faulty_switch`) breaks
    down with two or more faults: lost paths through *different* faults may
    share no switch at all.  Instead we iterate isolate-and-mask:

    1. every switch on a delivered path is cleared;
    2. each lost probe yields a *suspect set* (its path minus cleared
       switches);
    3. any singleton suspect set confirms its switch as faulty;
    4. suspect sets containing a confirmed switch are explained and
       masked out; repeat from 3 until nothing changes.

    Returns the confirmed switches plus any remaining ambiguous suspects
    (sorted).  With observations drawn from several deterministic path
    families (different test ports), the ambiguous set converges to
    empty and the result is exactly the faulty switches.
    """
    cleared: set = set()
    for obs in observations:
        if obs.delivered:
            cleared |= set(obs.path)
    suspect_sets = [
        set(obs.path) - cleared
        for obs in observations
        if not obs.delivered
    ]
    # Drop inconsistent observations (a lost probe fully covered by
    # delivered paths can only be congestion, not a deterministic fault).
    suspect_sets = [s for s in suspect_sets if s]
    confirmed: set = set()
    changed = True
    while changed:
        changed = False
        remaining = []
        for suspects in suspect_sets:
            if suspects & confirmed:
                changed = True  # explained by a confirmed fault: mask it
                continue
            if len(suspects) == 1:
                confirmed |= suspects
                changed = True
                continue
            remaining.append(suspects)
        suspect_sets = remaining
    ambiguous = set().union(*suspect_sets) if suspect_sets else set()
    return sorted(confirmed | ambiguous)


def make_observation(path: Sequence[int], delivered: bool) -> _Observation:
    """Construct a diagnostic observation (helper for tests/examples)."""
    return _Observation(tuple(path), delivered)


def margin_report(bit_period_ps: float = 40.0) -> Dict[str, float]:
    """Summary used by the Sec. IV-F bench: margin and error probability."""
    margin = worst_case_margin_periods(bit_period_ps)
    return {
        "bit_period_ps": bit_period_ps,
        "worst_case_margin_periods": margin,
        "paper_margin_periods": C.TIMING_MARGIN_PERIODS,
        "error_probability": error_probability(
            C.TIMING_MARGIN_PERIODS, bit_period_ps
        ),
        "paper_error_probability": C.TARGET_ERROR_PROBABILITY,
    }
