"""TL optical gate library: active gates and passive optical elements.

Active gates (each built around an output TL, Sec. III):

* INV, NAND, NOR, AND, OR, BUF -- all with identical delay/power (the output
  TL is the limiting element; Table IV applies to every type).
* LATCH -- two cross-coupled NOR gates [10]; double the power.
* THRESHOLD_NOT -- the threshold inverter used in the asynchronous arbiter
  [47]; modelled as one gate.

Passive elements (no TL, negligible power):

* SPLITTER -- splits one optical signal into N [33], [34].
* COMBINER -- combines N signals into one; performs OR because the output
  carries light iff any input does [34].
* WAVEGUIDE_DELAY -- delays propagation by a fixed time [35], [36].

The library also provides :class:`GateBudget`, the bookkeeping object used to
compute per-switch gate counts, power, and area.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.tl.device import TLGateCharacteristics, characterize_gate

__all__ = ["GateType", "GATE_COST_IN_GATES", "GateBudget", "gate_power_w"]


class GateType(enum.Enum):
    """Every element type available to TL circuit designers."""

    INV = "inv"
    BUF = "buf"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    THRESHOLD_NOT = "threshold_not"
    LATCH = "latch"
    SPLITTER = "splitter"
    COMBINER = "combiner"
    WAVEGUIDE_DELAY = "waveguide_delay"


GATE_COST_IN_GATES: Dict[GateType, int] = {
    GateType.INV: 1,
    GateType.BUF: 1,
    GateType.AND: 1,
    GateType.OR: 1,
    GateType.NAND: 1,
    GateType.NOR: 1,
    GateType.THRESHOLD_NOT: 1,
    GateType.LATCH: 2,  # two cross-coupled NORs (Sec. III)
    GateType.SPLITTER: 0,  # passive
    GateType.COMBINER: 0,  # passive
    GateType.WAVEGUIDE_DELAY: 0,  # passive
}
"""Equivalent TL-gate count of each element (passives cost zero gates)."""


def gate_power_w(
    gate_type: GateType,
    characteristics: TLGateCharacteristics | None = None,
) -> float:
    """Power of one element of ``gate_type`` in watts.

    All single-output active gates consume the same power regardless of
    fan-in (Sec. III); a latch consumes double; passives consume nothing.
    """
    chars = characteristics or characterize_gate()
    return GATE_COST_IN_GATES[gate_type] * chars.power_w


@dataclass
class GateBudget:
    """Accumulates element counts for a circuit and reports totals.

    Used to account for the gate count, power, and area of TL switch designs
    (Table V) and whole networks (Sec. VI).
    """

    counts: Dict[GateType, int] = field(default_factory=dict)
    characteristics: TLGateCharacteristics = field(
        default_factory=characterize_gate
    )

    def add(self, gate_type: GateType, count: int = 1) -> None:
        """Record ``count`` additional elements of ``gate_type``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.counts[gate_type] = self.counts.get(gate_type, 0) + count

    def merge(self, other: "GateBudget") -> None:
        """Fold another budget's counts into this one."""
        for gate_type, count in other.counts.items():
            self.add(gate_type, count)

    @property
    def tl_gate_count(self) -> int:
        """Total equivalent TL gates (latches count as 2, passives as 0)."""
        return sum(
            GATE_COST_IN_GATES[gate_type] * count
            for gate_type, count in self.counts.items()
        )

    @property
    def passive_count(self) -> int:
        """Total passive elements (splitters/combiners/delays)."""
        return sum(
            count
            for gate_type, count in self.counts.items()
            if GATE_COST_IN_GATES[gate_type] == 0
        )

    @property
    def power_w(self) -> float:
        """Total power: gate count times the per-gate power."""
        return self.tl_gate_count * self.characteristics.power_w

    @property
    def area_um2(self) -> float:
        """Total active area: gate count times the per-gate area."""
        return self.tl_gate_count * self.characteristics.area_um2
