"""The line activity detector of the TL switch (Fig. 4b).

One detector per switch input port.  It has two jobs (Sec. IV-C):

1. **Packet framing** -- detect the beginning and end of each packet by
   continuously detecting the presence of light: the input is split into a
   bank of waveguide delays (n = 15 taps of delta = 0.4T, spanning the 6T
   end-of-packet window) whose outputs are combined; the combiner output is
   '1' from the first light until 6T after the last light.  Edges of this
   *presence* signal are detected by comparing it with a 0.5T-delayed copy.

2. **Routing-bit decode** -- delay the input by theta = 1.3T and latch the
   delayed level at the falling edge of the first bit: level 1 means the
   bit was 2T long (logic '0'), level 0 means 1T (logic '1').

It drives three control latches: the *routing latch* (decoded first bit),
the *valid latch* (set 2.5T after packet start, reset at end of packet), and
the *mask-off latch* (same timing; masks the first routing bit in the
fabric).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants as C
from repro.tl.circuit import Circuit, Signal

__all__ = ["LineActivityDetector"]

# Width of the falling-edge detection pulse used to enable the routing
# latch, in bit periods.  Must exceed a few gate delays for the NOR latch to
# capture reliably, and stay well under the 1T minimum gap.
FALL_EDGE_PULSE_PERIODS = 0.3


@dataclass
class LineActivityDetector:
    """Structural line-activity-detector netlist attached to one input.

    Public signals (all recordable):

    * ``presence``   -- light-presence envelope (high until 6T after EOP).
    * ``start_pulse``/``end_pulse`` -- packet framing pulses.
    * ``routing_q``  -- routing latch: 1 means first bit was '0' (2T).
    * ``valid_q``    -- high while the routing bit is valid.
    * ``maskoff_q``  -- high from 2.5T after start until end of packet.
    """

    circuit: Circuit
    input_signal: Signal
    bit_period_ps: float
    name: str

    def __post_init__(self):
        circ, inp, t, nm = (
            self.circuit, self.input_signal, self.bit_period_ps, self.name
        )
        delta = C.LINE_DETECTOR_DELTA_PERIODS * t

        # -- presence: input OR its delayed copies spanning 6T -------------
        taps = [inp]
        prev = inp
        for k in range(1, C.LINE_DETECTOR_N_STAGES + 1):
            prev = circ.add_waveguide_delay(prev, delta, f"{nm}.tap{k}")
            taps.append(prev)
        self.presence = circ.add_combiner(taps, f"{nm}.presence")

        # -- edge detection: compare presence with a 0.5T-delayed copy -----
        presence_delayed = circ.add_waveguide_delay(
            self.presence, C.EDGE_DETECT_DELAY_PERIODS * t, f"{nm}.presence_d"
        )
        not_delayed = circ.add_inv(presence_delayed, f"{nm}.presence_d_n")
        not_presence = circ.add_inv(self.presence, f"{nm}.presence_n")
        self.start_pulse = circ.add_and(
            self.presence, not_delayed, f"{nm}.start_pulse"
        )
        self.end_pulse = circ.add_and(
            not_presence, presence_delayed, f"{nm}.end_pulse"
        )

        # -- valid and mask-off latches: set 2.5T after start, reset at EOP
        set_pulse = circ.add_waveguide_delay(
            self.start_pulse, C.VALID_LATCH_SET_PERIODS * t, f"{nm}.set_pulse"
        )
        self.valid_q, self.valid_qbar = circ.add_sr_latch(
            set_pulse, self.end_pulse, f"{nm}.valid"
        )
        self.maskoff_q, _ = circ.add_sr_latch(
            set_pulse, self.end_pulse, f"{nm}.maskoff"
        )

        # -- routing-bit decode (Fig. 3) ------------------------------------
        # Sample the theta-delayed input at the falling edge of the first
        # bit.  The paper quotes theta = 1.3T at the latch enable; our
        # enable path (INV + two ANDs) adds 3 gate delays after the falling
        # edge, so we compensate the waveguide delay to place the decision
        # threshold exactly halfway between the 1T and 2T bit lengths,
        # preserving the +/-0.42T margin of Sec. IV-F.
        enable_path_ps = 3 * circ.chars.delay_ps
        theta_ps = (
            C.FIRST_BIT_SAMPLE_DELAY_PERIODS * t
            + 0.2 * t
            + enable_path_ps
        )
        theta_delayed = circ.add_waveguide_delay(inp, theta_ps, f"{nm}.theta")
        input_delayed_short = circ.add_waveguide_delay(
            inp, FALL_EDGE_PULSE_PERIODS * t, f"{nm}.in_d"
        )
        not_input = circ.add_inv(inp, f"{nm}.in_n")
        fall_edge = circ.add_and(
            not_input, input_delayed_short, f"{nm}.fall_edge"
        )
        enable = circ.add_and(fall_edge, self.valid_qbar, f"{nm}.enable")
        self.routing_q, self.routing_qbar = circ.add_sample_latch(
            theta_delayed, enable, self.end_pulse, f"{nm}.routing"
        )

    def record_all(self) -> None:
        """Enable waveform recording on every public signal."""
        for sig in (
            self.presence,
            self.start_pulse,
            self.end_pulse,
            self.valid_q,
            self.maskoff_q,
            self.routing_q,
        ):
            sig.record()
