"""Verbatim constants from the Baldur paper (HPCA 2020).

Every number quoted in the paper's tables and text is collected here, with a
pointer to where it appears, so that the rest of the library never hard-codes
a magic number.  Units are given in each name or docstring.

Sections referenced:
  * Table III  -- TL device and circuit parameters.
  * Table IV   -- TL gate simulation results.
  * Table V    -- path multiplicity / drop-rate results.
  * Table VI   -- network simulation configurations.
  * Sec. IV-B  -- length-based encoding.
  * Sec. IV-E  -- drops, BEB, retransmission buffers.
  * Sec. IV-F  -- reliability margins.
  * Sec. IV-G  -- packaging.
  * Sec. V-A   -- evaluation methodology.
  * Sec. VI-A  -- power component numbers.
  * Sec. VI-B  -- cost analysis.
  * Sec. VII   -- AWGR comparison.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Table III: TL device parameters
# --------------------------------------------------------------------------

TL_JUNCTION_CAPACITANCE_F = 100e-15
"""Base-emitter junction capacitance of a TL (100 fF, Table III)."""

TL_RECOMBINATION_LIFETIME_S = 37e-12
"""Spontaneous recombination lifetime (37 ps, Table III)."""

TL_PHOTON_LIFETIME_S = 2.72e-12
"""Photon lifetime in the cavity (2.72 ps, Table III)."""

TL_WAVELENGTH_NM = 980.0
"""Emission wavelength (980 nm, Table III)."""

TL_THRESHOLD_CURRENT_A = 0.1e-3
"""TL lasing threshold current (0.1 mA, Table III)."""

TL_BIAS_CURRENT_A = 0.2e-3
"""Static bias current (0.2 mA, Table III)."""

TL_SUPPLY_V1_V = 1.32
"""Primary voltage supply +V1 (Table III)."""

TL_SUPPLY_V2_V = 0.6
"""Secondary voltage supply +V2 (Table III)."""

TL_LOAD_RESISTOR_OHM = 5.0
"""Load resistor (Table III)."""

TL_BASE_MODULATION_A = 0.2e-3
"""Base current modulation amplitude (0.2 mA, Table III)."""

TL_COLLECTOR_TUNNELING_MODULATION_A = 17e-6
"""Collector tunneling modulation (17 uA, Table III)."""

TL_PD_JUNCTION_CAPACITANCE_F = 100e-15
"""Photodetector junction capacitance (100 fF, Table III)."""

TL_PD_AVERAGE_CURRENT_A = 0.1e-3
"""Average photodetector current (0.1 mA, Table III)."""

# --------------------------------------------------------------------------
# Table IV: TL gate simulation results (apply to INV/NAND/NOR/AND/OR alike)
# --------------------------------------------------------------------------

TL_GATE_AREA_UM2 = 25.0
"""TL gate area (25 um^2, Table IV)."""

TL_GATE_RISE_FALL_TIME_PS = 7.3
"""Optical output rise/fall time (7.3 ps, Table IV)."""

TL_GATE_DELAY_PS = 1.93
"""Gate propagation delay (1.93 ps, Table IV)."""

TL_GATE_POWER_W = 0.406e-3
"""Gate power (0.406 mW, Table IV); static power dominates, so this is
independent of data rate and activity factor (Sec. III footnote)."""

TL_GATE_DATA_RATE_GBPS = 60.0
"""Demonstrated gate data rate (60 Gbps, Table IV)."""

TL_GATE_ENERGY_PER_BIT_FJ = 6.77
"""0.406 mW / 60 Gbps = 6.77 fJ/bit (Sec. III)."""

TL_LATCH_NOR_GATES = 2
"""A TL latch is two cross-coupled NOR gates, so it consumes double the power
of a single gate (Sec. III)."""

TL_GATE_MAX_FANIN = 2
"""Design rule: no more than 2 inputs per gate to limit waveguide routing and
coupling complexity (Sec. III)."""

# --------------------------------------------------------------------------
# Table V: path multiplicity results (1,024-node Baldur, transpose, load 0.7)
# --------------------------------------------------------------------------

GATES_PER_SWITCH = {1: 64, 2: 300, 3: 642, 4: 1112, 5: 1710}
"""TL gates in a 2x2 switch for multiplicity 1..5 (Table V).  The abstract
quotes 1,112 gates, i.e. the multiplicity-4 design."""

SWITCH_LATENCY_NS = {1: 0.14, 2: 0.49, 3: 0.94, 4: 1.5, 5: 2.25}
"""2x2 TL switch latency for multiplicity 1..5 (Table V)."""

PAPER_DROP_RATE_PCT = {1: 65.3, 2: 21.5, 3: 3.2, 4: 0.3, 5: 0.02}
"""Packet drop rate reported in Table V (transpose, input load 0.7,
1,024 nodes)."""

# --------------------------------------------------------------------------
# Sec. IV-B: length-based encoding
# --------------------------------------------------------------------------

ENCODING_ZERO_PERIODS = 2
"""Logic '0' is encoded as light for two bit periods (2T)."""

ENCODING_ONE_PERIODS = 1
"""Logic '1' is encoded as light for one bit period (T)."""

ENCODING_SLOT_PERIODS = 3
"""Each routing bit plus its gap period occupies exactly 3T."""

END_OF_PACKET_DARK_PERIODS = 6
"""Absence of light for more than 6T means no in-flight packet (Sec. IV-C);
8b/10b payloads never contain more than 5 consecutive zeros."""

VALID_LATCH_SET_PERIODS = 2.5
"""Valid/mask-off latches are set 2.5T after the beginning of a packet."""

FIRST_BIT_SAMPLE_DELAY_PERIODS = 1.3
"""Routing-bit decode: the input is delayed by 1.3T and sampled at the falling
edge of the first bit (Fig. 3)."""

EDGE_DETECT_DELAY_PERIODS = 0.5
"""Edge detection compares the combiner output against itself delayed 0.5T."""

LINE_DETECTOR_THETA_PERIODS = 1.3
"""Line activity detector parameter theta = 1.3T (Fig. 4b)."""

LINE_DETECTOR_DELTA_PERIODS = 0.4
"""Line activity detector parameter delta = 0.4T (Fig. 4b)."""

LINE_DETECTOR_N_STAGES = 15
"""Line activity detector delay-bank size n = 15 (Fig. 4b)."""

WAVEGUIDE_DELAY_WD_PS = 132.0
"""Switch-fabric waveguide delays WD0/WD1 (132 ps, Sec. IV-C)."""

# --------------------------------------------------------------------------
# Sec. IV-E / IV-F: drops, retransmission, reliability
# --------------------------------------------------------------------------

TARGET_DROP_RATE = 0.01
"""Multiplicity is chosen so the worst-case drop rate is below 1%."""

MULTIPLICITY_FOR_1K = 4
"""Multiplicity 4 is required for a 1,024-node network (Sec. IV-E)."""

MULTIPLICITY_FOR_1M = 5
"""Multiplicity 5 is sufficient for networks with over 1 million nodes."""

MULTIPLICITY_FOR_32 = 3
"""Multiplicity 3 is sufficient at the 32-node scale (Sec. VII)."""

RETX_BUFFER_SUFFICIENT_KB = 536
"""Measured sufficient retransmission buffer per node at load 0.7."""

RETX_BUFFER_PROVISIONED_MB = 1
"""Provisioned retransmission buffer per node (1 MB, abundant margin)."""

TIMING_MARGIN_PERIODS = 0.42
"""The switch tolerates up to 0.42T change in any routing-bit length in the
presence of 10% gate variation and 1 ps waveguide variation (Sec. IV-F)."""

GATE_DELAY_VARIATION_FRACTION = 0.10
"""10% variation considered on TL gate delay and rise/fall time."""

WAVEGUIDE_DELAY_VARIATION_PS = 1.0
"""1 ps variation considered on waveguide delay elements."""

JITTER_VARIANCE_PS2 = 1.53
"""Timing jitter per signal transition: Gaussian, mu=0, variance 1.53
(Sec. IV-F)."""

TARGET_ERROR_PROBABILITY = 1e-9
"""Design-margin target error probability (Sec. IV-F)."""

# --------------------------------------------------------------------------
# Table VI / Sec. V-A: network simulation parameters
# --------------------------------------------------------------------------

PACKET_SIZE_BYTES = 512
"""Packet size used in all simulations (Sec. V-A, per [53])."""

LINK_DATA_RATE_GBPS = 25.0
"""Link data rate: 25 Gbps, the max per-lane rate in current standards."""

BALDUR_LINK_DELAY_NS = 100.0
"""Baldur host-to-network and network-to-host link delay (Table VI)."""

BALDUR_MULTIPLICITY = 4
"""Baldur configuration evaluated in Sec. V (Table VI)."""

ELECTRICAL_SWITCH_LATENCY_NS = 90.0
"""Electrical switch latency (90 ns, Mellanox SB7700 [54], Table VI)."""

ELECTRICAL_BUFFER_PER_PORT_KB = 24
"""Electrical switch buffering (24 KB per port, Table VI)."""

ELECTRICAL_VIRTUAL_CHANNELS = 3
"""Electrical switch virtual channels (Table VI)."""

MULTIBUTTERFLY_LINK_DELAY_NS = 100.0
"""Electrical multi-butterfly link delay (Table VI)."""

DRAGONFLY_INTRA_GROUP_DELAY_NS = 10.0
"""Dragonfly intra-group link delay (Table VI)."""

DRAGONFLY_INTER_GROUP_DELAY_NS = 100.0
"""Dragonfly inter-group (global) link delay (Table VI)."""

FATTREE_LEVEL_DELAYS_NS = (10.0, 50.0, 100.0)
"""Fat-tree link delay per level: level1 10 ns, level2 50 ns, level3 100 ns."""

IDEAL_PACKET_LATENCY_NS = 200.0
"""The ideal network: infinite bandwidth, flat 200 ns latency (Table VI)."""

PACKETS_PER_NODE = 10_000
"""Paper methodology: each node injects 10,000 packets per experiment."""

HEAVY_INPUT_LOAD = 0.7
"""The 'heavy' load highlighted throughout Sec. V."""

# --------------------------------------------------------------------------
# Sec. VI-A: power components
# --------------------------------------------------------------------------

TRANSCEIVER_POWER_W = 1.5
"""Cisco SFP28 optical transceiver module power [58]."""

SERDES_POWER_W = 0.693
"""SerDes unit power (32 nm SOI transceiver [59])."""

RETX_BUFFER_POWER_W_PER_MB = 0.741
"""Retransmission buffer power: 0.741 W per 1 MB [60]; Baldur only."""

ELECTRICAL_TO_TL_SWITCH_POWER_RATIO = 96.6
"""An electrical 2x2 switch (m=4, incl. its per-port transceivers/SerDes)
consumes 96.6X more power than the TL switch (Sec. VI-A.2 / abstract)."""

EMB_POWER_PER_NODE_1K_W = 223.5
"""Electrical multi-butterfly power per node at 1,024 nodes (Sec. II-A)."""

EMB_OEO_SERDES_FRACTION = 0.417
"""41.7% of eMB power is O-E/E-O conversions and SerDes (Sec. II-A)."""

EMB_TO_FATTREE_POWER_RATIO_1K = 6.0
"""eMB consumes 6X more power per node than fat-tree at 1,024 nodes."""

FATTREE_128K_POWER_GROWTH = 6.4
"""A 128K-node fat-tree from 80-radix switches consumes 6.4X more power per
node than a 1,024-node fat-tree from 16-radix switches (Sec. II-A)."""

DRAGONFLY_OPTICAL_INTRA_GROUP_THRESHOLD = 83_000
"""From ~83K nodes, dragonfly intra-group links become optical (Sec. VI-A)."""

POWER_GROWTH_1K_TO_1M = {
    "baldur": 1.7,
    "dragonfly": 7.8,
    "fattree": 9.0,
    "multibutterfly": 2.0,
}
"""Per-node power growth from the 1K-2K scale to the 1M-1.4M scale (Fig. 8)."""

BALDUR_POWER_ADVANTAGE_1K = (3.2, 26.4)
"""Baldur power improvement range vs. other networks at 1K-2K (Fig. 8)."""

BALDUR_POWER_ADVANTAGE_1M = (14.6, 31.0)
"""Baldur power improvement range vs. other networks at 1M-1.4M (Fig. 8)."""

SENSITIVITY_PESSIMISTIC_RATIOS = {
    "dragonfly": 5.1, "fattree": 8.2, "multibutterfly": 14.7,
}
"""Fig. 9 pessimistic case (electrical 0.5X, optical 2X): Baldur advantage."""

MAX_PRACTICAL_RADIX = 64
"""It is not practical to build a single >64-radix switch (Sec. II-A)."""

FATTREE_MAX_NODES = 66_000
"""Fat-tree scalability limit at radix <= 64 (Sec. II-A / Table I)."""

DRAGONFLY_MAX_NODES = 263_000
"""Dragonfly scalability limit at radix <= 64 (Sec. II-A / Table I)."""

AWGR_MAX_NODES = 128_000
"""AWGR-network scalability limit using 32-radix AWGRs (Sec. II-A)."""

# --------------------------------------------------------------------------
# Sec. VII: AWGR comparison at the 32-node scale
# --------------------------------------------------------------------------

AWGR_RADIX = 32
"""The comparison AWGR network uses a 32-radix AWGR."""

AWGR_WAVELENGTHS_USED = 3
"""Up to 3 packets per output port in parallel using 3 wavelengths."""

BALDUR_32NODE_POWER_PER_NODE_W = 0.7
"""Baldur power per node at 32 nodes, excluding host transceivers/SerDes."""

AWGR_32NODE_POWER_PER_NODE_W = 4.2
"""AWGR network power per node at 32 nodes, same exclusions (Sec. VII)."""

# --------------------------------------------------------------------------
# Sec. IV-G / VI-B: packaging and cost
# --------------------------------------------------------------------------

PCB_WIDTH_CM = 60.96
"""Standard PCB width (Sec. IV-G)."""

PCB_HEIGHT_CM = 45.72
"""Standard PCB height (Sec. IV-G)."""

INTERPOSER_WIDTH_MM = 32.0
"""Optical interposer width (Sec. IV-G)."""

INTERPOSER_HEIGHT_MM = 10.0
"""Optical interposer height (Sec. IV-G)."""

FIBER_PITCH_UM = 127.0
"""Fiber array unit pitch (Corning FAU datasheet [50])."""

CABINET_POWER_LIMIT_KW = 85.0
"""No more than 85 kW per cabinet (Cray XC series [1])."""

CABINETS_AT_1K = 1
"""Baldur fits in a single cabinet at the 1,024-node scale (Sec. IV-G)."""

CABINETS_AT_1M = 752
"""752 cabinets at the 1M-node scale under the fiber-pitch constraint."""

CABINETS_AT_1M_POWER_ONLY = 176
"""Only 176 cabinets would be needed if 85 kW were the only constraint."""

CABINET_FRACTION_AT_1M = 0.032
"""752 cabinets is 3.2% of the total number of cabinets at 1M nodes."""

TL_AREA_FRACTION_OF_INTERPOSER = 0.10
"""TL gates occupy <10% of interposer area at 1K nodes, m=4 (Sec. IV-G)."""

BALDUR_COST_PER_NODE_1K_USD = 523.0
"""Baldur cost per node at the 1K-2K scale (Sec. VI-B)."""

FATTREE_COST_PER_NODE_USD = 1992.0
"""Fat-tree (2,560 nodes) cost per node [17], [63] (Sec. VI-B)."""

OCS_COST_PER_NODE_USD = 1719.0
"""MEMS OCS cost per node at a few thousand nodes [63] (Sec. VII)."""

INTERPOSER_COST_MULTIPLIER_VS_CMOS = 5.0
"""Pessimistic assumption: optical interposers cost 5X CMOS chips of the same
area (Sec. VI-B)."""

# --------------------------------------------------------------------------
# Derived timing helpers
# --------------------------------------------------------------------------


def bit_period_ns(data_rate_gbps: float = LINK_DATA_RATE_GBPS) -> float:
    """Return the bit period T (in ns) for a given line rate in Gbps.

    At the 25 Gbps link rate used in Sec. V, T = 0.04 ns; at the 60 Gbps TL
    gate rate used inside switches (Table IV), T = 0.0167 ns.
    """
    return 1.0 / data_rate_gbps


def packet_serialization_ns(
    payload_bytes: int = PACKET_SIZE_BYTES,
    data_rate_gbps: float = LINK_DATA_RATE_GBPS,
    encoding_overhead: float = 10.0 / 8.0,
) -> float:
    """Serialization time of a packet whose payload uses 8b/10b encoding.

    ``encoding_overhead`` defaults to the 10/8 expansion of 8b/10b.
    """
    bits_on_wire = payload_bytes * 8 * encoding_overhead
    return bits_on_wire * bit_period_ns(data_rate_gbps)
