"""High-level experiment drivers that regenerate the paper's evaluation.

Each function reproduces one table or figure at a configurable scale.  The
paper's configuration is 1,024 nodes with 10,000 packets per node; pure-
Python packet simulation at that volume takes hours, so the defaults here
are scaled down (the latency/drop *shape* is stable well below the paper's
packet budget -- the benches print both the configuration used and the
paper's reference values).  Set ``n_nodes=1024, packets_per_node=10_000``
to run the full-paper configuration.

The figure/table drivers are thin layers over :mod:`repro.runner`: each
builds a declarative :class:`~repro.runner.SweepSpec` (``figure6_spec``
and friends, also used by the CLI and benches), runs it -- optionally in
parallel and against the on-disk result cache -- and reshapes the flat
job results into the nested structure the tables and plots consume.
Cell RNG seeds are derived per job from the root ``seed`` and the cell's
grid coordinates, so results are independent of worker count and of
which other cells run alongside.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro import constants as C
from repro.errors import ConfigurationError
from repro.netsim.stats import LatencyStats, StatsSummary
from repro.traffic import (
    bisection,
    group_permutation,
    hotspot,
    inject_open_loop,
    random_permutation,
    transpose,
)

__all__ = [
    "build_network",
    "NETWORK_NAMES",
    "FIG7_WORKLOADS",
    "pattern_destinations",
    "run_open_loop",
    "figure6",
    "figure6_spec",
    "reshape_figure6",
    "figure7",
    "figure7_spec",
    "figure7_ratios",
    "reshape_figure7",
    "table5",
    "table5_spec",
    "reshape_table5",
    "ZOO_NETWORKS",
    "zoo_spec",
    "zoo_compare",
    "reshape_zoo",
    "figure9_spec",
]

NETWORK_NAMES = ("baldur", "multibutterfly", "dragonfly", "fattree", "ideal")
"""The five networks compared throughout Sec. V."""

DEFAULT_UNTIL_NS = 50_000_000.0
"""Simulation horizon: saturated networks report the latency of whatever
they managed to deliver by this time, as in any fixed-horizon replay."""


def build_network(name: str, n_nodes: int, seed: int = 0):
    """Construct a Sec. V network (or any zoo architecture) by name.

    Delegates to the :mod:`repro.zoo` architecture registry, whose
    builders construct the exact classes and arguments this function
    historically hand-wired (Table VI configs) -- pinned byte-identical
    by the goldens and the registry↔legacy suite in ``tests/test_zoo.py``.
    """
    # Lazy import: the zoo pulls in every simulator package, and most
    # analysis imports (power tables, plotting) never build a network.
    from repro.zoo import build_network as zoo_build

    return zoo_build(name, n_nodes, seed=seed)


def pattern_destinations(pattern: str, n_nodes: int, seed: int = 0) -> Dict[int, int]:
    """Destination map for an open-loop pattern name."""
    if pattern == "random_permutation":
        return random_permutation(n_nodes, seed)
    if pattern == "transpose":
        return transpose(n_nodes)
    if pattern == "bisection":
        return bisection(n_nodes, seed)
    if pattern == "group_permutation":
        return group_permutation(n_nodes, seed)
    if pattern == "hotspot":
        return hotspot(n_nodes)
    raise ConfigurationError(f"unknown open-loop pattern {pattern!r}")


def run_open_loop(
    network_name: str,
    n_nodes: int,
    pattern: str,
    load: float,
    packets_per_node: int,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
    tracer=None,
    metrics=None,
    shards: Optional[int] = None,
    shard_latency_ns: float = 0.0,
) -> LatencyStats:
    """One open-loop experiment cell (one point of Fig. 6).

    ``tracer``/``metrics`` optionally attach observability
    (:mod:`repro.obs`) before injection; both are passive and leave the
    returned stats byte-identical to an unobserved run.

    ``shards`` > 1 runs the cell on the sharded engine
    (:mod:`repro.shard`); ``shard_latency_ns`` is the extra inter-shard
    fiber delay added on cut links (DESIGN.md section 14).
    """
    net = build_network(network_name, n_nodes, seed)
    if tracer is not None:
        net.attach_tracer(tracer)
    if metrics is not None:
        net.attach_metrics(metrics)
    destinations = pattern_destinations(pattern, n_nodes, seed)
    inject_open_loop(net, destinations, load, packets_per_node, seed=seed)
    return net.run(until=until, shards=shards or 1,
                   shard_latency_ns=shard_latency_ns)


FIG7_WORKLOADS = (
    "hotspot", "ping_pong1", "ping_pong2",
    "AMG", "CrystalRouter", "MultiGrid", "FB",
)
"""Fig. 7 column order: synthetic patterns then the four HPC traces."""

FIG6_PATTERNS = (
    "random_permutation",
    "transpose",
    "bisection",
    "group_permutation",
)
"""Fig. 6 row order: the paper's four open-loop patterns."""


def figure6_spec(
    n_nodes: int = 128,
    loads: Iterable[float] = (0.1, 0.4, 0.7, 0.9),
    patterns: Iterable[str] = FIG6_PATTERNS,
    packets_per_node: int = 20,
    networks: Iterable[str] = NETWORK_NAMES,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
    obs: Optional[Dict] = None,
    shards: Optional[int] = None,
    shard_latency_ns: float = 0.0,
):
    """The Fig. 6 grid as a declarative sweep spec.

    ``obs`` optionally enables per-cell observability (e.g. ``{"trace":
    True, "metrics": True}``, see :mod:`repro.runner.jobs`).  It is only
    added to the spec when set, so default specs -- and therefore job
    keys, cache entries, and golden results files -- are unchanged.
    ``shards`` follows the same rule: when set, every cell runs on the
    sharded engine (:mod:`repro.shard`) with that worker count.
    """
    from repro.runner import SweepSpec

    fixed = {
        "n_nodes": n_nodes,
        "packets_per_node": packets_per_node,
        "until": until,
    }
    if obs is not None:
        fixed["obs"] = dict(obs)
    if shards is not None:
        fixed["shards"] = shards
        fixed["shard_latency_ns"] = shard_latency_ns
    return SweepSpec(
        kind="open_loop",
        axes={
            "pattern": tuple(patterns),
            "network": tuple(networks),
            "load": tuple(loads),
        },
        fixed=fixed,
        root_seed=seed,
    )


def reshape_figure6(sweep) -> Dict[str, Dict[str, Dict[float, StatsSummary]]]:
    """``result[pattern][network][load] -> StatsSummary``."""
    return sweep.index(
        "pattern", "network", "load", value=StatsSummary.from_dict
    )


def figure6(
    n_nodes: int = 128,
    loads: Iterable[float] = (0.1, 0.4, 0.7, 0.9),
    patterns: Iterable[str] = FIG6_PATTERNS,
    packets_per_node: int = 20,
    networks: Iterable[str] = NETWORK_NAMES,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
    jobs: Optional[int] = None,
    cache_dir=None,
    use_cache: bool = True,
    progress=None,
) -> Dict[str, Dict[str, Dict[float, StatsSummary]]]:
    """Fig. 6: average/tail latency vs. input load, per pattern x network.

    Returns ``result[pattern][network][load] -> StatsSummary``.  ``jobs``
    parallelizes the grid across worker processes; ``cache_dir`` reuses
    completed cells from the on-disk result cache.
    """
    from repro.runner import run_sweep

    sweep = run_sweep(
        figure6_spec(n_nodes, loads, patterns, packets_per_node,
                     networks, seed, until),
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        progress=progress,
    )
    return reshape_figure6(sweep)


def figure7_spec(
    n_nodes: int = 128,
    packets_per_node: int = 20,
    ping_pong_rounds: int = 10,
    networks: Iterable[str] = NETWORK_NAMES,
    workloads: Iterable[str] = FIG7_WORKLOADS,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
    hpc_kwargs: Optional[Dict[str, dict]] = None,
):
    """The Fig. 7 grid as a declarative sweep spec."""
    from repro.runner import SweepSpec

    return SweepSpec(
        kind="workload",
        axes={
            "workload": tuple(workloads),
            "network": tuple(networks),
        },
        fixed={
            "n_nodes": n_nodes,
            "packets_per_node": packets_per_node,
            "ping_pong_rounds": ping_pong_rounds,
            "until": until,
            "hpc_kwargs": hpc_kwargs or {},
        },
        root_seed=seed,
    )


def reshape_figure7(sweep) -> Dict[str, Dict[str, StatsSummary]]:
    """``result[workload][network] -> StatsSummary``."""
    return sweep.index("workload", "network", value=StatsSummary.from_dict)


def figure7_ratios(
    results: Dict[str, Dict[str, StatsSummary]],
    networks: Iterable[str] = NETWORK_NAMES,
    baseline: str = "baldur",
) -> Dict[str, Dict[str, float]]:
    """Average-latency ratios normalized to ``baseline``, skipping bad cells.

    A cell with no deliveries reports NaN average latency (e.g. a
    saturated electrical network at a short horizon); its ratio is
    meaningless, so such cells are *omitted* -- with a
    :class:`RuntimeWarning` naming them -- rather than propagated into
    tables and geomeans.  Cells absent from ``results`` entirely (a
    partial sweep where the job failed, timed out, or was quarantined)
    are treated the same way.  A workload whose baseline cell is
    unusable is dropped entirely.  Returns ``{workload: {network:
    ratio}}`` with ``ratio == 1.0`` for the baseline.
    """
    import math
    import warnings

    ratios: Dict[str, Dict[str, float]] = {}
    for workload, per_net in results.items():
        base_stats = per_net.get(baseline)
        base = (base_stats.average_latency if base_stats is not None
                else float("nan"))
        if not math.isfinite(base) or base <= 0:
            warnings.warn(
                f"fig7: skipping workload {workload!r}: {baseline} "
                f"average latency is {base} (no deliveries?)",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        row: Dict[str, float] = {}
        for name in networks:
            stats = per_net.get(name)
            avg = (stats.average_latency if stats is not None
                   else float("nan"))
            if not math.isfinite(avg) or avg <= 0:
                warnings.warn(
                    f"fig7: skipping cell ({workload!r}, {name!r}): "
                    f"average latency is {avg} (no deliveries?)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            row[name] = avg / base
        ratios[workload] = row
    return ratios


def figure7(
    n_nodes: int = 128,
    packets_per_node: int = 20,
    ping_pong_rounds: int = 10,
    networks: Iterable[str] = NETWORK_NAMES,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
    hpc_kwargs: Optional[Dict[str, dict]] = None,
    jobs: Optional[int] = None,
    cache_dir=None,
    use_cache: bool = True,
    progress=None,
) -> Dict[str, Dict[str, StatsSummary]]:
    """Fig. 7: hotspot, ping_pong1/2, and the four HPC workloads.

    Returns ``result[workload][network] -> StatsSummary``.  Normalize
    against the 'ideal' column to obtain the paper's normalized plots.
    """
    from repro.runner import run_sweep

    sweep = run_sweep(
        figure7_spec(n_nodes, packets_per_node, ping_pong_rounds,
                     networks, FIG7_WORKLOADS, seed, until, hpc_kwargs),
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        progress=progress,
    )
    return reshape_figure7(sweep)


def table5_spec(
    n_nodes: int = 256,
    multiplicities: Iterable[int] = (1, 2, 3, 4, 5),
    load: float = C.HEAVY_INPUT_LOAD,
    packets_per_node: int = 30,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
    shards: Optional[int] = None,
    shard_latency_ns: float = 0.0,
):
    """The Table V multiplicity sweep as a declarative spec.

    ``shards`` is only added to the spec when set (see
    :func:`figure6_spec`), keeping default job keys and goldens stable.
    """
    from repro.runner import SweepSpec

    fixed = {
        "n_nodes": n_nodes,
        "load": load,
        "packets_per_node": packets_per_node,
        "until": until,
    }
    if shards is not None:
        fixed["shards"] = shards
        fixed["shard_latency_ns"] = shard_latency_ns
    return SweepSpec(
        kind="table5",
        axes={"multiplicity": tuple(multiplicities)},
        fixed=fixed,
        root_seed=seed,
    )


def reshape_table5(sweep) -> List[dict]:
    """Table V rows in multiplicity order."""
    return sweep.results()


def table5(
    n_nodes: int = 256,
    multiplicities: Iterable[int] = (1, 2, 3, 4, 5),
    load: float = C.HEAVY_INPUT_LOAD,
    packets_per_node: int = 30,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
    jobs: Optional[int] = None,
    cache_dir=None,
    use_cache: bool = True,
    progress=None,
) -> List[dict]:
    """Table V: gates / switch latency / drop rate per multiplicity.

    Drop rates come from the detailed simulator under the transpose
    pattern at the given load, matching the Table V methodology.
    """
    from repro.runner import run_sweep

    sweep = run_sweep(
        table5_spec(n_nodes, multiplicities, load, packets_per_node,
                    seed, until),
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        progress=progress,
    )
    return reshape_table5(sweep)


ZOO_NETWORKS = ("baldur", "rotor")
"""The architecture-zoo comparison: the paper's network against the
RotorNet-style rotor fabric built from registry components."""


def zoo_spec(
    n_nodes: int = 64,
    loads: Iterable[float] = (0.1, 0.4, 0.7),
    pattern: str = "random_permutation",
    packets_per_node: int = 20,
    networks: Iterable[str] = ZOO_NETWORKS,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
    shards: Optional[int] = None,
    shard_latency_ns: float = 0.0,
):
    """Baldur vs. the rotor architecture as a declarative sweep spec.

    Reuses the ``open_loop`` job kind unchanged: cells resolve their
    network through :func:`build_network`, which goes through the
    :mod:`repro.zoo` registry, so any registered architecture name is a
    valid axis value.  ``shards`` is only added to the spec when set
    (see :func:`figure6_spec`), keeping default job keys stable.
    """
    from repro.runner import SweepSpec

    fixed = {
        "n_nodes": n_nodes,
        "pattern": pattern,
        "packets_per_node": packets_per_node,
        "until": until,
    }
    if shards is not None:
        fixed["shards"] = shards
        fixed["shard_latency_ns"] = shard_latency_ns
    return SweepSpec(
        kind="open_loop",
        axes={
            "network": tuple(networks),
            "load": tuple(loads),
        },
        fixed=fixed,
        root_seed=seed,
    )


def reshape_zoo(sweep) -> Dict[str, Dict[float, StatsSummary]]:
    """``result[network][load] -> StatsSummary``."""
    return sweep.index("network", "load", value=StatsSummary.from_dict)


def zoo_compare(
    n_nodes: int = 64,
    loads: Iterable[float] = (0.1, 0.4, 0.7),
    pattern: str = "random_permutation",
    packets_per_node: int = 20,
    networks: Iterable[str] = ZOO_NETWORKS,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
    jobs: Optional[int] = None,
    cache_dir=None,
    use_cache: bool = True,
    progress=None,
) -> Dict[str, Dict[float, StatsSummary]]:
    """Run the zoo comparison sweep.

    Returns ``result[network][load] -> StatsSummary``.
    """
    from repro.runner import run_sweep

    sweep = run_sweep(
        zoo_spec(n_nodes, loads, pattern, packets_per_node,
                 networks, seed, until),
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        progress=progress,
    )
    return reshape_zoo(sweep)


def figure9_spec(scale: int = 2**20, cases: Optional[Iterable[str]] = None):
    """The Fig. 9 switch-power sensitivity sweep as a declarative spec."""
    from repro.power.sensitivity import SENSITIVITY_CASES
    from repro.runner import SweepSpec

    return SweepSpec(
        kind="sensitivity",
        axes={"case": tuple(cases if cases is not None else SENSITIVITY_CASES)},
        fixed={"scale": scale},
    )
