"""High-level experiment drivers that regenerate the paper's evaluation.

Each function reproduces one table or figure at a configurable scale.  The
paper's configuration is 1,024 nodes with 10,000 packets per node; pure-
Python packet simulation at that volume takes hours, so the defaults here
are scaled down (the latency/drop *shape* is stable well below the paper's
packet budget -- the benches print both the configuration used and the
paper's reference values).  Set ``n_nodes=1024, packets_per_node=10_000``
to run the full-paper configuration.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro import constants as C
from repro.core.baldur_network import BaldurNetwork
from repro.electrical import (
    DragonflyNetwork,
    FatTreeNetwork,
    IdealNetwork,
    MultiButterflyNetwork,
)
from repro.errors import ConfigurationError
from repro.netsim.stats import LatencyStats
from repro.traffic import (
    HPC_WORKLOADS,
    bisection,
    group_permutation,
    hotspot,
    inject_open_loop,
    ping_pong1_pairs,
    ping_pong2_pairs,
    random_permutation,
    replay_trace,
    run_ping_pong,
    transpose,
)

__all__ = [
    "build_network",
    "NETWORK_NAMES",
    "pattern_destinations",
    "run_open_loop",
    "figure6",
    "figure7",
    "table5",
]

NETWORK_NAMES = ("baldur", "multibutterfly", "dragonfly", "fattree", "ideal")
"""The five networks compared throughout Sec. V."""

DEFAULT_UNTIL_NS = 50_000_000.0
"""Simulation horizon: saturated networks report the latency of whatever
they managed to deliver by this time, as in any fixed-horizon replay."""


def build_network(name: str, n_nodes: int, seed: int = 0):
    """Construct one of the Sec. V networks by name (Table VI configs)."""
    if name == "baldur":
        return BaldurNetwork(
            n_nodes, multiplicity=C.BALDUR_MULTIPLICITY, seed=seed
        )
    if name == "multibutterfly":
        return MultiButterflyNetwork(
            n_nodes, multiplicity=C.BALDUR_MULTIPLICITY, seed=seed
        )
    if name == "dragonfly":
        return DragonflyNetwork(n_nodes, seed=seed)
    if name == "fattree":
        return FatTreeNetwork(n_nodes, seed=seed)
    if name == "ideal":
        return IdealNetwork(n_nodes)
    raise ConfigurationError(f"unknown network {name!r}")


def pattern_destinations(pattern: str, n_nodes: int, seed: int = 0) -> Dict[int, int]:
    """Destination map for an open-loop pattern name."""
    if pattern == "random_permutation":
        return random_permutation(n_nodes, seed)
    if pattern == "transpose":
        return transpose(n_nodes)
    if pattern == "bisection":
        return bisection(n_nodes, seed)
    if pattern == "group_permutation":
        return group_permutation(n_nodes, seed)
    if pattern == "hotspot":
        return hotspot(n_nodes)
    raise ConfigurationError(f"unknown open-loop pattern {pattern!r}")


def run_open_loop(
    network_name: str,
    n_nodes: int,
    pattern: str,
    load: float,
    packets_per_node: int,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
) -> LatencyStats:
    """One open-loop experiment cell (one point of Fig. 6)."""
    net = build_network(network_name, n_nodes, seed)
    destinations = pattern_destinations(pattern, n_nodes, seed)
    inject_open_loop(net, destinations, load, packets_per_node, seed=seed)
    return net.run(until=until)


def figure6(
    n_nodes: int = 128,
    loads: Iterable[float] = (0.1, 0.4, 0.7, 0.9),
    patterns: Iterable[str] = (
        "random_permutation",
        "transpose",
        "bisection",
        "group_permutation",
    ),
    packets_per_node: int = 20,
    networks: Iterable[str] = NETWORK_NAMES,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
) -> Dict[str, Dict[str, Dict[float, LatencyStats]]]:
    """Fig. 6: average/tail latency vs. input load, per pattern x network.

    Returns ``result[pattern][network][load] -> LatencyStats``.
    """
    result: Dict[str, Dict[str, Dict[float, LatencyStats]]] = {}
    for pattern in patterns:
        result[pattern] = {}
        for network in networks:
            result[pattern][network] = {}
            for load in loads:
                result[pattern][network][load] = run_open_loop(
                    network, n_nodes, pattern, load,
                    packets_per_node, seed, until,
                )
    return result


def figure7(
    n_nodes: int = 128,
    packets_per_node: int = 20,
    ping_pong_rounds: int = 10,
    networks: Iterable[str] = NETWORK_NAMES,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
    hpc_kwargs: Optional[Dict[str, dict]] = None,
) -> Dict[str, Dict[str, LatencyStats]]:
    """Fig. 7: hotspot, ping_pong1/2, and the four HPC workloads.

    Returns ``result[workload][network] -> LatencyStats``.  Normalize
    against the 'ideal' column to obtain the paper's normalized plots.
    """
    result: Dict[str, Dict[str, LatencyStats]] = {}

    result["hotspot"] = {
        network: run_open_loop(
            network, n_nodes, "hotspot", C.HEAVY_INPUT_LOAD,
            max(2, packets_per_node // 4), seed, until,
        )
        for network in networks
    }

    for name, pairs_fn in (
        ("ping_pong1", ping_pong1_pairs),
        ("ping_pong2", ping_pong2_pairs),
    ):
        result[name] = {}
        for network in networks:
            net = build_network(network, n_nodes, seed)
            pairs = pairs_fn(n_nodes, seed)
            result[name][network] = run_ping_pong(
                net, pairs, rounds=ping_pong_rounds, until=until
            )

    hpc_kwargs = hpc_kwargs or {}
    for workload, trace_fn in HPC_WORKLOADS.items():
        kwargs = hpc_kwargs.get(workload, {})
        trace = trace_fn(n_nodes, seed=seed, **kwargs)
        result[workload] = {}
        for network in networks:
            net = build_network(network, n_nodes, seed)
            result[workload][network] = replay_trace(net, trace, until=until)
    return result


def table5(
    n_nodes: int = 256,
    multiplicities: Iterable[int] = (1, 2, 3, 4, 5),
    load: float = C.HEAVY_INPUT_LOAD,
    packets_per_node: int = 30,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
) -> List[dict]:
    """Table V: gates / switch latency / drop rate per multiplicity.

    Drop rates come from the detailed simulator under the transpose
    pattern at the given load, matching the Table V methodology.
    """
    from repro.tl.switch_circuit import switch_model

    rows = []
    destinations = transpose(n_nodes)
    for m in multiplicities:
        model = switch_model(m)
        net = BaldurNetwork(n_nodes, multiplicity=m, seed=seed)
        inject_open_loop(net, destinations, load, packets_per_node, seed=seed)
        stats = net.run(until=until)
        rows.append(
            {
                "multiplicity": m,
                "gates_per_switch": model.gate_count,
                "switch_latency_ns": model.latency_ns,
                "drop_rate_pct": 100 * stats.drop_rate,
                "paper_drop_rate_pct": C.PAPER_DROP_RATE_PCT.get(m),
                "avg_latency_ns": stats.average_latency,
            }
        )
    return rows
