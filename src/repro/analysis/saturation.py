"""Saturation analysis (the Fig. 6 'saturate at higher input loads' claim).

A network is saturated at a given offered load when queueing (or drops and
retransmissions) inflate latency without bound.  We detect saturation with
the standard latency-inflation criterion: the lowest load whose average
latency exceeds ``threshold`` times the low-load latency.  The paper's
claim: both multi-butterfly networks (Baldur and eMB) saturate at higher
loads than dragonfly and fat-tree on the Sec. V-A patterns.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.analysis.experiments import run_open_loop
from repro.errors import ConfigurationError

__all__ = ["latency_curve", "saturation_load"]

DEFAULT_LOADS = (0.1, 0.3, 0.5, 0.7, 0.8, 0.9)


def latency_curve(
    network_name: str,
    n_nodes: int,
    pattern: str = "random_permutation",
    loads: Sequence[float] = DEFAULT_LOADS,
    packets_per_node: int = 20,
    seed: int = 0,
    until: float = 50_000_000.0,
) -> Dict[float, float]:
    """Average latency at each offered load."""
    if not loads:
        raise ConfigurationError("need at least one load point")
    return {
        load: run_open_loop(
            network_name, n_nodes, pattern, load,
            packets_per_node, seed, until,
        ).average_latency
        for load in loads
    }


def saturation_load(
    curve: Dict[float, float],
    threshold: float = 3.0,
) -> Optional[float]:
    """The lowest load whose latency exceeds ``threshold`` x the latency at
    the lowest measured load; None if the network never saturates in the
    measured range."""
    if threshold <= 1.0:
        raise ConfigurationError("threshold must exceed 1.0")
    loads = sorted(curve)
    base = curve[loads[0]]
    for load in loads:
        if curve[load] > threshold * base:
            return load
    return None


def saturation_comparison(
    n_nodes: int,
    pattern: str = "random_permutation",
    networks: Iterable[str] = (
        "baldur", "multibutterfly", "dragonfly", "fattree",
    ),
    loads: Sequence[float] = DEFAULT_LOADS,
    packets_per_node: int = 20,
    seed: int = 0,
) -> Dict[str, Optional[float]]:
    """Saturation load per network (None = not saturated in range)."""
    return {
        name: saturation_load(
            latency_curve(
                name, n_nodes, pattern, loads, packets_per_node, seed
            )
        )
        for name in networks
    }
