"""Resilience experiments: the five networks under injected failures.

The paper argues (Sec. IV-E/IV-F) that Baldur's drop-and-retransmit
discipline plus its m-way path multiplicity make the fabric robust to
switch failures: a diagnosed faulty switch can simply be masked out of
the multiplicity set and traffic routes around it.  These drivers
quantify that claim and extend the comparison to the electrical
baselines, using the unified fault-injection layer in
:mod:`repro.faults`.

Three entry points:

* :func:`run_with_failures` -- one network under ``k`` failed switches
  (permanent fail-stop or a :class:`~repro.faults.ChaosSchedule`),
  with the packet-conservation ledger attached to the returned row;
* :func:`resilience_sweep` -- the full grid of networks x failure
  counts (the ``repro-bench resilience`` table);
* :func:`degraded_mode_comparison` -- Baldur with one faulty switch,
  unmasked vs. masked (degraded mode), demonstrating that masking a
  diagnosed fault strictly reduces the drop rate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro import constants as C
from repro.analysis.experiments import (
    DEFAULT_UNTIL_NS,
    NETWORK_NAMES,
    build_network,
)
from repro.core.baldur_network import BaldurNetwork
from repro.faults import ChaosSchedule, FailStop, FaultInjector
from repro.sim.rand import stream
from repro.traffic import inject_open_loop, random_permutation

__all__ = [
    "run_with_failures",
    "resilience_spec",
    "resilience_sweep",
    "degraded_mode_comparison",
]


def _pick_failed(switch_ids: List[int], k: int, seed: int) -> List[int]:
    """Deterministically sample ``k`` distinct switch ids to fail."""
    if k <= 0 or not switch_ids:
        return []
    rng = stream(seed, "resilience-failed-switches")
    k = min(k, len(switch_ids))
    return sorted(rng.sample(list(switch_ids), k))


def run_with_failures(
    network_name: str,
    n_nodes: int,
    k: int,
    load: float = 0.3,
    packets_per_node: int = 20,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
    chaos: Optional[ChaosSchedule] = None,
) -> dict:
    """One open-loop run with ``k`` failed switches; returns a report row.

    Failed switches are sampled deterministically from the network's
    switch ids.  Without ``chaos`` each failure is a permanent fail-stop;
    with a :class:`~repro.faults.ChaosSchedule` each failed switch gets
    the schedule's alternating up/down fault windows instead.  The run is
    always audited -- the row carries the conservation ledger, and a leak
    would have raised :class:`~repro.errors.InvariantViolationError`.
    """
    net = build_network(network_name, n_nodes, seed)
    failed = _pick_failed(list(net.switch_ids()), k, seed)
    faults = (
        chaos.faults_for(failed)
        if chaos is not None
        else [FailStop(sid) for sid in failed]
    )
    injector = FaultInjector(faults, seed=seed)
    net.attach_faults(injector)

    destinations = random_permutation(n_nodes, seed)
    inject_open_loop(net, destinations, load, packets_per_node, seed=seed)
    stats = net.run(until=until)
    ledger = net.audit()

    fault_drops = sum(injector.drops_by_switch.values())
    return {
        "network": network_name,
        "k_failed": len(failed),
        "failed_switches": failed,
        "injected": stats.injected,
        "delivered": stats.delivered,
        "avg_latency_ns": stats.average_latency,
        "tail_latency_ns": stats.tail_latency,
        "drop_rate": stats.drop_rate,
        "given_up": stats.given_up,
        "fault_drops": fault_drops,
        "balance": ledger["balance"],
    }


def resilience_spec(
    n_nodes: int = 64,
    failure_counts: Iterable[int] = (0, 1, 2, 4),
    networks: Iterable[str] = NETWORK_NAMES,
    load: float = 0.3,
    packets_per_node: int = 20,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
    chaos: Optional[ChaosSchedule] = None,
):
    """The resilience grid as a declarative sweep spec.

    ``chaos`` is flattened to its constructor parameters so the spec (and
    the result-cache key derived from it) stays JSON-canonical.
    """
    from dataclasses import asdict

    from repro.runner import SweepSpec

    return SweepSpec(
        kind="resilience",
        axes={
            "network": tuple(networks),
            "k": tuple(failure_counts),
        },
        fixed={
            "n_nodes": n_nodes,
            "load": load,
            "packets_per_node": packets_per_node,
            "until": until,
            "chaos": asdict(chaos) if chaos is not None else None,
        },
        root_seed=seed,
    )


def resilience_sweep(
    n_nodes: int = 64,
    failure_counts: Iterable[int] = (0, 1, 2, 4),
    networks: Iterable[str] = NETWORK_NAMES,
    load: float = 0.3,
    packets_per_node: int = 20,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
    chaos: Optional[ChaosSchedule] = None,
    jobs: Optional[int] = None,
    cache_dir=None,
    use_cache: bool = True,
    progress=None,
) -> List[dict]:
    """The resilience grid: every network under every failure count.

    Returns one :func:`run_with_failures` row per (network, k) cell; the
    conservation invariant is checked on every cell.  ``jobs``/
    ``cache_dir`` parallelize and cache the grid via :mod:`repro.runner`.
    """
    from repro.runner import run_sweep

    sweep = run_sweep(
        resilience_spec(n_nodes, failure_counts, networks, load,
                        packets_per_node, seed, until, chaos),
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        progress=progress,
    )
    return sweep.results()


def degraded_mode_comparison(
    n_nodes: int = 64,
    multiplicity: int = C.BALDUR_MULTIPLICITY,
    load: float = 0.5,
    packets_per_node: int = 30,
    seed: int = 0,
    until: float = DEFAULT_UNTIL_NS,
) -> Dict[str, dict]:
    """Baldur with one faulty switch: unmasked vs. degraded mode.

    The faulty switch is drawn from a middle stage (entry/exit stages
    would disconnect hosts outright, which masking cannot help).  The
    ``masked`` run models post-diagnosis degraded mode: the faulty
    switch is excluded from every upstream multiplicity set, so traffic
    routes around it and only the remaining m-1 paths are used.
    """
    probe = BaldurNetwork(n_nodes, multiplicity=multiplicity, seed=seed)
    n_stages = probe.topology.n_stages
    per_stage = probe.topology.switches_per_stage
    rng = stream(seed, "degraded-mode-fault")
    stage = rng.randrange(1, max(2, n_stages - 1))
    switch = rng.randrange(per_stage)

    def run(masked: bool) -> dict:
        net = BaldurNetwork(n_nodes, multiplicity=multiplicity, seed=seed)
        net.inject_fault(stage, switch)
        if masked:
            net.mask_switch(stage, switch)
        destinations = random_permutation(n_nodes, seed)
        inject_open_loop(net, destinations, load, packets_per_node, seed=seed)
        stats = net.run(until=until)
        return {
            "drop_rate": stats.drop_rate,
            "drops": stats.drops,
            "avg_latency_ns": stats.average_latency,
            "tail_latency_ns": stats.tail_latency,
            "given_up": stats.given_up,
            "retransmissions": stats.retransmissions,
            "delivered": stats.delivered,
            "injected": stats.injected,
        }

    return {
        "fault": {"stage": stage, "switch": switch},
        "unmasked": run(masked=False),
        "masked": run(masked=True),
    }
