"""Performance benchmark harness (``repro-bench perf``).

The ROADMAP's north star is a system that "runs as fast as the hardware
allows"; this module is how that is *measured*.  It times the three layers
that dominate every figure reproduction:

* **kernel** -- raw :class:`~repro.sim.Environment` throughput: schedule
  ops/sec (heap pushes), dispatch events/sec (heap pops + callback calls),
  and process-style events/sec (generator resume overhead);
* **simulators** -- packets/sec for each of the five network simulators
  under one open-loop transpose cell;
* **fig6_baldur** -- wall time and packets/sec of the Baldur column of the
  Fig. 6 load sweep run through the real sweep engine (the acceptance
  workload for hot-path PRs).

``run_perf_suite`` returns a JSON-safe report (commit, host, wall times,
events/sec, packets/sec) that ``repro-bench perf`` writes to
``BENCH_perf.json``.  Wall-clock numbers are machine-dependent and *not*
deterministic -- the report is a trajectory artifact, never a golden.
``compare_reports`` diffs two reports metric-by-metric so CI (and humans)
can spot regressions; the committed ``BENCH_perf.json`` at the repo root
is the reference trajectory point for the machine that produced it.

Simulation *results* are covered elsewhere: ``tests/test_perf_identity.py``
pins the optimized fast paths byte-identical to the instrumented slow
paths, and ``tests/test_golden_figures.py`` pins them against committed
reference JSON.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from time import perf_counter
from typing import Dict, List, Optional, Tuple

__all__ = [
    "run_perf_suite",
    "bench_kernel",
    "bench_simulator",
    "bench_fig6_baldur",
    "bench_zoo_build",
    "bench_shard_scaling",
    "compare_reports",
    "format_report",
    "format_comparison",
    "REGRESSION_THRESHOLD",
]

REGRESSION_THRESHOLD = 0.10
"""Relative throughput loss beyond which ``compare_reports`` flags a
metric as a regression (CI warns but never fails on it)."""

_FULL = dict(
    kernel_events=200_000,
    sim_nodes=64,
    sim_packets=40,
    fig6_nodes=64,
    fig6_packets=20,
    fig6_loads=(0.3, 0.7, 0.9),
    fig6_patterns=("random_permutation", "transpose"),
    zoo_nodes=64,
    shard_nodes=256,
    shard_packets=10,
    shard_counts=(1, 2, 4),
    shard_repeats=5,
)
_QUICK = dict(
    kernel_events=50_000,
    sim_nodes=32,
    sim_packets=10,
    fig6_nodes=32,
    fig6_packets=8,
    fig6_loads=(0.7,),
    fig6_patterns=("transpose",),
    zoo_nodes=32,
    shard_nodes=64,
    shard_packets=5,
    shard_counts=(1, 2),
    shard_repeats=3,
)


def _git_commit() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


# -- kernel microbenchmarks ------------------------------------------------------


def bench_kernel(n_events: int = 200_000) -> Dict[str, float]:
    """Time the discrete-event kernel itself (no simulator logic).

    Returns schedule ops/sec (pure heap pushes), dispatch events/sec
    (drain of pre-scheduled no-op callbacks), and process events/sec
    (generator-style timeout chains).
    """
    from repro.sim import Environment

    def nop():
        pass

    # Schedule throughput: n_events pushes at distinct times.
    env = Environment()
    start = perf_counter()
    schedule = env.schedule
    for i in range(n_events):
        schedule(float(i), nop)
    schedule_s = perf_counter() - start

    # Dispatch throughput: drain them all.
    start = perf_counter()
    env.run()
    dispatch_s = perf_counter() - start

    # Process-style throughput: chained timeouts (generator resumes).
    n_proc_events = max(1, n_events // 10)

    def chain(env, hops):
        for _ in range(hops):
            yield env.timeout(1.0)

    env2 = Environment()
    env2.process(chain(env2, n_proc_events))
    start = perf_counter()
    env2.run()
    process_s = perf_counter() - start

    return {
        "n_events": n_events,
        "schedule_wall_s": schedule_s,
        "schedule_ops_per_s": n_events / schedule_s,
        "dispatch_wall_s": dispatch_s,
        "dispatch_events_per_s": n_events / dispatch_s,
        "process_wall_s": process_s,
        "process_events_per_s": n_proc_events / process_s,
    }


# -- simulator packet throughput -------------------------------------------------


def bench_simulator(
    name: str,
    n_nodes: int = 64,
    packets_per_node: int = 40,
    load: float = 0.7,
    seed: int = 0,
) -> Dict[str, float]:
    """Packets/sec for one simulator: an open-loop transpose cell.

    Wall time covers network construction, injection scheduling, and the
    full run (construction cost is part of every sweep cell, so it
    belongs in the measurement).
    """
    from repro.analysis.experiments import run_open_loop

    start = perf_counter()
    stats = run_open_loop(
        name, n_nodes, "transpose", load, packets_per_node, seed=seed
    )
    wall_s = perf_counter() - start
    return {
        "n_nodes": n_nodes,
        "packets_per_node": packets_per_node,
        "load": load,
        "injected": stats.injected,
        "delivered": stats.delivered,
        "wall_s": wall_s,
        "packets_per_s": stats.delivered / wall_s if wall_s > 0 else 0.0,
    }


def bench_fig6_baldur(
    n_nodes: int = 64,
    packets_per_node: int = 20,
    loads: Tuple[float, ...] = (0.3, 0.7, 0.9),
    patterns: Tuple[str, ...] = ("random_permutation", "transpose"),
    seed: int = 0,
) -> Dict[str, float]:
    """The acceptance workload: Baldur-only Fig. 6 sweep, serial, no cache.

    Runs through the real sweep engine (``repro.runner``) so the number
    reflects what figure regeneration actually costs end-to-end.
    """
    from repro.analysis.experiments import figure6_spec
    from repro.netsim.stats import StatsSummary
    from repro.runner import run_sweep

    spec = figure6_spec(
        n_nodes=n_nodes,
        loads=loads,
        patterns=patterns,
        packets_per_node=packets_per_node,
        networks=("baldur",),
        seed=seed,
    )
    start = perf_counter()
    sweep = run_sweep(spec, jobs=1, use_cache=False)
    wall_s = perf_counter() - start
    delivered = sum(
        StatsSummary.from_dict(o.result).delivered for o in sweep.outcomes
    )
    return {
        "n_nodes": n_nodes,
        "packets_per_node": packets_per_node,
        "cells": len(sweep.outcomes),
        "delivered": delivered,
        "wall_s": wall_s,
        "packets_per_s": delivered / wall_s if wall_s > 0 else 0.0,
    }


def bench_zoo_build(
    n_nodes: int = 64,
    networks: Tuple[str, ...] = ("baldur", "rotor"),
    seed: int = 0,
) -> Dict[str, Dict]:
    """Construction wall time per zoo architecture (the registry path).

    Every sweep cell rebuilds its network from scratch, so registry
    resolution + topology construction is a fixed cost of every cell;
    this isolates it from the run itself.
    """
    from repro.zoo import build_network

    out: Dict[str, Dict] = {}
    for name in networks:
        start = perf_counter()
        build_network(name, n_nodes, seed=seed)
        wall_s = perf_counter() - start
        out[name] = {
            "n_nodes": n_nodes,
            "wall_s": wall_s,
            "builds_per_s": 1.0 / wall_s if wall_s > 0 else 0.0,
        }
    return out


def bench_shard_scaling(
    n_nodes: int = 256,
    packets_per_node: int = 10,
    load: float = 0.7,
    shard_counts: Tuple[int, ...] = (1, 2, 4),
    shard_latency_ns: float = 100.0,
    repeats: int = 5,
    seed: int = 0,
) -> Dict:
    """Wall-time scaling of the sharded engine on a Fig. 6-scale Baldur cell.

    Repeats are interleaved round-robin across the shard counts so
    machine drift hits every configuration equally; the row reports the
    median.  ``speedup`` is ``median_wall(shards=1) / median_wall(N)``
    -- a real multi-core speedup requires at least N physical cores, so
    the report records ``cores`` (on fewer cores the sharded runs time-
    slice one CPU and the ratio mostly measures engine overhead).  The
    sharded cells add ``shard_latency_ns`` of inter-cabinet fiber on cut
    links (shards=1 runs the plain kernel and ignores it), so delivered
    counts may differ slightly across rows; only wall times compare.
    """
    import os
    from statistics import median

    from repro.core.baldur_network import BaldurNetwork
    from repro.traffic import inject_open_loop, transpose

    walls: Dict[int, List[float]] = {s: [] for s in shard_counts}
    delivered: Dict[int, int] = {}
    for _ in range(repeats):
        for shards in shard_counts:
            net = BaldurNetwork(n_nodes, seed=seed)
            inject_open_loop(
                net, transpose(n_nodes), load, packets_per_node, seed=seed
            )
            start = perf_counter()
            stats = net.run(
                shards=shards, shard_latency_ns=shard_latency_ns
            )
            walls[shards].append(perf_counter() - start)
            delivered[shards] = stats.delivered
    base = median(walls[shard_counts[0]])
    rows = []
    for shards in shard_counts:
        wall = median(walls[shards])
        rows.append({
            "shards": shards,
            "wall_s": wall,
            "delivered": delivered[shards],
            "packets_per_s":
                delivered[shards] / wall if wall > 0 else 0.0,
            "speedup": base / wall if wall > 0 else 0.0,
        })
    return {
        "n_nodes": n_nodes,
        "packets_per_node": packets_per_node,
        "load": load,
        "shard_latency_ns": shard_latency_ns,
        "repeats": repeats,
        "cores": os.cpu_count(),
        "note": (
            "speedup = median wall(shards=1) / wall(shards=N); "
            "a multi-core speedup requires >= N physical cores"
        ),
        "rows": rows,
    }


# -- the suite -------------------------------------------------------------------


def run_perf_suite(
    quick: bool = False,
    networks: Tuple[str, ...] = (
        "baldur", "multibutterfly", "dragonfly", "fattree", "ideal",
        "rotor",
    ),
    seed: int = 0,
    progress=None,
) -> Dict:
    """Run every perf benchmark and return the JSON-safe report.

    ``quick=True`` shrinks every workload (CI-sized, <1 min); throughput
    numbers from quick and full runs are *not* comparable to each other
    (``compare_reports`` refuses to diff across the flag).  ``progress``
    is an optional ``fn(str)`` called before each section.
    """
    cfg = _QUICK if quick else _FULL

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    say("kernel microbenchmarks")
    kernel = bench_kernel(cfg["kernel_events"])

    sims: Dict[str, Dict] = {}
    for name in networks:
        say(f"simulator {name}")
        sims[name] = bench_simulator(
            name, n_nodes=cfg["sim_nodes"],
            packets_per_node=cfg["sim_packets"], seed=seed,
        )

    say("fig6 baldur sweep")
    fig6 = bench_fig6_baldur(
        n_nodes=cfg["fig6_nodes"],
        packets_per_node=cfg["fig6_packets"],
        loads=cfg["fig6_loads"],
        patterns=cfg["fig6_patterns"],
        seed=seed,
    )

    say("zoo build")
    zoo_build = bench_zoo_build(n_nodes=cfg["zoo_nodes"], seed=seed)

    say("shard scaling")
    shard = bench_shard_scaling(
        n_nodes=cfg["shard_nodes"],
        packets_per_node=cfg["shard_packets"],
        shard_counts=cfg["shard_counts"],
        repeats=cfg["shard_repeats"],
        seed=seed,
    )

    return {
        "schema": 1,
        "quick": quick,
        "commit": _git_commit(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "seed": seed,
        "kernel": kernel,
        "simulators": sims,
        "fig6_baldur": fig6,
        "zoo_build": zoo_build,
        "shard_scaling": shard,
    }


# -- reporting and comparison ----------------------------------------------------


def _throughput_metrics(report: Dict) -> Dict[str, float]:
    """Flatten a report to its comparable throughput metrics (higher=better)."""
    metrics = {
        "kernel.schedule_ops_per_s":
            report["kernel"]["schedule_ops_per_s"],
        "kernel.dispatch_events_per_s":
            report["kernel"]["dispatch_events_per_s"],
        "kernel.process_events_per_s":
            report["kernel"]["process_events_per_s"],
        "fig6_baldur.packets_per_s":
            report["fig6_baldur"]["packets_per_s"],
    }
    for name, row in report.get("simulators", {}).items():
        metrics[f"simulators.{name}.packets_per_s"] = row["packets_per_s"]
    for name, row in report.get("zoo_build", {}).items():
        metrics[f"zoo_build.{name}.builds_per_s"] = row["builds_per_s"]
    for row in report.get("shard_scaling", {}).get("rows", []):
        metrics[f"shard_scaling.shards{row['shards']}.packets_per_s"] = \
            row["packets_per_s"]
    return metrics


def _workload_config(report: Dict) -> Dict[str, object]:
    """Flatten the workload-size fields that make two reports comparable."""
    cfg: Dict[str, object] = {"quick": bool(report.get("quick"))}
    kernel = report.get("kernel") or {}
    if "n_events" in kernel:
        cfg["kernel.n_events"] = kernel["n_events"]
    for name, row in (report.get("simulators") or {}).items():
        for field in ("n_nodes", "packets_per_node", "load"):
            if field in row:
                cfg[f"simulators.{name}.{field}"] = row[field]
    for section in ("fig6_baldur", "shard_scaling"):
        row = report.get(section) or {}
        for field in ("n_nodes", "packets_per_node", "cells", "repeats"):
            if field in row:
                cfg[f"{section}.{field}"] = row[field]
    for name, row in (report.get("zoo_build") or {}).items():
        if "n_nodes" in row:
            cfg[f"zoo_build.{name}.n_nodes"] = row["n_nodes"]
    return cfg


def compare_reports(current: Dict, baseline: Dict) -> List[Dict]:
    """Metric-by-metric speedup of ``current`` over ``baseline``.

    Returns rows ``{metric, baseline, current, speedup, regression}``
    where ``speedup`` is current/baseline (>1 = faster) and ``regression``
    flags a loss beyond :data:`REGRESSION_THRESHOLD`.  Raises
    ``ValueError`` when the reports measured different workloads --
    ``--quick`` against full, or any shared size field (node counts,
    packet budgets, event counts) that differs -- naming exactly which
    fields diverged, so a skipped comparison is diagnosable from the
    message alone.
    """
    cur_cfg = _workload_config(current)
    base_cfg = _workload_config(baseline)
    diverged = sorted(
        key for key in (set(cur_cfg) & set(base_cfg))
        if cur_cfg[key] != base_cfg[key]
    )
    if diverged:
        detail = ", ".join(
            f"{key}: {base_cfg[key]!r} (baseline) != {cur_cfg[key]!r} "
            f"(current)" for key in diverged
        )
        raise ValueError(
            "reports measured different workloads, so throughput ratios "
            f"would be meaningless -- diverging fields: {detail}"
        )
    cur = _throughput_metrics(current)
    base = _throughput_metrics(baseline)
    rows = []
    for metric in sorted(set(cur) & set(base)):
        b, c = base[metric], cur[metric]
        speedup = c / b if b > 0 else float("nan")
        rows.append({
            "metric": metric,
            "baseline": b,
            "current": c,
            "speedup": speedup,
            "regression": speedup < 1.0 - REGRESSION_THRESHOLD,
        })
    return rows


def format_report(report: Dict) -> str:
    """Human-readable summary of one perf report."""
    k = report["kernel"]
    lines = [
        f"perf report (commit {report.get('commit') or '?'}, "
        f"python {report['python']}, "
        f"{'quick' if report.get('quick') else 'full'})",
        f"  kernel: schedule {k['schedule_ops_per_s']:,.0f} ops/s, "
        f"dispatch {k['dispatch_events_per_s']:,.0f} ev/s, "
        f"process {k['process_events_per_s']:,.0f} ev/s",
    ]
    for name, row in report.get("simulators", {}).items():
        lines.append(
            f"  {name:<16} {row['packets_per_s']:>12,.0f} pkts/s "
            f"({row['delivered']} delivered in {row['wall_s']:.3f}s)"
        )
    f6 = report["fig6_baldur"]
    lines.append(
        f"  fig6 baldur sweep: {f6['packets_per_s']:,.0f} pkts/s over "
        f"{f6['cells']} cells ({f6['wall_s']:.3f}s)"
    )
    for name, row in report.get("zoo_build", {}).items():
        lines.append(
            f"  zoo build {name:<10} {row['wall_s'] * 1e3:>8.1f} ms "
            f"({row['n_nodes']} nodes)"
        )
    shard = report.get("shard_scaling")
    if shard:
        lines.append(
            f"  shard scaling ({shard['n_nodes']} nodes, "
            f"{shard['cores']} core(s)):"
        )
        for row in shard["rows"]:
            lines.append(
                f"    shards={row['shards']}: {row['wall_s']:.3f}s "
                f"median, {row['speedup']:.2f}x vs shards=1"
            )
    return "\n".join(lines)


def format_comparison(rows: List[Dict]) -> str:
    """Human-readable delta table from :func:`compare_reports`."""
    lines = [
        f"{'metric':<36} {'baseline':>14} {'current':>14} {'speedup':>8}"
    ]
    for row in rows:
        flag = "  << REGRESSION" if row["regression"] else ""
        lines.append(
            f"{row['metric']:<36} {row['baseline']:>14,.0f} "
            f"{row['current']:>14,.0f} {row['speedup']:>7.2f}x{flag}"
        )
    return "\n".join(lines)


def write_report(report: Dict, path: str) -> None:
    """Write a perf report as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True, allow_nan=False)
        fh.write("\n")
