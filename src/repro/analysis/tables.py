"""Paper-style table formatting for bench output."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "format_latency_grid", "normalize_to"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render rows as a fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if cell != 0 and abs(cell) < 1e-3:
            return f"{cell:.2e}"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_latency_grid(
    results: Dict[str, Dict[float, object]],
    metric: str = "average_latency",
    title: str = "",
) -> str:
    """Render {network: {load: LatencyStats}} as a loads x networks table."""
    networks = list(results)
    loads = sorted({load for r in results.values() for load in r})
    headers = ["load", *networks]
    rows: List[List] = []
    for load in loads:
        row: List = [load]
        for network in networks:
            stats = results[network].get(load)
            row.append(getattr(stats, metric) if stats else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title)


def normalize_to(
    values: Dict[str, float], reference: str
) -> Dict[str, float]:
    """Divide every entry by the reference entry (Fig. 7 normalization)."""
    if reference not in values:
        raise KeyError(f"reference {reference!r} missing")
    ref = values[reference]
    if ref <= 0:
        raise ValueError("reference value must be positive")
    return {name: value / ref for name, value in values.items()}
