"""Dependency-free ASCII plotting for latency/power curves.

Renders the Fig. 6/8-style series as terminal line charts so the CLI and
examples can show curve *shapes* (saturation knees, scaling slopes)
without matplotlib.
"""

from __future__ import annotations

import math
from typing import Dict

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Dict[str, Dict[float, float]],
    width: int = 60,
    height: int = 16,
    logy: bool = False,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x -> y) series as an ASCII chart.

    Each series gets a marker; a legend is appended.  ``logy`` plots
    log10(y), which is how the paper presents the latency figures.
    """
    if not series:
        raise ValueError("nothing to plot")
    points = [
        (x, y)
        for curve in series.values()
        for x, y in curve.items()
        if y == y  # drop NaN
    ]
    if not points:
        raise ValueError("all points are NaN")

    def transform(y: float) -> float:
        if not logy:
            return y
        if y <= 0:
            raise ValueError("logy requires positive values")
        return math.log10(y)

    xs = [x for x, _ in points]
    ys = [transform(y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (_name, curve) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in sorted(curve.items()):
            if y != y:
                continue
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((transform(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    axis_label = f" {ylabel}" if ylabel else ""
    lines.append(f"{_fmt(y_hi, logy)}{axis_label}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append(f"{_fmt(y_lo, logy)} " + "-" * width)
    footer = f"x: {x_lo:g} .. {x_hi:g}"
    if xlabel:
        footer += f" ({xlabel})"
    lines.append(footer)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def _fmt(value: float, logy: bool) -> str:
    shown = 10**value if logy else value
    return f"{shown:,.4g}"
