"""Experiment drivers and table formatting for the evaluation section."""

from repro.analysis.experiments import (
    NETWORK_NAMES,
    build_network,
    figure6,
    figure7,
    pattern_destinations,
    run_open_loop,
    table5,
)
from repro.analysis.resilience import (
    degraded_mode_comparison,
    resilience_sweep,
    run_with_failures,
)
from repro.analysis.tables import format_latency_grid, format_table, normalize_to

__all__ = [
    "NETWORK_NAMES",
    "build_network",
    "figure6",
    "figure7",
    "pattern_destinations",
    "run_open_loop",
    "table5",
    "degraded_mode_comparison",
    "resilience_sweep",
    "run_with_failures",
    "format_latency_grid",
    "format_table",
    "normalize_to",
]
