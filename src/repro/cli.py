"""Command-line interface: regenerate any paper experiment from a shell.

Usage::

    python -m repro.cli table4
    python -m repro.cli table5 --nodes 256 --packets 30
    python -m repro.cli fig6 --nodes 128 --loads 0.3 0.7 0.9
    python -m repro.cli fig7 --nodes 128
    python -m repro.cli fig8
    python -m repro.cli fig9
    python -m repro.cli fig10
    python -m repro.cli drop-model --nodes 1024
    python -m repro.cli packaging
    python -m repro.cli awgr
    python -m repro.cli diagnose --nodes 64 --stage 2 --switch 13
    python -m repro.cli resilience --nodes 64 --packets 20
    python -m repro.cli trace --network baldur --nodes 64 --load 0.9
    python -m repro.cli zoo --list
    python -m repro.cli zoo --nodes 64 --networks baldur rotor

Sweep-backed commands (``table5``, ``fig6``, ``fig7``, ``fig9``,
``resilience``, ``zoo``) additionally accept:

* ``--jobs N``       -- run grid cells on N worker processes (default
  ``$REPRO_JOBS`` or 1); results are bit-identical to ``--jobs 1``;
* ``--cache-dir D``  -- reuse completed cells from the on-disk result
  cache under D (a warm rerun executes zero simulations);
* ``--no-cache``     -- ignore any cache and recompute everything;
* ``--out F``        -- also write the canonical results JSON to F;
* ``--progress``     -- stream per-job timing lines to stderr;
* ``--timeout S``    -- cancel any single cell still running after S
  seconds (reported as ``timeout``, other cells unaffected);
* ``--deadline S``   -- sweep-level wall-clock budget;
* ``--retries N``    -- retry failing cells up to N times (deterministic
  exponential backoff) before quarantining them;
* ``--resume [F]``   -- checkpoint completions to journal F (default
  ``repro-<command>.journal.jsonl``) and skip jobs already recorded
  there, so an interrupted campaign continues byte-identically;
* ``--shards N``     -- run each cell on the sharded multi-core engine
  with N worker kernels (open-loop kinds only: ``table5``, ``fig6``,
  ``zoo``; see DESIGN.md section 14).  ``--shard-latency NS`` adds an
  inter-shard fiber delay on cut links to widen the lookahead window.

Sweep commands run in record mode: a failing cell is reported on stderr
instead of aborting the grid, and the exit code is the partial-failure
contract -- 0 every cell ok, 1 some cells failed, 2 no cell produced a
result.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import format_latency_grid, format_table

__all__ = ["main", "build_parser"]


def _progress_printer(event: dict) -> None:
    if "event" in event:
        # Structured engine event (serial fallback, retry, pool rebuild).
        detail = ", ".join(
            f"{k}={v}" for k, v in sorted(event.items()) if k != "event"
        )
        print(f"[engine] {event['event']}: {detail}", file=sys.stderr)
        return
    if event.get("status") not in (None, "ok"):
        status = event["status"]
    elif event["cached"]:
        status = "cached"
    else:
        status = f"{event['elapsed_s']:.2f}s"
    print(
        f"[{event['index'] + 1}/{event['total']}] {event['key']} ({status})",
        file=sys.stderr,
    )


def _sweep_kwargs(args) -> dict:
    """run_sweep keyword payload from the shared sweep CLI flags."""
    from repro.runner import FaultPolicy

    resume = args.resume
    if resume == "auto":
        resume = f"repro-{args.command}.journal.jsonl"
    return dict(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=_progress_printer if args.progress else None,
        # Record mode: one poisoned cell yields a partial table and exit
        # code 1, never a lost grid (see DESIGN.md section 12).
        policy=FaultPolicy(
            job_timeout_s=args.timeout,
            deadline_s=args.deadline,
            max_attempts=1 + args.retries,
            on_error="record",
        ),
        resume=resume,
    )


def _reject_shards(args, why: str) -> Optional[int]:
    """Exit code 2 when ``--shards`` is passed to an unsupported command."""
    if getattr(args, "shards", None) in (None, 1):
        return None
    print(
        f"error: --shards is not supported for '{args.command}': {why}",
        file=sys.stderr,
    )
    return 2


def _finish_sweep(args, sweep) -> int:
    """Write ``--out``, print the execution report, return the exit code.

    Exit-code contract: 0 = every cell produced a result, 1 = partial
    failure (some cells failed/timed out/quarantined), 2 = total failure
    (no cell produced a result).
    """
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(sweep.to_json())
    for outcome in sweep.failures():
        error = outcome.error or {}
        print(
            f"# FAILED {outcome.job.key}: {outcome.status} "
            f"({error.get('type')}: {error.get('message')}; "
            f"attempts={error.get('attempts')})",
            file=sys.stderr,
        )
    print(f"# sweep: {sweep.report.describe()}")
    if sweep.ok:
        return 0
    return 1 if any(outcome.ok for outcome in sweep.outcomes) else 2


def _cmd_table4(args) -> None:
    from repro.tl.device import characterize_gate

    chars = characterize_gate()
    rows = [
        ["area (um^2)", 25.0, chars.area_um2],
        ["rise/fall (ps)", 7.3, chars.rise_fall_time_ps],
        ["delay (ps)", 1.93, chars.delay_ps],
        ["power (mW)", 0.406, chars.power_mw],
        ["data rate (Gbps)", 60.0, chars.data_rate_gbps],
    ]
    print(format_table(["metric", "paper", "measured"], rows,
                       title="Table IV -- TL gate characteristics"))


def _cmd_table5(args) -> None:
    from repro.analysis.experiments import reshape_table5, table5_spec
    from repro.runner import run_sweep

    sweep = run_sweep(
        table5_spec(n_nodes=args.nodes, packets_per_node=args.packets,
                    seed=args.seed, shards=args.shards,
                    shard_latency_ns=args.shard_latency),
        **_sweep_kwargs(args),
    )
    rows = reshape_table5(sweep)
    print(format_table(
        ["m", "gates", "latency_ns", "drop_%", "paper_drop_%"],
        [
            [r["multiplicity"], r["gates_per_switch"],
             r["switch_latency_ns"], r["drop_rate_pct"],
             r["paper_drop_rate_pct"]]
            for r in rows
        ],
        title=f"Table V -- multiplicity sweep ({args.nodes} nodes)",
    ))
    return _finish_sweep(args, sweep)


def _cmd_fig6(args) -> None:
    from repro.analysis.experiments import figure6_spec, reshape_figure6
    from repro.analysis.plotting import ascii_plot
    from repro.runner import run_sweep

    sweep = run_sweep(
        figure6_spec(
            n_nodes=args.nodes,
            loads=tuple(args.loads),
            packets_per_node=args.packets,
            seed=args.seed,
            shards=args.shards,
            shard_latency_ns=args.shard_latency,
        ),
        **_sweep_kwargs(args),
    )
    results = reshape_figure6(sweep)
    for pattern, grid in results.items():
        print(format_latency_grid(
            grid, metric="average_latency",
            title=f"[{pattern}] average latency (ns)"))
        if len(args.loads) > 1:
            series = {
                network: {
                    load: stats.average_latency
                    for load, stats in per_load.items()
                }
                for network, per_load in grid.items()
            }
            print()
            print(ascii_plot(
                series, logy=True, xlabel="input load",
                ylabel="avg latency (ns)",
            ))
        print()
    return _finish_sweep(args, sweep)


def _cmd_fig7(args) -> None:
    from repro.analysis.experiments import (
        NETWORK_NAMES,
        figure7_ratios,
        figure7_spec,
        reshape_figure7,
    )
    from repro.runner import run_sweep

    status = _reject_shards(
        args, "Fig. 7 workloads are closed-loop (receive hooks drive "
        "the traffic)")
    if status is not None:
        return status
    sweep = run_sweep(
        figure7_spec(n_nodes=args.nodes, packets_per_node=args.packets,
                     seed=args.seed),
        **_sweep_kwargs(args),
    )
    results = reshape_figure7(sweep)
    # Cells without deliveries have no meaningful ratio; figure7_ratios
    # omits them (with a warning) and the table shows them as "-".
    ratios = figure7_ratios(results)
    nan = float("nan")
    rows = [
        [workload, *(
            ratios.get(workload, {}).get(name, nan)
            for name in NETWORK_NAMES
        )]
        for workload in results
    ]
    print(format_table(
        ["workload", *NETWORK_NAMES], rows,
        title=f"Fig. 7 -- avg latency normalized to Baldur "
        f"({args.nodes} nodes)",
    ))
    return _finish_sweep(args, sweep)


def _cmd_fig8(args) -> None:
    from repro.power.network_power import FIG8_SCALES, power_scaling_sweep

    sweep = power_scaling_sweep(list(FIG8_SCALES))
    networks = list(sweep)
    rows = [
        [f"{scale:,}", *(sweep[name][i].total for name in networks)]
        for i, scale in enumerate(FIG8_SCALES)
    ]
    print(format_table(["scale", *networks], rows,
                       title="Fig. 8 -- power per server node (W)"))


def _cmd_fig9(args) -> None:
    from repro.analysis.experiments import figure9_spec
    from repro.runner import run_sweep

    status = _reject_shards(
        args, "Fig. 9 cells are analytic power models, not simulations")
    if status is not None:
        return status
    sweep = run_sweep(figure9_spec(), **_sweep_kwargs(args))
    per_case = sweep.index("case")
    networks = ("dragonfly", "fattree", "multibutterfly")
    rows = [
        [case, *(ratios[n] for n in networks)]
        for case, ratios in per_case.items()
    ]
    print(format_table(["case", *networks], rows,
                       title="Fig. 9 -- Baldur advantage (1M scale)"))
    return _finish_sweep(args, sweep)


def _cmd_fig10(args) -> None:
    from repro.cost.model import baldur_cost

    rows = []
    for n in (1024, 4096, 16384, 65536, 262144, 1048576):
        cost = baldur_cost(n)
        rows.append([f"{n:,}", cost.interposers, cost.total])
    print(format_table(["scale", "interposer_$", "total_$"], rows,
                       title="Fig. 10 -- Baldur cost per node (USD)"))


def _cmd_drop_model(args) -> None:
    from repro.core.drop_model import one_shot_drop_rate

    rows = [
        [m, 100 * one_shot_drop_rate(args.nodes, m, seed=args.seed,
                                     trials=args.trials)]
        for m in (1, 2, 3, 4, 5)
    ]
    print(format_table(
        ["multiplicity", "drop_%"], rows,
        title=f"Sec. IV-E -- worst-case drop rate ({args.nodes} nodes)",
    ))


def _cmd_packaging(args) -> None:
    from repro.cost.packaging import plan_packaging

    rows = []
    for n in (1024, 16384, 262144, 1048576):
        plan = plan_packaging(n)
        rows.append([f"{n:,}", plan.multiplicity, plan.total_interposers,
                     plan.cabinets, plan.cabinets_power_limited])
    print(format_table(
        ["scale", "m", "interposers", "cabinets", "power-only"], rows,
        title="Sec. IV-G -- packaging",
    ))


def _cmd_awgr(args) -> None:
    from repro.power.awgr import awgr_comparison

    report = awgr_comparison()
    rows = [[k, v] for k, v in report.items()]
    print(format_table(["metric", "value"], rows,
                       title="Sec. VII -- Baldur vs AWGR at 32 nodes"))


def _cmd_diagnose(args) -> None:
    from repro.core.diagnosis import run_diagnosis

    report = run_diagnosis(
        args.nodes, (args.stage, args.switch),
        n_probes=args.probes, seed=args.seed,
    )
    rows = [[k, str(v)] for k, v in report.items()]
    print(format_table(["field", "value"], rows,
                       title="Sec. IV-F -- fault diagnosis"))


def _cmd_resilience(args) -> None:
    from repro.analysis.resilience import (
        degraded_mode_comparison,
        resilience_spec,
    )
    from repro.faults import ChaosSchedule
    from repro.runner import run_sweep

    status = _reject_shards(
        args, "resilience cells inject faults mid-run")
    if status is not None:
        return status
    chaos = None
    if args.mtbf > 0:
        chaos = ChaosSchedule(
            mtbf_ns=args.mtbf,
            mttr_ns=args.mttr,
            horizon_ns=args.until,
            seed=args.seed,
        )
    sweep = run_sweep(
        resilience_spec(
            n_nodes=args.nodes,
            failure_counts=tuple(args.failures),
            load=args.load,
            packets_per_node=args.packets,
            seed=args.seed,
            until=args.until,
            chaos=chaos,
        ),
        **_sweep_kwargs(args),
    )
    rows = sweep.results()
    print(format_table(
        ["network", "k", "delivered", "drop_%", "given_up",
         "fault_drops", "avg_ns", "balance"],
        [
            [r["network"], r["k_failed"],
             f"{r['delivered']}/{r['injected']}",
             100 * r["drop_rate"], r["given_up"], r["fault_drops"],
             r["avg_latency_ns"], r["balance"]]
            for r in rows
        ],
        title=f"Resilience sweep ({args.nodes} nodes, load {args.load}"
        + (", chaos" if chaos else ", permanent fail-stop") + ")",
    ))
    print()

    cmp = degraded_mode_comparison(
        n_nodes=args.nodes,
        load=args.load,
        packets_per_node=args.packets,
        seed=args.seed,
        until=args.until,
    )
    fault = cmp["fault"]
    print(format_table(
        ["mode", "drop_%", "retransmissions", "given_up", "avg_ns",
         "tail_ns"],
        [
            [mode, 100 * row["drop_rate"], row["retransmissions"],
             row["given_up"], row["avg_latency_ns"],
             row["tail_latency_ns"]]
            for mode, row in (("unmasked", cmp["unmasked"]),
                              ("masked", cmp["masked"]))
        ],
        title=f"Degraded mode -- faulty switch (stage {fault['stage']}, "
        f"switch {fault['switch']})",
    ))
    return _finish_sweep(args, sweep)


def _cmd_zoo(args) -> int:
    """Architecture-zoo comparison sweep (or ``--list`` the registry)."""
    from repro import zoo

    if args.list:
        print("# architectures (topology x routing x switch x scheduler)")
        for name in zoo.architectures():
            spec = zoo.architecture(name)
            print(f"  {spec.describe()}")
            if spec.summary:
                print(f"      {spec.summary}")
        print()
        for registry in (zoo.TOPOLOGIES, zoo.ROUTINGS, zoo.SWITCHES,
                         zoo.SCHEDULERS):
            print(f"# {registry.kind} components")
            for cname in registry.names():
                print(f"  {registry.get(cname).describe()}")
            print()
        return 0

    from repro.analysis.experiments import reshape_zoo, zoo_spec
    from repro.runner import run_sweep

    sweep = run_sweep(
        zoo_spec(
            n_nodes=args.nodes,
            loads=tuple(args.loads),
            pattern=args.pattern,
            packets_per_node=args.packets,
            networks=tuple(args.networks),
            seed=args.seed,
            shards=args.shards,
            shard_latency_ns=args.shard_latency,
        ),
        **_sweep_kwargs(args),
    )
    grid = reshape_zoo(sweep)
    print(format_latency_grid(
        grid, metric="average_latency",
        title=f"Architecture zoo -- average latency (ns), "
        f"{args.nodes} nodes, {args.pattern}"))
    print()
    print(format_latency_grid(
        grid, metric="tail_latency",
        title="Architecture zoo -- p99 latency (ns)"))
    return _finish_sweep(args, sweep)


def _cmd_perf(args) -> int:
    """Run the performance benchmark suite and write ``BENCH_perf.json``."""
    import os

    from repro.analysis.perf import (
        compare_reports,
        format_comparison,
        format_report,
        run_perf_suite,
        write_report,
    )

    def progress(msg: str) -> None:
        print(f"# bench: {msg}", file=sys.stderr)

    report = run_perf_suite(
        quick=args.quick,
        seed=args.seed,
        progress=progress if args.progress else None,
    )
    print(format_report(report))
    # Compare before writing so the delta rows are embedded in the
    # written report (BENCH_perf.json then records both the numbers and
    # what they were measured against).
    rows = None
    baseline_path = args.baseline
    if baseline_path and os.path.exists(baseline_path):
        import json as _json

        with open(baseline_path, encoding="utf-8") as fh:
            baseline = _json.load(fh)
        try:
            rows = compare_reports(report, baseline)
        except ValueError as exc:
            print(f"# baseline comparison skipped: {exc}")
        else:
            report["baseline_comparison"] = {
                "path": baseline_path,
                "commit": baseline.get("commit"),
                "rows": rows,
            }
    elif baseline_path:
        print(f"# baseline {baseline_path} not found; skipping comparison")
    if args.out:
        write_report(report, args.out)
        print(f"# wrote {args.out}")
    if rows is not None:
        print()
        print(f"# delta vs {baseline_path} "
              f"(commit {report['baseline_comparison']['commit'] or '?'})")
        print(format_comparison(rows))
        regressions = [r for r in rows if r["regression"]]
        if regressions:
            # Non-blocking by design: wall clocks are machine-dependent,
            # so CI warns instead of failing (see DESIGN.md section 10).
            print(f"# WARNING: {len(regressions)} metric(s) regressed "
                  f">10% vs the baseline")
    return 0


def _cmd_lint(args) -> int:
    """Run the repro.lint static analyzer (same engine as repro-lint)."""
    from repro.lint.cli import run_from_args

    return run_from_args(args)


def _cmd_trace(args) -> int:
    """Run one observed open-loop experiment and replay a flow's timeline."""
    from repro.analysis.experiments import (
        build_network,
        pattern_destinations,
    )
    from repro.obs import MetricsRegistry, Tracer, format_timeline
    from repro.traffic import inject_open_loop

    net = build_network(args.network, args.nodes, args.seed)
    tracer = Tracer(capacity=args.capacity)
    net.attach_tracer(tracer)
    metrics = None
    if args.metrics_out:
        metrics = MetricsRegistry(window_ns=args.window)
        net.attach_metrics(metrics)
    destinations = pattern_destinations(args.pattern, args.nodes, args.seed)
    inject_open_loop(net, destinations, args.load, args.packets,
                     seed=args.seed)
    net.run(until=args.until)

    pid = args.pid
    if pid is None:
        pid = tracer.pick_flow(src=args.src, dst=args.dst)
    flow = tracer.flow(pid) if pid is not None else []
    if not flow:
        print(f"# {tracer.describe()}")
        print(f"no trace events match the requested flow (pid={args.pid}, "
              f"src={args.src}, dst={args.dst})")
        return 1
    print(f"# {args.network}, {args.nodes} nodes, pattern "
          f"{args.pattern}, load {args.load} -- flow pid={pid}")
    for line in format_timeline(flow):
        print(line)
    print()
    print(f"# {tracer.describe()}")
    if metrics is not None:
        print(f"# {metrics.describe()}")
    if args.out:
        n = tracer.to_jsonl(args.out)
        print(f"# wrote {n} trace events to {args.out}")
    if args.metrics_out:
        n = metrics.to_jsonl(args.metrics_out)
        print(f"# wrote {n} metric samples to {args.metrics_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from the Baldur paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, fn, sweep=False, **extra):
        p = sub.add_parser(name)
        p.set_defaults(fn=fn)
        p.add_argument("--seed", type=int, default=0)
        if sweep:
            p.add_argument(
                "--jobs", type=int, default=None,
                help="worker processes (default: $REPRO_JOBS or 1)")
            p.add_argument(
                "--cache-dir", default=None,
                help="reuse completed cells from this result cache")
            p.add_argument(
                "--no-cache", action="store_true",
                help="ignore any cache and recompute every cell")
            p.add_argument(
                "--out", default=None,
                help="write canonical results JSON to this file")
            p.add_argument(
                "--progress", action="store_true",
                help="stream per-job timing lines to stderr")
            p.add_argument(
                "--timeout", type=float, default=None, metavar="S",
                help="cancel any cell still running after S seconds "
                     "(reported as 'timeout'; other cells unaffected)")
            p.add_argument(
                "--deadline", type=float, default=None, metavar="S",
                help="sweep-level wall-clock budget in seconds")
            p.add_argument(
                "--retries", type=int, default=0, metavar="N",
                help="retry a failing cell up to N times (deterministic "
                     "exponential backoff) before quarantining it")
            p.add_argument(
                "--resume", nargs="?", const="auto", default=None,
                metavar="F",
                help="checkpoint completions to journal F (default "
                     "repro-<command>.journal.jsonl) and skip cells "
                     "already recorded there")
            p.add_argument(
                "--shards", type=int, default=None, metavar="N",
                help="run each cell on the sharded engine with N worker "
                     "kernels (open-loop kinds only; DESIGN.md sec. 14)")
            p.add_argument(
                "--shard-latency", type=float, default=0.0, metavar="NS",
                dest="shard_latency",
                help="extra inter-shard fiber delay in ns on cut links "
                     "(widens the lookahead window; 0 keeps the physics)")
        for arg, kwargs in extra.items():
            p.add_argument(f"--{arg}", **kwargs)
        return p

    add("table4", _cmd_table4)
    add("table5", _cmd_table5, sweep=True,
        nodes=dict(type=int, default=128),
        packets=dict(type=int, default=20))
    fig6 = add("fig6", _cmd_fig6, sweep=True,
               nodes=dict(type=int, default=128),
               packets=dict(type=int, default=20))
    fig6.add_argument("--loads", type=float, nargs="+",
                      default=[0.3, 0.7, 0.9])
    add("fig7", _cmd_fig7, sweep=True,
        nodes=dict(type=int, default=128),
        packets=dict(type=int, default=20))
    zoo = add("zoo", _cmd_zoo, sweep=True,
              nodes=dict(type=int, default=64),
              packets=dict(type=int, default=20),
              pattern=dict(default="random_permutation"))
    zoo.add_argument("--list", action="store_true",
                     help="list registered architectures and components")
    zoo.add_argument("--loads", type=float, nargs="+",
                     default=[0.1, 0.4, 0.7])
    zoo.add_argument("--networks", nargs="+",
                     default=["baldur", "rotor"],
                     help="architecture names to compare (any registry "
                          "entry)")
    trace = add(
        "trace", _cmd_trace,
        network=dict(default="baldur",
                     help="baldur, multibutterfly, dragonfly, fattree, "
                          "or ideal"),
        nodes=dict(type=int, default=64),
        pattern=dict(default="transpose"),
        load=dict(type=float, default=0.7),
        packets=dict(type=int, default=20),
        until=dict(type=float, default=50_000_000.0),
        src=dict(type=int, default=None,
                 help="restrict the replayed flow to this source node"),
        dst=dict(type=int, default=None,
                 help="restrict the replayed flow to this destination"),
        pid=dict(type=int, default=None,
                 help="replay exactly this packet id"),
        out=dict(default=None,
                 help="write the full trace as JSONL to this file"),
        window=dict(type=float, default=1000.0,
                    help="metrics aggregation window in ns"),
        capacity=dict(type=int, default=65536,
                      help="trace ring-buffer capacity (events)"))
    trace.add_argument(
        "--metrics-out", default=None,
        help="also collect per-switch metrics and write them as JSONL")
    perf = add(
        "perf", _cmd_perf,
        out=dict(default="BENCH_perf.json",
                 help="write the machine-readable report here ('' = skip)"),
        baseline=dict(default=None,
                      help="compare against this committed BENCH_perf.json "
                           "(warn, never fail, on >10% regression)"))
    perf.add_argument("--quick", action="store_true",
                      help="CI-sized workloads (<1 min; numbers not "
                           "comparable to full runs)")
    perf.add_argument("--progress", action="store_true",
                      help="stream per-section progress to stderr")
    # lint shares its full option surface with the repro-lint console
    # script (see repro.lint.cli) so the two entry points cannot drift.
    from repro.lint.cli import add_lint_arguments

    lint = sub.add_parser(
        "lint",
        help="determinism & invariant static analysis (repro-lint)",
    )
    lint.set_defaults(fn=_cmd_lint)
    add_lint_arguments(lint)

    add("fig8", _cmd_fig8)
    add("fig9", _cmd_fig9, sweep=True)
    add("fig10", _cmd_fig10)
    add("drop-model", _cmd_drop_model,
        nodes=dict(type=int, default=1024),
        trials=dict(type=int, default=3))
    add("packaging", _cmd_packaging)
    add("awgr", _cmd_awgr)
    add("diagnose", _cmd_diagnose,
        nodes=dict(type=int, default=64),
        stage=dict(type=int, default=2),
        switch=dict(type=int, default=13),
        probes=dict(type=int, default=200))
    resilience = add(
        "resilience", _cmd_resilience, sweep=True,
        nodes=dict(type=int, default=64),
        packets=dict(type=int, default=20),
        load=dict(type=float, default=0.3),
        mtbf=dict(type=float, default=0.0,
                  help="chaos MTBF in ns (<= 0 = permanent fail-stop)"),
        mttr=dict(type=float, default=100_000.0),
        until=dict(type=float, default=50_000_000.0))
    resilience.add_argument("--failures", type=int, nargs="+",
                            default=[0, 1, 2, 4])
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    status = args.fn(args)
    return 0 if status is None else int(status)


if __name__ == "__main__":
    sys.exit(main())
