"""repro.zoo -- the plug-and-play architecture registry.

A network architecture is a declarative quadruple
``topology x routing x switch x scheduler``; :func:`build_network`
resolves a name or config dict to a registered
:class:`~repro.zoo.registry.ArchitectureSpec` and instantiates a
simulator over the shared :class:`~repro.netsim.network.NetworkSimulator`
substrate.  Importing this package registers the component vocabulary
and the six stock architectures (the five Sec. V networks plus the
RotorNet-style ``rotor``).
"""

from repro.zoo.architectures import register_architectures
from repro.zoo.registry import (
    ROUTINGS,
    SCHEDULERS,
    SWITCHES,
    TOPOLOGIES,
    ArchitectureSpec,
    Component,
    ComponentRegistry,
    architecture,
    architectures,
    build_network,
    register_architecture,
)
from repro.zoo.rotor import RotorNetwork

register_architectures()

__all__ = [
    "ArchitectureSpec",
    "Component",
    "ComponentRegistry",
    "RotorNetwork",
    "TOPOLOGIES",
    "ROUTINGS",
    "SWITCHES",
    "SCHEDULERS",
    "architecture",
    "architectures",
    "build_network",
    "register_architecture",
]
