"""The component vocabulary: every topology, routing policy, switch model,
and scheduler the registered architectures are assembled from.

Each entry is a one-line contract; the concrete behaviour lives in the
simulator the architecture's builder instantiates (see
:mod:`repro.zoo.architectures`).  Registration order is presentation
order in ``repro-bench zoo --list``.
"""

from __future__ import annotations

from repro.zoo.registry import ROUTINGS, SCHEDULERS, SWITCHES, TOPOLOGIES

__all__ = ["register_components"]

_registered = False


def register_components() -> None:
    """Populate the four component registries (idempotent)."""
    global _registered
    if _registered:
        return
    _registered = True

    # -- topologies ---------------------------------------------------------
    TOPOLOGIES.register(
        "multibutterfly",
        "M stacked butterflies of radix-4 2x2-pair switches "
        "(Baldur Sec. III / Table VI)",
    )
    TOPOLOGIES.register(
        "dragonfly",
        "fully-connected groups of routers with global links (Table VI)",
    )
    TOPOLOGIES.register(
        "fattree",
        "three-tier folded Clos of edge/aggregation/core switches "
        "(Table VI)",
    )
    TOPOLOGIES.register(
        "ideal",
        "every pair joined by a dedicated contention-free link "
        "(lower-bound reference)",
    )
    TOPOLOGIES.register(
        "rotor",
        "endpoints on rotor switches cycling round-robin matchings "
        "(RotorNet-style rotation schedule)",
    )

    # -- routing policies ---------------------------------------------------
    ROUTINGS.register(
        "destination_tag_random",
        "destination-tag bit steering; random choice among the "
        "butterfly copies at injection",
    )
    ROUTINGS.register(
        "destination_tag_least_loaded",
        "destination-tag bit steering; copies tried in least-loaded "
        "order with misroute-and-retry on blocking",
    )
    ROUTINGS.register(
        "ugal_adaptive",
        "UGAL: per-packet choice of minimal vs Valiant global path by "
        "queue depth",
    )
    ROUTINGS.register(
        "updown_adaptive",
        "fat-tree up*/down* with adaptive upward port choice",
    )
    ROUTINGS.register(
        "direct",
        "single dedicated hop; no path choice exists",
    )
    ROUTINGS.register(
        "rotation_schedule",
        "no per-packet decisions: source VOQs drain when the rotation "
        "connects src to dst",
    )

    # -- switch models ------------------------------------------------------
    SWITCHES.register(
        "tl_optical_bufferless",
        "bufferless all-optical 2x2 pair; tunable-laser selection, "
        "contention drops to the retry path",
    )
    SWITCHES.register(
        "electrical_buffered",
        "store-and-forward electrical crossbar with finite VC buffers "
        "and credit flow control",
    )
    SWITCHES.register(
        "ideal_sink",
        "zero-contention pass-through; serialization and wire delay "
        "only",
    )
    SWITCHES.register(
        "rotor_crossbar",
        "schedulerless optical crossbar applying a fixed matching per "
        "slot; dark during reconfiguration",
    )

    # -- schedulers ---------------------------------------------------------
    SCHEDULERS.register(
        "event_driven",
        "per-packet event scheduling on the shared (time, seq) kernel; "
        "switches act when packets arrive",
    )
    SCHEDULERS.register(
        "matching_cycle",
        "slotted time: slot_ns connected + reconfig_ns dark, matchings "
        "advance in lockstep each slot",
    )
