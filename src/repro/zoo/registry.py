"""The architecture registry: network = topology × routing × switch × scheduler.

Every network in the zoo is a declarative quadruple of named components
(OpenOptics-style): a *topology* (how endpoints and switches are wired),
a *routing policy* (how a packet picks its path), a *switch model* (what
a switch does to a traversing packet), and a *scheduler* (how switching
decisions are sequenced in time).  Components are tiny descriptors
registered by name; an :class:`ArchitectureSpec` binds four of them to a
builder that instantiates a concrete
:class:`~repro.netsim.network.NetworkSimulator` over the shared
substrate.

The registry is the single construction path for simulators:
:func:`build_network` accepts an architecture name (``"baldur"``), a
declarative config (``{"architecture": "rotor", "n_rotors": 8}``), or a
raw component quadruple, and returns a ready simulator.
``repro.analysis.experiments.build_network`` delegates here, so every
experiment, sweep, and golden exercises registry-built networks.

Determinism contract: a builder must be a pure function of
``(n_nodes, seed, **params)`` — identical arguments must yield a
simulator whose run produces byte-identical :class:`StatsSummary` JSON.
The goldens pin this for every registered architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.netsim.network import NetworkSimulator

__all__ = [
    "Component",
    "ComponentRegistry",
    "ArchitectureSpec",
    "TOPOLOGIES",
    "ROUTINGS",
    "SWITCHES",
    "SCHEDULERS",
    "register_architecture",
    "architecture",
    "architectures",
    "build_network",
]


@dataclass(frozen=True)
class Component:
    """One named building block of an architecture.

    ``kind`` is the registry it belongs to (``topology`` / ``routing`` /
    ``switch`` / ``scheduler``); ``summary`` is the one-line contract the
    component implements.  Components are descriptors, not factories:
    the architecture's builder decides how its four components combine
    (a Benes-over-tunable-lasers topology composes very differently from
    a rotor rotation schedule), so behaviour lives in the builder and
    the component records *what* was chosen, queryably and by name.
    """

    name: str
    kind: str
    summary: str

    def describe(self) -> str:
        """Human-readable one-liner."""
        return f"{self.kind}:{self.name} -- {self.summary}"


class ComponentRegistry:
    """Insertion-ordered name -> :class:`Component` table for one kind."""

    __slots__ = ("kind", "_components")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._components: Dict[str, Component] = {}

    def register(self, name: str, summary: str) -> Component:
        """Add a component; names are unique within a kind."""
        if name in self._components:
            raise ConfigurationError(
                f"{self.kind} component {name!r} is already registered"
            )
        component = Component(name=name, kind=self.kind, summary=summary)
        self._components[name] = component
        return component

    def get(self, name: str) -> Component:
        """Look up a component, with the known names in the error."""
        try:
            return self._components[name]
        except KeyError:
            known = ", ".join(sorted(self._components))
            raise ConfigurationError(
                f"unknown {self.kind} component {name!r} (known: {known})"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._components)

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __len__(self) -> int:
        return len(self._components)


TOPOLOGIES = ComponentRegistry("topology")
ROUTINGS = ComponentRegistry("routing")
SWITCHES = ComponentRegistry("switch")
SCHEDULERS = ComponentRegistry("scheduler")

_KIND_REGISTRIES = {
    "topology": TOPOLOGIES,
    "routing": ROUTINGS,
    "switch": SWITCHES,
    "scheduler": SCHEDULERS,
}


@dataclass(frozen=True)
class ArchitectureSpec:
    """A named network architecture: four components plus a builder.

    ``builder(n_nodes, seed, **params)`` returns a ready
    :class:`~repro.netsim.network.NetworkSimulator`; ``params`` defaults
    are the spec's ``defaults`` overridden by the caller's config.  The
    builder must be deterministic in its arguments (see the module
    docstring) -- the goldens and the registry↔legacy identity suite
    enforce this.
    """

    name: str
    topology: Component
    routing: Component
    switch: Component
    scheduler: Component
    builder: Callable[..., NetworkSimulator]
    summary: str = ""
    defaults: Dict[str, Any] = field(default_factory=dict)

    def components(self) -> Tuple[Component, Component, Component, Component]:
        """The (topology, routing, switch, scheduler) quadruple."""
        return (self.topology, self.routing, self.switch, self.scheduler)

    def build(self, n_nodes: int, seed: int = 0, **params: Any) -> NetworkSimulator:
        """Instantiate the architecture (defaults merged under ``params``)."""
        merged = dict(self.defaults)
        merged.update(params)
        return self.builder(n_nodes, seed, **merged)

    def describe(self) -> str:
        """Human-readable spec summary."""
        quad = " x ".join(c.name for c in self.components())
        return f"{self.name}: {quad}"


_ARCHITECTURES: Dict[str, ArchitectureSpec] = {}


def register_architecture(
    name: str,
    topology: str,
    routing: str,
    switch: str,
    scheduler: str,
    builder: Callable[..., NetworkSimulator],
    summary: str = "",
    defaults: Optional[Dict[str, Any]] = None,
) -> ArchitectureSpec:
    """Register an architecture by its component names.

    All four components must already be registered in their kind's
    registry -- a spec can only be assembled from declared vocabulary,
    which is what keeps ``repro-bench zoo --list`` exhaustive.
    """
    if name in _ARCHITECTURES:
        raise ConfigurationError(
            f"architecture {name!r} is already registered"
        )
    spec = ArchitectureSpec(
        name=name,
        topology=TOPOLOGIES.get(topology),
        routing=ROUTINGS.get(routing),
        switch=SWITCHES.get(switch),
        scheduler=SCHEDULERS.get(scheduler),
        builder=builder,
        summary=summary,
        defaults=dict(defaults or {}),
    )
    _ARCHITECTURES[name] = spec
    return spec


def architecture(name: str) -> ArchitectureSpec:
    """Look up an architecture spec by name."""
    try:
        return _ARCHITECTURES[name]
    except KeyError:
        known = ", ".join(sorted(_ARCHITECTURES))
        raise ConfigurationError(
            f"unknown architecture {name!r} (known: {known})"
        ) from None


def architectures() -> Tuple[str, ...]:
    """Registered architecture names, in registration order."""
    return tuple(_ARCHITECTURES)


def _spec_from_components(config: Dict[str, Any]) -> ArchitectureSpec:
    """Resolve a 4-component config to the unique matching architecture."""
    quad = tuple(
        _KIND_REGISTRIES[kind].get(str(config[kind])).name
        for kind in ("topology", "routing", "switch", "scheduler")
    )
    for spec in _ARCHITECTURES.values():
        if tuple(c.name for c in spec.components()) == quad:
            return spec
    raise ConfigurationError(
        f"no registered architecture matches components {quad!r}; "
        "register one with repro.zoo.register_architecture"
    )


def build_network(
    config: Any, n_nodes: int, seed: int = 0, **overrides: Any
) -> NetworkSimulator:
    """Build a simulator from an architecture name or declarative config.

    ``config`` may be:

    * an architecture name: ``build_network("baldur", 64)``;
    * a config dict naming an architecture, with parameter overrides:
      ``build_network({"architecture": "rotor", "n_rotors": 8}, 64)``;
    * a config dict naming all four components, resolved to the unique
      registered architecture with that quadruple:
      ``build_network({"topology": "dragonfly", "routing":
      "ugal_adaptive", "switch": "electrical_buffered", "scheduler":
      "event_driven"}, 64)``.

    Keyword ``overrides`` (and non-component keys of a config dict) are
    passed to the architecture's builder on top of its defaults.
    """
    params: Dict[str, Any] = {}
    if isinstance(config, str):
        spec = architecture(config)
    elif isinstance(config, dict):
        cfg = dict(config)
        if "architecture" in cfg:
            spec = architecture(str(cfg.pop("architecture")))
            for kind in _KIND_REGISTRIES:
                cfg.pop(kind, None)
        elif all(kind in cfg for kind in _KIND_REGISTRIES):
            spec = _spec_from_components(cfg)
            for kind in _KIND_REGISTRIES:
                cfg.pop(kind)
        else:
            raise ConfigurationError(
                "config dict must name an 'architecture' or all four of "
                "topology/routing/switch/scheduler"
            )
        params.update(cfg)
    else:
        raise ConfigurationError(
            f"config must be an architecture name or a dict, "
            f"got {type(config).__name__}"
        )
    params.update(overrides)
    return spec.build(n_nodes, seed=seed, **params)
