"""The registered architectures: the five Sec. V networks plus rotor.

The five legacy entries re-express the hand-wired simulators as registry
quadruples.  Their builders construct the *same classes with the same
arguments* as ``repro.analysis.experiments.build_network`` historically
did, so registry-built networks are byte-identical to the hand-wired
path -- pinned by the fig6/fig7 goldens, ``test_determinism.py``, and
the registry↔legacy identity suite in ``tests/test_zoo.py``.

The ``rotor`` entry is the first architecture assembled *from* zoo
components rather than ported into the zoo: a
:class:`~repro.topology.rotor.RotorTopology` rotation schedule driving
:class:`~repro.zoo.rotor.RotorNetwork`'s matching-cycle scheduler.
"""

from __future__ import annotations

from typing import Any

from repro import constants as C
from repro.core.baldur_network import BaldurNetwork
from repro.electrical import (
    DragonflyNetwork,
    FatTreeNetwork,
    IdealNetwork,
    MultiButterflyNetwork,
)
from repro.netsim.network import NetworkSimulator
from repro.zoo.components import register_components
from repro.zoo.registry import register_architecture
from repro.zoo.rotor import RotorNetwork

__all__ = ["register_architectures"]

_registered = False


def _build_baldur(n_nodes: int, seed: int, **params: Any) -> NetworkSimulator:
    return BaldurNetwork(
        n_nodes,
        multiplicity=params.pop("multiplicity", C.BALDUR_MULTIPLICITY),
        seed=seed,
        **params,
    )


def _build_multibutterfly(
    n_nodes: int, seed: int, **params: Any
) -> NetworkSimulator:
    return MultiButterflyNetwork(
        n_nodes,
        multiplicity=params.pop("multiplicity", C.BALDUR_MULTIPLICITY),
        seed=seed,
        **params,
    )


def _build_dragonfly(n_nodes: int, seed: int, **params: Any) -> NetworkSimulator:
    return DragonflyNetwork(n_nodes, seed=seed, **params)


def _build_fattree(n_nodes: int, seed: int, **params: Any) -> NetworkSimulator:
    return FatTreeNetwork(n_nodes, seed=seed, **params)


def _build_ideal(n_nodes: int, seed: int, **params: Any) -> NetworkSimulator:
    # The ideal network is seed-free: there is nothing random to build.
    return IdealNetwork(n_nodes, **params)


def _build_rotor(n_nodes: int, seed: int, **params: Any) -> NetworkSimulator:
    # Fully deterministic -- the rotation is a fixed function of time, so
    # the seed only shapes the injected workload, never the network.
    return RotorNetwork(n_nodes, **params)


def register_architectures() -> None:
    """Populate the architecture registry (idempotent)."""
    global _registered
    if _registered:
        return
    _registered = True
    register_components()

    register_architecture(
        "baldur",
        topology="multibutterfly",
        routing="destination_tag_least_loaded",
        switch="tl_optical_bufferless",
        scheduler="event_driven",
        builder=_build_baldur,
        summary="the paper's all-optical multi-butterfly with "
        "tunable-laser switching and retry",
    )
    register_architecture(
        "multibutterfly",
        topology="multibutterfly",
        routing="destination_tag_random",
        switch="electrical_buffered",
        scheduler="event_driven",
        builder=_build_multibutterfly,
        summary="electrical buffered baseline on the same "
        "multi-butterfly wiring",
    )
    register_architecture(
        "dragonfly",
        topology="dragonfly",
        routing="ugal_adaptive",
        switch="electrical_buffered",
        scheduler="event_driven",
        builder=_build_dragonfly,
        summary="electrical dragonfly with UGAL adaptive routing "
        "(Table VI comparison point)",
    )
    register_architecture(
        "fattree",
        topology="fattree",
        routing="updown_adaptive",
        switch="electrical_buffered",
        scheduler="event_driven",
        builder=_build_fattree,
        summary="electrical three-tier fat-tree (Table VI comparison "
        "point)",
    )
    register_architecture(
        "ideal",
        topology="ideal",
        routing="direct",
        switch="ideal_sink",
        scheduler="event_driven",
        builder=_build_ideal,
        summary="contention-free lower bound: dedicated link per pair",
    )
    register_architecture(
        "rotor",
        topology="rotor",
        routing="rotation_schedule",
        switch="rotor_crossbar",
        scheduler="matching_cycle",
        builder=_build_rotor,
        summary="RotorNet-style rotor switches cycling round-robin "
        "matchings; schedulerless and bufferless in-network",
    )
