"""RotorNet-style packet simulator: rotor switches + matching-cycle scheduler.

The first genuinely new architecture built *from* the zoo's components
rather than ported into it: a :class:`~repro.topology.rotor.RotorTopology`
rotation schedule, direct (single-hop) rotation routing, bufferless
optical rotor crossbars, and a slotted matching-cycle scheduler over the
shared :class:`~repro.netsim.network.NetworkSimulator` substrate.

Operation per slot of length ``slot_ns`` (followed by a ``reconfig_ns``
dark window while the rotors step to their next matching):

* each rotor applies its current matching; source ``src`` may transmit
  to exactly the destinations its rotor uplinks are matched to;
* packets wait in per-destination virtual output queues (VOQs) at the
  source until the rotation connects their pair -- there are no
  in-network buffers and no drops, so latency is dominated by the wait
  for the right matching (at most one full cycle);
* a transmission must finish within the slot (no spillover across a
  reconfiguration), so per-slot link capacity is ``slot_ns`` of wire
  time per uplink.

Everything is deterministic: the rotation is a fixed function of time,
queues are FIFO, and no RNG is consumed anywhere (seeds only shape the
injected workload).  The simulator is event-driven -- slot-boundary wake
events are scheduled only while traffic is queued, so an idle network
schedules nothing and :meth:`~repro.netsim.network.NetworkSimulator.run`
terminates like any other simulator.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro import constants as C
from repro.errors import ConfigurationError
from repro.netsim.network import NetworkSimulator
from repro.netsim.packet import Packet
from repro.shard.runtime import MSG_DELIVER
from repro.topology.rotor import RotorTopology

if TYPE_CHECKING:
    from repro.shard.plan import ShardPlan

__all__ = ["RotorNetwork"]

DEFAULT_SLOT_NS = 1000.0
"""Connected time per matching.  Real rotor switches hold matchings for
tens of microseconds; the model scales the slot down to the nanosecond
horizons of the Sec. V experiments while keeping the duty cycle."""

DEFAULT_RECONFIG_NS = 100.0
"""Dark window while the rotors step to the next matching (~90% duty
cycle, the RotorNet design point)."""


class RotorNetwork(NetworkSimulator):
    """Packet simulator for a RotorNet-style all-optical rotor fabric."""

    __slots__ = (
        "topology",
        "n_rotors",
        "slot_ns",
        "reconfig_ns",
        "link_delay_ns",
        "link_rate_gbps",
        "switch_latency_ns",
        "_period",
        "_hop_ns",
        "_voq",
        "_uplink_free_at",
        "_queued",
        "_wake_at",
    )

    def __init__(
        self,
        n_nodes: int,
        n_rotors: int = 4,
        slot_ns: float = DEFAULT_SLOT_NS,
        reconfig_ns: float = DEFAULT_RECONFIG_NS,
        link_delay_ns: float = C.BALDUR_LINK_DELAY_NS,
        link_rate_gbps: float = C.LINK_DATA_RATE_GBPS,
        switch_latency_ns: float = 0.0,
        topology: Optional[RotorTopology] = None,
    ) -> None:
        """Build a rotor network.

        ``topology`` accepts any rotation schedule exposing the
        :class:`~repro.topology.rotor.RotorTopology` interface
        (``n_rotors``, ``slots_per_cycle``, ``matching``); by default the
        round-robin construction is used.  ``slot_ns`` must fit at least
        one packet's serialization time at ``link_rate_gbps``.
        """
        super().__init__(n_nodes)
        if slot_ns <= 0 or reconfig_ns < 0:
            raise ConfigurationError(
                "slot_ns must be > 0 and reconfig_ns >= 0"
            )
        self.topology = topology or RotorTopology(n_nodes, n_rotors)
        if self.topology.n_nodes != n_nodes:
            raise ConfigurationError(
                "topology node count does not match the network"
            )
        self.n_rotors = self.topology.n_rotors
        self.slot_ns = slot_ns
        self.reconfig_ns = reconfig_ns
        self.link_delay_ns = link_delay_ns
        self.link_rate_gbps = link_rate_gbps
        self.switch_latency_ns = switch_latency_ns
        self._period = slot_ns + reconfig_ns
        # Source link + rotor passthrough + destination link; the last
        # byte lands one serialization time after the head (cut-through).
        self._hop_ns = 2 * link_delay_ns + switch_latency_ns
        # Per-source virtual output queues: _voq[src][dst] is the FIFO of
        # packets waiting for a matching to dst.
        self._voq: List[Dict[int, Deque[Packet]]] = [
            {} for _ in range(n_nodes)
        ]
        # Absolute time until which uplink (rotor * n_nodes + src) is
        # serializing; lazily clamped to the current slot start, so slot
        # turnover never needs to touch idle uplinks.
        self._uplink_free_at: List[float] = [0.0] * (
            self.n_rotors * n_nodes
        )
        self._queued = 0
        self._wake_at = -1.0

    # -- the matching-cycle clock -------------------------------------------

    def _slot_of(self, now: float) -> int:
        """The rotation slot containing ``now`` (float-robust floor)."""
        period = self._period
        slot = int(now / period)
        start = slot * period
        if now < start:
            slot -= 1
        elif now >= start + period:
            slot += 1
        return slot

    def _ensure_wake(self, now: float) -> None:
        """Arm a wake event at the next slot boundary, if none is armed."""
        next_start = (self._slot_of(now) + 1) * self._period
        if 0.0 <= self._wake_at <= next_start:
            return
        self.env.schedule_at(next_start, self._on_slot_wake)
        self._wake_at = next_start

    def _on_slot_wake(self) -> None:
        """Slot boundary: drain every VOQ the new matchings connect."""
        self._wake_at = -1.0
        if not self._queued:
            return
        now = self.env.now
        slot = self._slot_of(now)
        if now - slot * self._period < self.slot_ns:
            self._pump_all(slot)
        if self._queued:
            self._ensure_wake(now)

    def _pump_all(self, slot: int) -> None:
        matching = self.topology.matching
        voq = self._voq
        for rotor in range(self.n_rotors):
            dsts = matching(rotor, slot)
            for src in range(self.n_nodes):
                queues = voq[src]
                if not queues:
                    continue
                dst = dsts[src]
                if dst != src and dst in queues:
                    self._drain(rotor, src, dst, slot)

    def _drain(self, rotor: int, src: int, dst: int, slot: int) -> None:
        """Send VOQ[src][dst] packets over uplink (rotor, src) while the
        slot has wire time left."""
        queue = self._voq[src].get(dst)
        if not queue:
            return
        idx = rotor * self.n_nodes + src
        slot_start = slot * self._period
        slot_end = slot_start + self.slot_ns
        free = self._uplink_free_at[idx]
        if free < slot_start:
            free = slot_start
        now = self.env.now
        if free < now:
            free = now
        env = self.env
        rate = self.link_rate_gbps
        hop_ns = self._hop_ns
        tracer = self.tracer
        metrics = self.metrics
        # Sharded worker: the whole FIFO drains toward one destination, so
        # the ownership test hoists out of the loop.  The delivery delay
        # (tx + hop_ns > hop_ns) is bounded below by the plan lookahead.
        ctx = self._shard_ctx
        dest = -1 if ctx is None else ctx.host_shard[dst]
        cross = ctx is not None and dest != ctx.shard
        while queue:
            packet = queue[0]
            tx = packet.serialization_time_ns(rate)
            if free + tx > slot_end:
                break
            queue.popleft()
            self._queued -= 1
            packet.hops += 1
            if tracer is not None:
                tracer.record(
                    free, "stage_arrival", packet, switch=rotor, stage=slot
                )
            if metrics is not None:
                metrics.incr("rotor_tx", rotor, free)
            if cross:
                ctx.send(
                    dest,
                    (MSG_DELIVER, free + tx + hop_ns, packet.pid,
                     packet.src, packet.dst, packet.size_bytes,
                     packet.create_time, packet.is_ack, packet.acked_pid,
                     packet.hops),
                )
            else:
                env.schedule_at(free + tx + hop_ns, self._deliver, packet)
            free += tx
        self._uplink_free_at[idx] = free
        if not queue:
            del self._voq[src][dst]

    # -- injection and delivery ---------------------------------------------

    def _inject(self, packet: Packet) -> None:
        tx = packet.serialization_time_ns(self.link_rate_gbps)
        if tx > self.slot_ns:
            raise ConfigurationError(
                f"packet of {packet.size_bytes} B needs {tx} ns on the "
                f"wire but a matching slot is only {self.slot_ns} ns"
            )
        if self.tracer is not None:
            self.tracer.record(self.env.now, "inject", packet)
        src, dst = packet.src, packet.dst
        queues = self._voq[src]
        queue = queues.get(dst)
        if queue is None:
            queue = queues[dst] = deque()
        queue.append(packet)
        self._queued += 1
        now = self.env.now
        slot = self._slot_of(now)
        if now - slot * self._period < self.slot_ns:
            # Mid-slot arrival: if some rotor currently matches this pair
            # (the round-robin construction puts offset o on exactly one
            # rotor), the packet may go out in the remainder of the slot.
            offset = (dst - src) % self.n_nodes
            rotor = (offset - 1) % self.n_rotors
            position = (offset - 1) // self.n_rotors
            if (
                position < self.topology.slots_per_cycle
                and slot % self.topology.slots_per_cycle == position
            ):
                self._drain(rotor, src, dst, slot)
        if self._queued:
            self._ensure_wake(now)

    def _deliver(self, packet: Packet) -> None:
        packet.deliver_time = self.env.now
        self._on_delivered(packet, self.env.now)

    # -- sharded execution (repro.shard, DESIGN.md section 14) ----------------

    def shard_plan(
        self, n_shards: int, shard_latency_ns: float = 0.0
    ) -> "ShardPlan":
        """Host-cut partition.  Rotor switch state is a pure function of
        simulated time (no buffers, no RNG), so every worker replicates
        the rotation and only host state (VOQs, uplink serialization
        clocks) is partitioned; deliveries are scheduled end-to-end with
        at least ``2 * link_delay + switch_latency`` of delay, which is
        the lookahead.  ``shard_latency_ns`` does not apply."""
        from repro.shard.plan import host_plan

        return host_plan(
            self.n_nodes, n_shards, hop_delay_ns=self._hop_ns, kind="rotor"
        )

    def shard_recipe(self) -> Tuple[Any, Dict[str, Any]]:
        return (
            type(self),
            {
                "n_nodes": self.n_nodes,
                "n_rotors": self.n_rotors,
                "slot_ns": self.slot_ns,
                "reconfig_ns": self.reconfig_ns,
                "link_delay_ns": self.link_delay_ns,
                "link_rate_gbps": self.link_rate_gbps,
                "switch_latency_ns": self.switch_latency_ns,
                "topology": self.topology,
            },
        )

    def _shard_schedule_inbox(self, messages: Sequence[Any]) -> None:
        env = self.env
        for msg in messages:
            if msg[0] != MSG_DELIVER:  # pragma: no cover - protocol bug
                raise ConfigurationError(
                    f"unknown cross-shard message kind {msg[0]}"
                )
            (_kind, when, pid, src, dst, size_bytes,
             create_time, is_ack, acked_pid, hops) = msg
            packet = Packet(
                pid=pid,
                src=src,
                dst=dst,
                size_bytes=size_bytes,
                create_time=create_time,
                is_ack=is_ack,
                acked_pid=acked_pid,
            )
            packet.hops = hops
            env.schedule_at(when, self._deliver, packet)

    def _shard_export(self) -> Dict[str, Any]:
        payload = super()._shard_export()
        payload["queued"] = self._queued
        payload["uplink_free_at"] = self._uplink_free_at
        return payload

    def _shard_absorb(
        self,
        payloads: Sequence[Dict[str, Any]],
        plan: Any,
        until: Optional[float],
    ) -> None:
        super()._shard_absorb(payloads, plan, until)
        # Horizon leftovers: VOQ contents stay with the (discarded) worker
        # replicas -- the conservation ledger already counts them as
        # in-flight -- but the aggregate queue depth and the per-uplink
        # clocks (owner-only writes, so elementwise max) are merged for
        # reporting.
        self._queued = sum(p["queued"] for p in payloads)
        self._uplink_free_at = [
            max(p["uplink_free_at"][i] for p in payloads)
            for i in range(self.n_rotors * self.n_nodes)
        ]

    # -- reporting ------------------------------------------------------------

    def unloaded_latency_ns(
        self,
        src: int = 0,
        dst: int = 1,
        size_bytes: int = C.PACKET_SIZE_BYTES,
    ) -> float:
        """Analytic latency of a single packet submitted at ``t = 0``.

        Slot 0 starts at t = 0, so the packet waits whole periods until
        the first slot whose matchings connect (src, dst), transmits at
        that slot's start, and the last byte lands one hop plus one
        serialization later.  Unlike the stage-symmetric networks this
        *does* depend on the pair: the wait is the pair's position in the
        rotation.
        """
        wait_slots = self.topology.slots_until_matched(src, dst, 0)
        return (
            wait_slots * self._period
            + self._hop_ns
            + C.packet_serialization_ns(size_bytes, self.link_rate_gbps)
        )

    @property
    def queued_packets(self) -> int:
        """Packets currently waiting in source VOQs."""
        return self._queued

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return (
            f"rotor nodes={self.n_nodes} rotors={self.n_rotors} "
            f"slots_per_cycle={self.topology.slots_per_cycle} "
            f"slot={self.slot_ns}ns reconfig={self.reconfig_ns}ns"
        )
