"""Workload drivers: open-loop injection and closed-loop ping-pong.

Open loop (Sec. V-A, Eq. 1): each transmitter sends ``packets_per_node``
packets to its pattern destination with exponentially distributed
inter-packet gaps whose mean is ``packet_size / (input_load * link_rate)``,
so ``input_load`` is the fraction of time the transmitter is busy.

Closed loop: ping-pong workloads send the next packet only after receiving
one from the partner, which serializes the dependency chain and makes
per-packet latency the dominant performance factor (Sec. V-B).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro import constants as C
from repro.errors import ConfigurationError
from repro.netsim.network import NetworkSimulator
from repro.netsim.stats import LatencyStats
from repro.sim.rand import stream

__all__ = ["inject_open_loop", "run_ping_pong", "mean_interarrival_ns"]


def mean_interarrival_ns(
    input_load: float,
    packet_size_bytes: int = C.PACKET_SIZE_BYTES,
    link_rate_gbps: float = C.LINK_DATA_RATE_GBPS,
) -> float:
    """Eq. 1: mean time between packet generations at a transmitter."""
    if not 0 < input_load <= 1:
        raise ConfigurationError(f"input load must be in (0, 1], got {input_load}")
    tx_time = C.packet_serialization_ns(packet_size_bytes, link_rate_gbps)
    return tx_time / input_load


def inject_open_loop(
    network: NetworkSimulator,
    destinations: Dict[int, int],
    input_load: float,
    packets_per_node: int,
    seed: int = 0,
    packet_size_bytes: int = C.PACKET_SIZE_BYTES,
) -> None:
    """Schedule the full open-loop workload onto ``network``.

    Every transmitter in ``destinations`` independently draws exponential
    inter-arrival gaps (Sec. V-A).
    """
    if packets_per_node < 1:
        raise ConfigurationError("packets_per_node must be >= 1")
    mean_gap = mean_interarrival_ns(
        input_load, packet_size_bytes
    )
    # One batched submission: same per-source RNG streams and the same
    # (src-major, time-ascending-per-src) pid/event order as per-packet
    # submit() calls, but the kernel heapifies the whole workload in one
    # O(n) pass instead of n heap pushes (see Environment.schedule_batch).
    rate = 1.0 / mean_gap
    entries = []
    append = entries.append
    for src, dst in destinations.items():
        rng = stream(seed, f"open-loop-{src}")
        expovariate = rng.expovariate
        t = 0.0
        for _ in range(packets_per_node):
            t += expovariate(rate)
            append((src, dst, packet_size_bytes, t))
    network.submit_batch(entries)


def run_ping_pong(
    network: NetworkSimulator,
    pairs: Iterable[Tuple[int, int]],
    rounds: int,
    packet_size_bytes: int = C.PACKET_SIZE_BYTES,
    until: Optional[float] = None,
) -> LatencyStats:
    """Closed-loop ping-pong: each pair exchanges ``rounds`` round trips.

    Node A sends to B; on receipt B immediately replies; repeat.  Returns
    the network's stats after running.
    """
    if rounds < 1:
        raise ConfigurationError("rounds must be >= 1")
    pair_list = list(pairs)
    if not pair_list:
        raise ConfigurationError("ping-pong needs at least one pair")
    remaining = {}
    for a, b in pair_list:
        remaining[(a, b)] = rounds
        remaining[(b, a)] = rounds

    def hook(packet, time):
        key = (packet.dst, packet.src)
        left = remaining.get(key, 0)
        if left > 0:
            remaining[key] = left - 1
            network.submit(
                packet.dst, packet.src, size_bytes=packet_size_bytes, time=time
            )

    network.receive_hook = hook
    for a, b in pair_list:
        network.submit(a, b, size_bytes=packet_size_bytes, time=0.0)
    return network.run(until=until)
