"""Trace serialization: save and load workload traces as JSON.

Lets users capture the synthetic Design-Forward-style traces (or author
their own) and replay them later -- the equivalent of distributing DUMPI
trace files with the artifact.  The format is deliberately simple::

    {
      "workload": "AMG",
      "n_ranks": 64,
      "rounds": [
        [[src, dst, size_bytes], ...],   # round 0
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import ConfigurationError

__all__ = ["save_trace", "load_trace"]

Round = List[Tuple[int, int, int]]
Trace = List[Round]


def save_trace(
    trace: Trace,
    path: Union[str, Path],
    workload: str = "custom",
    n_ranks: Optional[int] = None,
) -> None:
    """Write a trace to ``path`` as JSON."""
    if not trace:
        raise ConfigurationError("refusing to save an empty trace")
    if n_ranks is None:
        n_ranks = 1 + max(
            max(src, dst) for messages in trace for src, dst, _ in messages
        )
    document = {
        "workload": workload,
        "n_ranks": n_ranks,
        "rounds": [
            [[src, dst, size] for src, dst, size in messages]
            for messages in trace
        ],
    }
    Path(path).write_text(json.dumps(document, allow_nan=False))


def load_trace(path: Union[str, Path]) -> Tuple[Trace, str, int]:
    """Read a trace; returns (trace, workload name, rank count).

    Validates structure and endpoint ranges so that replaying a corrupt
    file fails here rather than mid-simulation.
    """
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read trace file: {exc}") from exc
    for key in ("workload", "n_ranks", "rounds"):
        if key not in document:
            raise ConfigurationError(f"trace file missing {key!r}")
    n_ranks = document["n_ranks"]
    trace: Trace = []
    for index, messages in enumerate(document["rounds"]):
        round_messages: Round = []
        for entry in messages:
            if len(entry) != 3:
                raise ConfigurationError(
                    f"round {index}: message must be [src, dst, size]"
                )
            src, dst, size = entry
            if not (0 <= src < n_ranks and 0 <= dst < n_ranks):
                raise ConfigurationError(
                    f"round {index}: endpoints ({src}, {dst}) out of range"
                )
            if size <= 0:
                raise ConfigurationError(
                    f"round {index}: non-positive message size {size}"
                )
            round_messages.append((src, dst, size))
        trace.append(round_messages)
    if not trace:
        raise ConfigurationError("trace file has no rounds")
    return trace, document["workload"], n_ranks
