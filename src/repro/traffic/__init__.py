"""Traffic patterns, HPC workload traces, and workload drivers (Sec. V-A)."""

from repro.traffic.hpc import (
    HPC_WORKLOADS,
    amg_trace,
    crystal_router_trace,
    fillboundary_trace,
    multigrid_trace,
    replay_trace,
)
from repro.traffic.injection import (
    inject_open_loop,
    mean_interarrival_ns,
    run_ping_pong,
)
from repro.traffic.patterns import (
    SYNTHETIC_PATTERNS,
    bisection,
    group_permutation,
    hotspot,
    ping_pong1_pairs,
    ping_pong2_pairs,
    random_permutation,
    transpose,
)

__all__ = [
    "HPC_WORKLOADS",
    "amg_trace",
    "crystal_router_trace",
    "fillboundary_trace",
    "multigrid_trace",
    "replay_trace",
    "inject_open_loop",
    "mean_interarrival_ns",
    "run_ping_pong",
    "SYNTHETIC_PATTERNS",
    "bisection",
    "group_permutation",
    "hotspot",
    "ping_pong1_pairs",
    "ping_pong2_pairs",
    "random_permutation",
    "transpose",
]
