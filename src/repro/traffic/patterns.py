"""The seven synthetic traffic patterns of Sec. V-A.

Each pattern is a destination assignment: a dict ``{src: dst}`` (nodes with
no entry stay silent).  Group-aware patterns (group_permutation,
ping_pong2) are constructed against the dragonfly grouping of the same
node count and then applied verbatim to every network, exactly as the
paper does ('the same transmitter/receiver node pairs are applied to all
other networks').
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.sim.rand import stream
from repro.topology.dragonfly import DragonflyTopology

__all__ = [
    "random_permutation",
    "transpose",
    "bisection",
    "group_permutation",
    "hotspot",
    "ping_pong1_pairs",
    "ping_pong2_pairs",
    "SYNTHETIC_PATTERNS",
]


def _check_n(n: int, minimum: int = 2) -> None:
    if n < minimum:
        raise ConfigurationError(f"need at least {minimum} nodes, got {n}")


def random_permutation(n: int, seed: int = 0) -> Dict[int, int]:
    """Nodes paired for transmission by a fixed-point-free permutation."""
    _check_n(n)
    rng = stream(seed, "pattern-random-permutation")
    while True:
        perm = list(range(n))
        rng.shuffle(perm)
        if all(perm[i] != i for i in range(n)):
            return dict(enumerate(perm))


def transpose(n: int) -> Dict[int, int]:
    """Address-halves swap: a_{n-1}..a_{n/2} a_{n/2-1}..a_0 ->
    a_{n/2-1}..a_0 a_{n-1}..a_{n/2} (Sec. V-A).  Fixed points stay silent.
    """
    _check_n(n, 4)
    if n & (n - 1):
        raise ConfigurationError("transpose requires a power-of-two node count")
    bits = n.bit_length() - 1
    half = bits // 2
    result = {}
    for src in range(n):
        low = src & ((1 << half) - 1)
        high = src >> half
        dst = (low << (bits - half)) | high
        if dst != src:
            result[src] = dst
    return result


def bisection(n: int, seed: int = 0) -> Dict[int, int]:
    """Each half of the machine paired with the other half randomly."""
    _check_n(n, 4)
    if n % 2:
        raise ConfigurationError("bisection requires an even node count")
    rng = stream(seed, "pattern-bisection")
    half = n // 2
    partners = list(range(half, n))
    rng.shuffle(partners)
    result = {}
    for src in range(half):
        result[src] = partners[src]
        result[partners[src]] = src
    return result


def group_permutation(n: int, seed: int = 0) -> Dict[int, int]:
    """Dragonfly groups paired by a random permutation; each node sends to
    a random node of its partner group (Sec. V-A)."""
    _check_n(n, 4)
    topo = DragonflyTopology.for_nodes(n)
    rng = stream(seed, "pattern-group-permutation")
    per_group = topo.p * topo.a
    # Groups that actually contain active (< n) nodes.
    active_groups = [g for g in range(topo.groups) if g * per_group < n]
    partner = active_groups[:]
    while True:
        rng.shuffle(partner)
        if all(a != b for a, b in zip(active_groups, partner)):
            break
    group_of = dict(zip(active_groups, partner))
    result = {}
    for src in range(n):
        target_group = group_of[src // per_group]
        lo = target_group * per_group
        hi = min(lo + per_group, n)
        if hi <= lo:
            continue
        result[src] = rng.randrange(lo, hi)
    return result


def hotspot(n: int, target: int = 0) -> Dict[int, int]:
    """All nodes send to one destination (Sec. V-A)."""
    _check_n(n)
    if not 0 <= target < n:
        raise ConfigurationError(f"hotspot target {target} out of range")
    return {src: target for src in range(n) if src != target}


def ping_pong1_pairs(n: int, seed: int = 0) -> List[Tuple[int, int]]:
    """Random disjoint node pairs for the ping_pong1 workload."""
    _check_n(n, 2)
    rng = stream(seed, "pattern-ping-pong1")
    nodes = list(range(n))
    rng.shuffle(nodes)
    return [
        (nodes[i], nodes[i + 1]) for i in range(0, n - 1, 2)
    ]


def ping_pong2_pairs(n: int, seed: int = 0) -> List[Tuple[int, int]]:
    """Pairs drawn across one specific dragonfly group boundary: nodes of
    group A paired with nodes of group B (Sec. V-A).  This funnels all
    traffic through the few global channels between two groups, the
    adversarial case for dragonfly."""
    _check_n(n, 4)
    topo = DragonflyTopology.for_nodes(n)
    per_group = topo.p * topo.a
    if n < 2 * per_group:
        # Degenerate small networks: fall back to halves.
        per_group = n // 2
    group_a = range(0, per_group)
    group_b = range(per_group, 2 * per_group)
    return [(a, b) for a, b in zip(group_a, group_b) if b < n]


SYNTHETIC_PATTERNS = (
    "random_permutation",
    "transpose",
    "bisection",
    "group_permutation",
    "hotspot",
    "ping_pong1",
    "ping_pong2",
)
"""Names of the seven synthetic patterns of Sec. V-A."""
