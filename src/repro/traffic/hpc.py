"""Synthetic Design-Forward-style HPC workload traces (Sec. V-A).

The paper replays DUMPI traces of four DOE Design Forward mini-apps [56],
[57].  The traces themselves are not redistributable, so this module
generates synthetic traces that reproduce each mini-app's published
communication *structure* -- the property the paper's conclusions rest on
(e.g. FB's latency-bound boundary exchange is what makes dragonfly 23.5X
worse than Baldur).  Substitution is documented in DESIGN.md.

* **AMG** (algebraic multigrid solver): 3-D 27-point stencil halo
  exchange on a near-cubic process grid; medium messages.
* **CrystalRouter** (NekBone's crystal-router kernel): recursive
  hypercube-style data exchange -- log2(N) rounds, partner = rank XOR
  2^round; large messages.
* **MultiGrid**: V-cycle with level-dependent participation -- at level L
  only every 8^L-th rank is active, exchanging with 6 face neighbours at
  stride 2^L; message size shrinks with level.
* **FB** (FillBoundary from BoxLib): many rounds of small boundary-fill
  messages between fixed far-apart partners -- a latency-bound,
  serialization-heavy pattern that concentrates load on a few inter-group
  channels.

A trace is a list of rounds; each round is a list of (src, dst, size)
messages.  Rounds are bulk-synchronous: :func:`replay_trace` starts round
r+1 once every message of round r is delivered, so network latency
amplifies through the dependency chain as it does in a real MPI replay.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.netsim.network import NetworkSimulator
from repro.netsim.stats import LatencyStats

__all__ = [
    "amg_trace",
    "crystal_router_trace",
    "multigrid_trace",
    "fillboundary_trace",
    "HPC_WORKLOADS",
    "replay_trace",
]

Round = List[Tuple[int, int, int]]
Trace = List[Round]


def _grid_dims(n: int) -> Tuple[int, int, int]:
    """Near-cubic 3-D process grid with x*y*z >= caller's ranks."""
    side = round(n ** (1 / 3))
    best = None
    for x in range(max(1, side - 2), side + 3):
        for y in range(max(1, side - 2), side + 3):
            z = math.ceil(n / (x * y))
            if x * y * z >= n:
                waste = x * y * z - n
                if best is None or waste < best[0]:
                    best = (waste, (x, y, z))
    return best[1]


def _rank(x: int, y: int, z: int, dims: Tuple[int, int, int]) -> int:
    return (z * dims[1] + y) * dims[0] + x


def amg_trace(
    n: int, rounds: int = 2, message_bytes: int = 2048, seed: int = 0
) -> Trace:
    """AMG: 27-point halo exchange on a 3-D grid, ``rounds`` iterations."""
    if n < 8:
        raise ConfigurationError("AMG trace needs at least 8 ranks")
    dims = _grid_dims(n)
    trace: Trace = []
    for _ in range(rounds):
        messages: Round = []
        for z in range(dims[2]):
            for y in range(dims[1]):
                for x in range(dims[0]):
                    src = _rank(x, y, z, dims)
                    if src >= n:
                        continue
                    for dx, dy, dz in (
                        (1, 0, 0), (0, 1, 0), (0, 0, 1),
                        (1, 1, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1),
                    ):
                        nx = (x + dx) % dims[0]
                        ny = (y + dy) % dims[1]
                        nz = (z + dz) % dims[2]
                        dst = _rank(nx, ny, nz, dims)
                        if dst < n and dst != src:
                            messages.append((src, dst, message_bytes))
                            messages.append((dst, src, message_bytes))
        trace.append(messages)
    return trace


def crystal_router_trace(
    n: int, rounds: int = 1, message_bytes: int = 8192, seed: int = 0
) -> Trace:
    """CrystalRouter: log2(N) hypercube exchange rounds per iteration."""
    if n < 4 or n & (n - 1):
        raise ConfigurationError(
            "CrystalRouter trace requires a power-of-two rank count >= 4"
        )
    dims = n.bit_length() - 1
    trace: Trace = []
    for _ in range(rounds):
        for d in range(dims):
            messages: Round = []
            for src in range(n):
                dst = src ^ (1 << d)
                messages.append((src, dst, message_bytes))
            trace.append(messages)
    return trace


def multigrid_trace(
    n: int, cycles: int = 1, base_bytes: int = 4096, seed: int = 0
) -> Trace:
    """MultiGrid: a V-cycle of coarsening halo exchanges.

    At level L, every 8^L-th rank participates with 6 face neighbours at
    stride 2^L in each grid dimension; message sizes shrink 4X per level
    (surface scaling).  The cycle descends to the coarsest level and comes
    back up.
    """
    if n < 8:
        raise ConfigurationError("MultiGrid trace needs at least 8 ranks")
    dims = _grid_dims(n)
    max_level = max(1, min(int(math.log2(max(dims))), 4))
    down = list(range(max_level))
    levels = down + down[::-1][1:]  # V-cycle: fine -> coarse -> fine
    trace: Trace = []
    for _ in range(cycles):
        for level in levels:
            stride = 1 << level
            size = max(64, base_bytes >> (2 * level))
            messages: Round = []
            for z in range(0, dims[2], stride):
                for y in range(0, dims[1], stride):
                    for x in range(0, dims[0], stride):
                        src = _rank(x, y, z, dims)
                        if src >= n:
                            continue
                        for dx, dy, dz in (
                            (stride, 0, 0), (0, stride, 0), (0, 0, stride)
                        ):
                            nx = (x + dx) % dims[0]
                            ny = (y + dy) % dims[1]
                            nz = (z + dz) % dims[2]
                            dst = _rank(nx, ny, nz, dims)
                            if dst < n and dst != src:
                                messages.append((src, dst, size))
                                messages.append((dst, src, size))
            if messages:
                trace.append(messages)
    return trace


def fillboundary_trace(
    n: int, rounds: int = 6, message_bytes: int = 256, seed: int = 0
) -> Trace:
    """FB: many rounds of small boundary-fill messages to fixed far
    partners (rank + N/2), a latency-bound worst case for hierarchical
    networks (Sec. V-B: dragonfly/fat-tree are 23.5X/46.1X worse here)."""
    if n < 4 or n % 2:
        raise ConfigurationError("FB trace requires an even rank count >= 4")
    half = n // 2
    trace: Trace = []
    for _ in range(rounds):
        messages: Round = []
        for src in range(half):
            messages.append((src, src + half, message_bytes))
            messages.append((src + half, src, message_bytes))
        trace.append(messages)
    return trace


HPC_WORKLOADS = {
    "AMG": amg_trace,
    "CrystalRouter": crystal_router_trace,
    "MultiGrid": multigrid_trace,
    "FB": fillboundary_trace,
}
"""The four Design Forward mini-app trace generators (Sec. V-A)."""


def replay_trace(
    network: NetworkSimulator,
    trace: Trace,
    until: Optional[float] = None,
    max_message_bytes: int = 4 * 1024,
) -> LatencyStats:
    """Bulk-synchronous trace replay with packetization.

    Messages larger than ``max_message_bytes`` are split into packets of at
    most that size.  Round r+1 is released when all packets of round r have
    been delivered (the MPI-style dependency the paper's DUMPI replay
    captures).
    """
    if not trace:
        raise ConfigurationError("empty trace")
    state = {"round": 0, "outstanding": 0}

    def launch_round(time: float) -> None:
        index = state["round"]
        if index >= len(trace):
            return
        state["round"] = index + 1
        count = 0
        for src, dst, size in trace[index]:
            remaining = size
            while remaining > 0:
                chunk = min(remaining, max_message_bytes)
                network.submit(src, dst, size_bytes=chunk, time=time)
                remaining -= chunk
                count += 1
        state["outstanding"] = count
        if count == 0:
            launch_round(time)

    def hook(packet, time):
        state["outstanding"] -= 1
        if state["outstanding"] == 0:
            launch_round(time)

    network.receive_hook = hook
    launch_round(0.0)
    return network.run(until=until)
