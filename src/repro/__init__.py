"""repro: a full reproduction of *Baldur: A Power-Efficient and Scalable
Network Using All-Optical Switches* (HPCA 2020).

Layer map (bottom-up):

* :mod:`repro.sim` -- discrete-event kernel;
* :mod:`repro.tl` -- transistor-laser devices, gates, codec, and the
  gate-level 2x2 switch circuit;
* :mod:`repro.netsim` / :mod:`repro.topology` -- packet-level substrate
  and topology construction;
* :mod:`repro.core` -- the Baldur network (bufferless, drops, multiplicity,
  retransmission) and the worst-case drop model;
* :mod:`repro.electrical` -- dragonfly / fat-tree / electrical
  multi-butterfly / ideal baselines;
* :mod:`repro.traffic` -- synthetic patterns and HPC workload traces;
* :mod:`repro.power`, :mod:`repro.cost` -- power, cost, packaging models;
* :mod:`repro.analysis` -- drivers that regenerate every table and figure.

Quick start::

    from repro import BaldurNetwork, random_permutation, inject_open_loop
    net = BaldurNetwork(n_nodes=1024, multiplicity=4, seed=0)
    inject_open_loop(net, random_permutation(1024), input_load=0.7,
                     packets_per_node=100)
    stats = net.run()
    print(stats.summary())
"""

from repro.analysis import (
    build_network,
    degraded_mode_comparison,
    figure6,
    figure7,
    resilience_sweep,
    run_with_failures,
    table5,
)
from repro.core import (
    BaldurNetwork,
    multiplicity_for_scale,
    one_shot_drop_rate,
    required_multiplicity,
)
from repro.cost import baldur_cost, plan_packaging
from repro.electrical import (
    DragonflyNetwork,
    FatTreeNetwork,
    IdealNetwork,
    MultiButterflyNetwork,
)
from repro.errors import FaultInjectionError, InvariantViolationError
from repro.faults import (
    ChaosSchedule,
    DegradedLink,
    FailStop,
    FaultInjector,
    SlowGateDrift,
    audit_conservation,
)
from repro.power import (
    awgr_comparison,
    baldur_power,
    dragonfly_power,
    fattree_power,
    multibutterfly_power,
    power_scaling_sweep,
    sensitivity_ratios,
)
from repro.tl import (
    TLSwitchCircuit,
    characterize_gate,
    length_encoding_overhead,
    switch_model,
)
from repro.traffic import (
    HPC_WORKLOADS,
    inject_open_loop,
    random_permutation,
    replay_trace,
    run_ping_pong,
    transpose,
)

__version__ = "1.0.0"

__all__ = [
    "BaldurNetwork",
    "multiplicity_for_scale",
    "one_shot_drop_rate",
    "required_multiplicity",
    "DragonflyNetwork",
    "FatTreeNetwork",
    "IdealNetwork",
    "MultiButterflyNetwork",
    "baldur_cost",
    "plan_packaging",
    "awgr_comparison",
    "baldur_power",
    "dragonfly_power",
    "fattree_power",
    "multibutterfly_power",
    "power_scaling_sweep",
    "sensitivity_ratios",
    "TLSwitchCircuit",
    "characterize_gate",
    "length_encoding_overhead",
    "switch_model",
    "HPC_WORKLOADS",
    "inject_open_loop",
    "random_permutation",
    "replay_trace",
    "run_ping_pong",
    "transpose",
    "build_network",
    "figure6",
    "figure7",
    "table5",
    "degraded_mode_comparison",
    "resilience_sweep",
    "run_with_failures",
    "FaultInjectionError",
    "InvariantViolationError",
    "ChaosSchedule",
    "DegradedLink",
    "FailStop",
    "FaultInjector",
    "SlowGateDrift",
    "audit_conservation",
]
