"""Deployment cost and packaging models (Sec. IV-G / VI-B)."""

from repro.cost.model import UNIT_COSTS_USD, CostBreakdown, baldur_cost
from repro.cost.packaging import (
    PackagingPlan,
    fibers_per_interposer_edge,
    plan_packaging,
)

__all__ = [
    "UNIT_COSTS_USD",
    "CostBreakdown",
    "baldur_cost",
    "PackagingPlan",
    "fibers_per_interposer_edge",
    "plan_packaging",
]
