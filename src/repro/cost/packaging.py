"""Physical packaging of the Baldur network (Sec. IV-G).

The network is a 2D array of optical interposers on PCBs in cabinets:

* each interposer column holds one multi-butterfly stage;
* adjacent columns are connected by fiber array units (FAUs) at 127 um
  pitch -- the *fiber pitch* is the binding constraint on interposer
  count (an interposer's 32 mm edge couples ~252 fibers);
* cabinets are additionally limited to 85 kW (Cray XC [1]), but power
  binds only in the hypothetical where fiber pitch is ignored: the paper
  quotes 752 cabinets at 1M nodes fiber-limited vs. 176 power-limited.

``INTERPOSERS_PER_CABINET`` is calibrated so the published cabinet counts
(1 at 1K, 752 at 1M) are reproduced; it corresponds to ~42 PCBs per
cabinet with 13 interposers each (board-edge fiber egress limited).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import constants as C
from repro.core.multiplicity import multiplicity_for_scale
from repro.errors import ConfigurationError
from repro.power.network_power import baldur_power
from repro.tl.switch_circuit import switch_model

__all__ = ["PackagingPlan", "plan_packaging", "fibers_per_interposer_edge"]

INTERPOSERS_PER_CABINET = 554
"""Calibrated: reproduces 1 cabinet at 1K and 752 at 1M (see module doc)."""


def fibers_per_interposer_edge(
    edge_mm: float = C.INTERPOSER_WIDTH_MM,
    pitch_um: float = C.FIBER_PITCH_UM,
) -> int:
    """Fibers a single interposer edge can couple at the FAU pitch."""
    return int(edge_mm * 1000 / pitch_um)


@dataclass(frozen=True)
class PackagingPlan:
    """Physical realization summary for one Baldur scale."""

    n_nodes: int
    multiplicity: int
    stages: int
    fibers_per_column_gap: int
    interposers_per_column: int
    total_interposers: int
    cabinets_fiber_limited: int
    cabinets_power_limited: int
    tl_area_fraction_of_interposer: float

    @property
    def cabinets(self) -> int:
        """Required cabinets: fiber pitch is the binding constraint."""
        return max(self.cabinets_fiber_limited, 1)


def plan_packaging(
    n_nodes: int, multiplicity: int | None = None
) -> PackagingPlan:
    """Compute the Sec. IV-G packaging plan for a Baldur network."""
    if n_nodes < 4 or n_nodes & (n_nodes - 1):
        raise ConfigurationError("node count must be a power of two >= 4")
    m = multiplicity or multiplicity_for_scale(n_nodes)
    stages = n_nodes.bit_length() - 1
    fibers = n_nodes * m  # physical channels between adjacent columns
    per_edge = fibers_per_interposer_edge()
    per_column = max(1, math.ceil(fibers / per_edge))
    total = stages * per_column

    cabinets_fiber = math.ceil(total / INTERPOSERS_PER_CABINET)
    network_watts = baldur_power(n_nodes, m).total_network_watts
    cabinets_power = max(
        1, math.ceil(network_watts / (C.CABINET_POWER_LIMIT_KW * 1000))
    )

    # TL active area vs. interposer area (paper: <10% at 1K, m=4).
    switch_area_um2 = switch_model(m).area_um2
    total_tl_area_mm2 = (
        stages * (n_nodes / 2) * switch_area_um2 / 1e6
    )
    interposer_mm2 = C.INTERPOSER_WIDTH_MM * C.INTERPOSER_HEIGHT_MM
    tl_fraction = total_tl_area_mm2 / (total * interposer_mm2)

    return PackagingPlan(
        n_nodes=n_nodes,
        multiplicity=m,
        stages=stages,
        fibers_per_column_gap=fibers,
        interposers_per_column=per_column,
        total_interposers=total,
        cabinets_fiber_limited=cabinets_fiber,
        cabinets_power_limited=cabinets_power,
        tl_area_fraction_of_interposer=tl_fraction,
    )
