"""Deployment cost model (Sec. VI-B, Fig. 10).

Cost per server node = optical interposers + fibers + FAUs + RFECs +
optical transceivers, following the accounting of [2], [63].  Interposers
are pessimistically priced at 5X the cost of CMOS chips of the same area
(Sec. VI-B) and dominate the total, which is why Baldur's cost stays
nearly flat with scale.  Unit costs below are calibrated so the 1K-2K
scale lands at the published 523 USD per node; the fat-tree (1,992 USD)
and MEMS-OCS (1,719 USD) reference points are published values [63].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro import constants as C
from repro.cost.packaging import plan_packaging
from repro.errors import ConfigurationError

__all__ = ["CostBreakdown", "baldur_cost", "UNIT_COSTS_USD"]

UNIT_COSTS_USD = {
    "cmos_per_mm2": 1.5,  # commodity CMOS die cost per mm^2
    "fiber_segment": 1.0,  # one inter-column fiber in an FAU ribbon
    "fau": 100.0,  # one fiber array unit [50]
    "rfec": 500.0,  # one rack-mount fiber enclosure/cassette [51]
    "transceiver": 30.0,  # host-side optical transceiver
}
"""Calibrated unit costs (see module docstring)."""

RFEC_FIBERS = 288
"""Fibers per rack-mount fiber enclosure (typical cassette capacity)."""


@dataclass(frozen=True)
class CostBreakdown:
    """USD per server node by component (Fig. 10 bars)."""

    n_nodes: int
    interposers: float
    fibers: float
    faus: float
    rfecs: float
    transceivers: float

    @property
    def total(self) -> float:
        """Total USD per server node."""
        return (
            self.interposers
            + self.fibers
            + self.faus
            + self.rfecs
            + self.transceivers
        )

    @property
    def interposer_fraction(self) -> float:
        """Interposer share of total cost (the dominant component)."""
        return self.interposers / self.total

    def as_dict(self) -> Dict[str, float]:
        """Component dict for table printing."""
        return {
            "interposers": self.interposers,
            "fibers": self.fibers,
            "faus": self.faus,
            "rfecs": self.rfecs,
            "transceivers": self.transceivers,
            "total": self.total,
        }


def baldur_cost(
    n_nodes: int, multiplicity: int | None = None
) -> CostBreakdown:
    """Cost per node of a Baldur deployment at the given scale."""
    if n_nodes < 4 or n_nodes & (n_nodes - 1):
        raise ConfigurationError("node count must be a power of two >= 4")
    plan = plan_packaging(n_nodes, multiplicity)
    interposer_mm2 = C.INTERPOSER_WIDTH_MM * C.INTERPOSER_HEIGHT_MM
    interposer_usd = (
        interposer_mm2
        * UNIT_COSTS_USD["cmos_per_mm2"]
        * C.INTERPOSER_COST_MULTIPLIER_VS_CMOS
    )

    interposers = plan.total_interposers * interposer_usd / n_nodes
    # Fiber segments: inter-column ribbons plus host in/out fibers.
    fiber_count = plan.fibers_per_column_gap * (plan.stages - 1) + 2 * n_nodes
    fibers = fiber_count * UNIT_COSTS_USD["fiber_segment"] / n_nodes
    # FAUs: one per interposer edge per column gap (both sides).
    fau_count = 2 * plan.interposers_per_column * (plan.stages - 1)
    faus = fau_count * UNIT_COSTS_USD["fau"] / n_nodes
    # RFECs: host fibers (2 per node) bundled into enclosures.
    rfec_count = math.ceil(2 * n_nodes / RFEC_FIBERS)
    rfecs = rfec_count * UNIT_COSTS_USD["rfec"] / n_nodes
    transceivers = 2 * UNIT_COSTS_USD["transceiver"]

    return CostBreakdown(
        n_nodes=n_nodes,
        interposers=interposers,
        fibers=fibers,
        faus=faus,
        rfecs=rfecs,
        transceivers=transceivers,
    )
