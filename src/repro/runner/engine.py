"""Sweep execution: cache lookup, worker-pool dispatch, result assembly.

:func:`run_sweep` is the single entry point every experiment driver and
CLI command goes through.  It expands the spec, satisfies what it can
from the cache, executes the rest either serially or on a
``ProcessPoolExecutor`` (falling back to serial if a pool cannot be
created in the current environment), and reassembles results **in
expansion order** -- so the output is byte-identical no matter how many
workers ran it or in which order they finished.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.jobs import execute_job
from repro.runner.spec import Job, SweepSpec, canonical_json

__all__ = [
    "JobOutcome",
    "SweepReport",
    "SweepResult",
    "resolve_jobs",
    "run_sweep",
]

JOBS_ENV_VAR = "REPRO_JOBS"
"""Environment default for worker count (used when ``jobs`` is None)."""

ProgressFn = Callable[[Dict[str, Any]], None]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker count: explicit argument, else ``$REPRO_JOBS``, else 1."""
    if jobs is None:
        jobs = int(os.environ.get(JOBS_ENV_VAR, "1") or "1")
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class JobOutcome:
    """One finished grid point: the job, its result, and how it ran."""

    job: Job
    result: Dict[str, Any]
    cached: bool
    elapsed_s: float


@dataclass
class SweepReport:
    """Observability rollup for one :func:`run_sweep` call."""

    n_jobs: int = 0
    executed: int = 0
    cached: int = 0
    poisoned: int = 0
    workers: int = 1
    parallel: bool = False
    elapsed_s: float = 0.0
    job_times_s: Dict[str, float] = field(default_factory=dict)

    @property
    def sim_time_s(self) -> float:
        """Total simulation wall time across jobs (> elapsed when parallel)."""
        return sum(self.job_times_s.values())

    def describe(self) -> str:
        """One-line human summary (what the CLI prints after a sweep)."""
        return (
            f"{self.n_jobs} jobs ({self.executed} executed, "
            f"{self.cached} cached"
            + (f", {self.poisoned} poisoned" if self.poisoned else "")
            + f") in {self.elapsed_s:.2f}s with {self.workers} worker"
            + ("s" if self.workers != 1 else "")
        )


class SweepResult:
    """Ordered outcomes of a sweep plus its spec and execution report."""

    def __init__(self, spec: SweepSpec, outcomes: List[JobOutcome],
                 report: SweepReport) -> None:
        self.spec = spec
        self.outcomes = outcomes
        self.report = report

    def results(self) -> List[Dict[str, Any]]:
        """Result dicts in expansion (row-major grid) order."""
        return [outcome.result for outcome in self.outcomes]

    def index(
        self,
        *axis_names: str,
        value: Callable[[Dict[str, Any]], Any] = lambda result: result,
    ) -> Dict[Any, Any]:
        """Nest results by the given axes: ``index('pattern', 'network')``
        returns ``{pattern: {network: value(result)}}``."""
        names = axis_names or tuple(self.spec.axes)
        nested: Dict[Any, Any] = {}
        for outcome in self.outcomes:
            level = nested
            for name in names[:-1]:
                level = level.setdefault(outcome.job.params[name], {})
            level[outcome.job.params[names[-1]]] = value(outcome.result)
        return nested

    def obs(self) -> Dict[str, Dict[str, Any]]:
        """Observability rollups by job key (jobs run with ``obs`` set).

        Empty when the sweep ran without observability -- the common case.
        """
        return {
            outcome.job.key: outcome.result["obs"]
            for outcome in self.outcomes
            if isinstance(outcome.result, dict) and "obs" in outcome.result
        }

    def to_json(self) -> str:
        """Canonical results document: deterministic for a given spec,
        root seed, and code version -- independent of worker count,
        cache temperature, and timing (which live in ``report`` only)."""
        return canonical_json({
            "spec": self.spec.payload(),
            "jobs": [
                {"key": outcome.job.key, "result": outcome.result}
                for outcome in self.outcomes
            ],
        })


def _timed_execute(kind: str, params: Dict[str, Any]) -> Tuple[Dict[str, Any], float]:
    """Worker-side wrapper: run one job and measure its wall time."""
    start = time.perf_counter()
    result = execute_job(kind, params)
    return result, time.perf_counter() - start


def run_sweep(
    spec: SweepSpec,
    jobs: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
    progress: Optional[ProgressFn] = None,
) -> SweepResult:
    """Execute every job of ``spec`` and return the assembled results.

    ``jobs`` > 1 uses a process pool (``None`` consults ``$REPRO_JOBS``);
    ``cache_dir`` enables the on-disk result cache; ``use_cache=False``
    ignores any cache entirely.  ``progress`` is called once per finished
    job with ``{index, total, key, cached, elapsed_s}``.
    """
    workers = resolve_jobs(jobs)
    cache = ResultCache(cache_dir) if (cache_dir and use_cache) else None
    expanded = spec.expand()
    start = time.perf_counter()
    report = SweepReport(n_jobs=len(expanded), workers=workers)

    results: List[Optional[Dict[str, Any]]] = [None] * len(expanded)
    cached_flags = [False] * len(expanded)
    elapsed = [0.0] * len(expanded)
    cache_keys: List[Optional[str]] = [None] * len(expanded)
    to_run: List[int] = []

    def finished(index: int) -> None:
        report.job_times_s[expanded[index].key] = elapsed[index]
        if progress is not None:
            progress({
                "index": index,
                "total": len(expanded),
                "key": expanded[index].key,
                "cached": cached_flags[index],
                "elapsed_s": elapsed[index],
            })

    for i, job in enumerate(expanded):
        if cache is not None:
            cache_keys[i] = cache.job_cache_key(job)
            hit = cache.get(cache_keys[i])
            if hit is not None:
                results[i] = hit
                cached_flags[i] = True
                report.cached += 1
                finished(i)
                continue
        to_run.append(i)

    if to_run:
        report.parallel = workers > 1 and len(to_run) > 1
        if report.parallel:
            report.parallel = _run_parallel(
                expanded, to_run, results, elapsed, workers, finished
            )
        if not report.parallel:
            for i in to_run:
                results[i], elapsed[i] = _timed_execute(
                    expanded[i].kind, dict(expanded[i].params)
                )
                finished(i)
        report.executed = len(to_run)
        if cache is not None:
            for i in to_run:
                cache_key, result = cache_keys[i], results[i]
                assert cache_key is not None and result is not None
                cache.put(cache_key, expanded[i], result)

    if cache is not None:
        report.poisoned = cache.poisoned
    report.elapsed_s = time.perf_counter() - start

    outcomes: List[JobOutcome] = []
    for i, job in enumerate(expanded):
        result = results[i]
        assert result is not None  # every job was cached or executed
        outcomes.append(JobOutcome(
            job=job, result=result, cached=cached_flags[i],
            elapsed_s=elapsed[i],
        ))
    return SweepResult(spec, outcomes, report)


def _run_parallel(
    expanded: List[Job],
    to_run: List[int],
    results: List[Optional[Dict[str, Any]]],
    elapsed: List[float],
    workers: int,
    finished: Callable[[int], None],
) -> bool:
    """Execute the pending jobs on a process pool.

    Returns False (so the caller falls back to serial execution) if the
    pool cannot be created at all -- e.g. sandboxed environments without
    process-spawn rights.  Failures of individual jobs propagate: they
    are errors in the experiment, not in the engine.
    """
    try:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(to_run)))
    except (OSError, PermissionError, ValueError):
        return False
    with pool:
        futures = {
            pool.submit(_timed_execute, expanded[i].kind,
                        dict(expanded[i].params)): i
            for i in to_run
        }
        for future in as_completed(futures):
            i = futures[future]
            results[i], elapsed[i] = future.result()
            finished(i)
    return True
