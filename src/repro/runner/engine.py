"""Sweep execution: cache lookup, worker-pool dispatch, result assembly.

:func:`run_sweep` is the single entry point every experiment driver and
CLI command goes through.  It expands the spec, satisfies what it can
from the resume journal and the cache, executes the rest either serially
or on a ``ProcessPoolExecutor``, and reassembles results **in expansion
order** -- so the output is byte-identical no matter how many workers
ran it or in which order they finished.

The execution layer is fault tolerant (DESIGN.md section 12):

* **Worker-crash recovery** -- a ``BrokenProcessPool`` never loses the
  sweep: the pool is rebuilt and only the in-flight jobs re-dispatched.
* **Timeouts** -- an optional per-job wall-clock budget (hung jobs are
  cancelled by terminating their worker) and a sweep-level deadline.
* **Retry + quarantine** -- failing jobs retry with deterministic
  exponential backoff (jitter derived from the job key, never the wall
  clock or global RNG) and are quarantined after ``max_attempts``.
* **Checkpoint/resume** -- with ``resume=<path>`` every completion is
  fsynced to an append-only JSONL journal; re-running with the same
  path skips completed jobs and reproduces the uninterrupted output
  byte-for-byte.
* **Graceful partial results** -- with ``FaultPolicy(on_error="record")``
  failures become typed :class:`JobOutcome` statuses (``ok`` / ``failed``
  / ``timeout`` / ``quarantined``) instead of aborting the grid.
"""

from __future__ import annotations

import contextlib
import os
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError, SweepExecutionError
from repro.obs.metrics import RunnerCounters
from repro.runner.cache import ResultCache
from repro.runner.faults import WorkerFaultPlan
from repro.runner.jobs import execute_job
from repro.runner.journal import SweepJournal
from repro.runner.policy import FaultPolicy
from repro.runner.spec import Job, SweepSpec, canonical_json

__all__ = [
    "JobOutcome",
    "SweepReport",
    "SweepResult",
    "resolve_jobs",
    "run_sweep",
]

JOBS_ENV_VAR = "REPRO_JOBS"
"""Environment default for worker count (used when ``jobs`` is None)."""

ProgressFn = Callable[[Dict[str, Any]], None]

_WorkerResult = Tuple[Any, float]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker count: explicit argument, else ``$REPRO_JOBS``, else 1."""
    if jobs is None:
        jobs = int(os.environ.get(JOBS_ENV_VAR, "1") or "1")
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class JobOutcome:
    """One finished grid point: the job, its result, and how it ran.

    ``status`` is ``"ok"`` (``result`` holds the payload), ``"failed"``
    (the executor raised or returned a corrupt result with no retry
    budget left, or the sweep deadline expired before the job started),
    ``"timeout"`` (cancelled by the per-job or sweep wall-clock budget),
    or ``"quarantined"`` (a poison job: it exhausted ``max_attempts``
    retries or repeatedly crashed its worker).  Non-``ok`` outcomes carry
    a JSON-safe ``error`` payload instead of a ``result``.
    """

    job: Job
    result: Optional[Dict[str, Any]]
    cached: bool
    elapsed_s: float
    status: str = "ok"
    error: Optional[Dict[str, Any]] = None
    attempts: int = 1
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class SweepReport:
    """Observability rollup for one :func:`run_sweep` call."""

    n_jobs: int = 0
    executed: int = 0
    cached: int = 0
    poisoned: int = 0
    workers: int = 1
    parallel: bool = False
    elapsed_s: float = 0.0
    job_times_s: Dict[str, float] = field(default_factory=dict)
    failed: int = 0
    timeouts: int = 0
    quarantined: int = 0
    retries: int = 0
    resumed: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    fallback: Optional[str] = None
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def sim_time_s(self) -> float:
        """Total simulation wall time across jobs (> elapsed when parallel)."""
        return sum(sorted(self.job_times_s.values()))

    @property
    def ok(self) -> bool:
        """True when every job produced a result."""
        return not (self.failed or self.timeouts or self.quarantined)

    def describe(self) -> str:
        """One-line human summary (what the CLI prints after a sweep)."""
        return (
            f"{self.n_jobs} jobs ({self.executed} executed, "
            f"{self.cached} cached"
            + (f", {self.resumed} resumed" if self.resumed else "")
            + (f", {self.poisoned} poisoned" if self.poisoned else "")
            + (f", {self.failed} failed" if self.failed else "")
            + (f", {self.timeouts} timed out" if self.timeouts else "")
            + (f", {self.quarantined} quarantined" if self.quarantined
               else "")
            + (f", {self.retries} retries" if self.retries else "")
            + f") in {self.elapsed_s:.2f}s with {self.workers} worker"
            + ("s" if self.workers != 1 else "")
            + (f" [{self.fallback} fallback]" if self.fallback else "")
        )


class SweepResult:
    """Ordered outcomes of a sweep plus its spec and execution report."""

    def __init__(self, spec: SweepSpec, outcomes: List[JobOutcome],
                 report: SweepReport) -> None:
        self.spec = spec
        self.outcomes = outcomes
        self.report = report

    @property
    def ok(self) -> bool:
        """True when every grid point has a result."""
        return all(outcome.ok for outcome in self.outcomes)

    def failures(self) -> List[JobOutcome]:
        """The non-``ok`` outcomes, in expansion order."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def results(self) -> List[Dict[str, Any]]:
        """Result dicts of the ``ok`` jobs in expansion (row-major) order.

        Failed/timed-out/quarantined cells are skipped, the same way
        ``figure7_ratios`` skips cells with no deliveries: a partial
        sweep still reshapes into partial tables.
        """
        return [
            outcome.result for outcome in self.outcomes
            if outcome.ok and outcome.result is not None
        ]

    def index(
        self,
        *axis_names: str,
        value: Callable[[Dict[str, Any]], Any] = lambda result: result,
    ) -> Dict[Any, Any]:
        """Nest results by the given axes: ``index('pattern', 'network')``
        returns ``{pattern: {network: value(result)}}``.  Non-``ok``
        cells are omitted, so partial sweeps nest into partial tables."""
        names = axis_names or tuple(self.spec.axes)
        nested: Dict[Any, Any] = {}
        for outcome in self.outcomes:
            if not outcome.ok or outcome.result is None:
                continue
            level = nested
            for name in names[:-1]:
                level = level.setdefault(outcome.job.params[name], {})
            level[outcome.job.params[names[-1]]] = value(outcome.result)
        return nested

    def obs(self) -> Dict[str, Dict[str, Any]]:
        """Observability rollups by job key (jobs run with ``obs`` set).

        Empty when the sweep ran without observability -- the common case.
        """
        return {
            outcome.job.key: outcome.result["obs"]
            for outcome in self.outcomes
            if outcome.ok and isinstance(outcome.result, dict)
            and "obs" in outcome.result
        }

    def to_json(self) -> str:
        """Canonical results document: deterministic for a given spec,
        root seed, and code version -- independent of worker count,
        cache temperature, resume state, and timing (which live in
        ``report`` only).  ``ok`` jobs serialize exactly as they always
        have (``{"key", "result"}``); failed cells carry ``{"key",
        "status", "error"}`` instead, so a fully successful sweep's
        bytes are unchanged by the fault-tolerance layer."""
        jobs: List[Dict[str, Any]] = []
        for outcome in self.outcomes:
            if outcome.ok:
                jobs.append({"key": outcome.job.key,
                             "result": outcome.result})
            else:
                jobs.append({"key": outcome.job.key,
                             "status": outcome.status,
                             "error": outcome.error})
        return canonical_json({"spec": self.spec.payload(), "jobs": jobs})


def _timed_execute(
    kind: str,
    params: Dict[str, Any],
    key: str = "",
    dispatch: int = 1,
    plan: Optional[WorkerFaultPlan] = None,
) -> _WorkerResult:
    """Worker-side wrapper: run one job and measure its wall time.

    ``plan`` is the injectable :class:`WorkerFaultPlan` tests use to
    script crashes/hangs/failures; ``None`` (production) short-circuits
    to plain execution.
    """
    if plan is not None:
        override = plan.apply(key, dispatch)
        if override is not None:
            return override, 0.0
    start = time.perf_counter()
    result = execute_job(kind, params)
    return result, time.perf_counter() - start


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Kill a pool *now*, including hung workers.

    ``shutdown(cancel_futures=True)`` alone would still join workers that
    are busy (a hung job would block forever), so the worker processes
    are terminated first.  ``_processes`` is private executor API, hence
    the defensive access; losing the kill only delays shutdown.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        with contextlib.suppress(Exception):
            proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


class _SweepState:
    """Mutable per-run bookkeeping shared by the serial and pool paths."""

    def __init__(
        self,
        expanded: List[Job],
        policy: FaultPolicy,
        plan: Optional[WorkerFaultPlan],
        report: SweepReport,
        counters: RunnerCounters,
        progress: Optional[ProgressFn],
        cache: Optional[ResultCache],
        cache_keys: List[Optional[str]],
        journal: Optional[SweepJournal],
    ) -> None:
        self.expanded = expanded
        self.policy = policy
        self.plan = plan
        self.report = report
        self.counters = counters
        self.progress = progress
        self.cache = cache
        self.cache_keys = cache_keys
        self.journal = journal
        n = len(expanded)
        self.results: List[Optional[Dict[str, Any]]] = [None] * n
        self.status: List[Optional[str]] = [None] * n
        self.errors: List[Optional[Dict[str, Any]]] = [None] * n
        self.elapsed = [0.0] * n
        self.cached_flags = [False] * n
        self.resumed_flags = [False] * n
        self.dispatches = [0] * n
        self.failures = [0] * n
        self.crashes = [0] * n
        self.deadline_at: Optional[float] = (
            time.monotonic() + policy.deadline_s
            if policy.deadline_s is not None else None
        )

    # -- events --------------------------------------------------------------

    def emit(self, event: Dict[str, Any]) -> None:
        """Send a structured non-job event to the progress callback."""
        if self.progress is not None:
            self.progress(event)

    def _finished(self, i: int) -> None:
        self.report.job_times_s[self.expanded[i].key] = self.elapsed[i]
        if self.progress is not None:
            self.progress({
                "index": i,
                "total": len(self.expanded),
                "key": self.expanded[i].key,
                "cached": self.cached_flags[i],
                "elapsed_s": self.elapsed[i],
                "status": self.status[i],
            })

    # -- terminal transitions ------------------------------------------------

    def finish_ok(
        self,
        i: int,
        result: Dict[str, Any],
        elapsed: float,
        cached: bool = False,
        resumed: bool = False,
    ) -> None:
        """Record a completed job; checkpoint it to cache and journal."""
        self.results[i] = result
        self.status[i] = "ok"
        self.elapsed[i] = elapsed
        self.cached_flags[i] = cached
        self.resumed_flags[i] = resumed
        executed = not cached and not resumed
        if executed and self.cache is not None:
            cache_key = self.cache_keys[i]
            if cache_key is not None:
                self.cache.put(cache_key, self.expanded[i], result)
        if not resumed and self.journal is not None:
            self.journal.record(self.expanded[i].key, result)
        self._finished(i)

    def finish_bad(
        self,
        i: int,
        status: str,
        error_type: str,
        message: str,
        exc: Optional[BaseException] = None,
    ) -> None:
        """Record a terminal failure -- or abort, under ``on_error="raise"``.

        In raise mode the job's own exception propagates when there is
        one (preserving the pre-fault-tolerant contract) and
        :class:`SweepExecutionError` is raised for engine-level failures
        (timeout, deadline, broken pool).
        """
        key = self.expanded[i].key
        if not self.policy.record_failures:
            if exc is not None:
                raise exc
            raise SweepExecutionError(
                f"job {key!r} {status}: {message} "
                "(use FaultPolicy(on_error='record') for partial results)"
            )
        self.status[i] = status
        self.errors[i] = {
            "type": error_type,
            "message": message,
            "attempts": max(1, self.dispatches[i]),
        }
        if status == "timeout":
            self.report.timeouts += 1
        elif status == "quarantined":
            self.report.quarantined += 1
        else:
            self.report.failed += 1
        self.counters.incr(f"jobs_{status}")
        self._finished(i)

    # -- failure/crash accounting --------------------------------------------

    def record_failure(self, i: int, exc: Optional[BaseException],
                       message: str) -> Optional[float]:
        """One failed attempt.  Returns the backoff delay (seconds) before
        the next attempt, or ``None`` when the job is now terminal."""
        self.failures[i] += 1
        key = self.expanded[i].key
        if self.failures[i] >= self.policy.max_attempts:
            status = "failed" if self.policy.max_attempts == 1 \
                else "quarantined"
            error_type = type(exc).__name__ if exc is not None \
                else "CorruptResult"
            self.finish_bad(i, status, error_type, message, exc=exc)
            return None
        self.report.retries += 1
        self.counters.incr("retries")
        delay = self.policy.backoff_s(key, self.dispatches[i] + 1)
        self.emit({
            "event": "retry", "key": key,
            "attempt": self.failures[i], "backoff_s": delay,
            "error": message,
        })
        return delay

    def record_crash(self, i: int) -> bool:
        """One worker crash while ``i`` was in flight.  Returns True when
        the job may be re-dispatched, False when it is now terminal."""
        self.crashes[i] += 1
        if self.crashes[i] > self.policy.crash_retries:
            self.finish_bad(
                i, "quarantined", "WorkerCrash",
                f"worker pool broke {self.crashes[i]} times while this "
                "job was in flight",
            )
            return False
        return True

    def check_deadline(self) -> bool:
        """True once the sweep-level deadline has expired."""
        return (
            self.deadline_at is not None
            and time.monotonic() >= self.deadline_at
        )

    def fail_remaining(self, indices: List[int], error_type: str,
                       message: str) -> None:
        """Mark every not-yet-finished index terminally failed."""
        for i in indices:
            if self.status[i] is None:
                self.finish_bad(i, "failed", error_type, message)


def run_sweep(
    spec: SweepSpec,
    jobs: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
    progress: Optional[ProgressFn] = None,
    policy: Optional[FaultPolicy] = None,
    resume: Optional[Union[str, Path]] = None,
    fault_plan: Optional[WorkerFaultPlan] = None,
) -> SweepResult:
    """Execute every job of ``spec`` and return the assembled results.

    ``jobs`` > 1 uses a process pool (``None`` consults ``$REPRO_JOBS``);
    ``cache_dir`` enables the on-disk result cache; ``use_cache=False``
    ignores any cache entirely.  ``progress`` is called once per finished
    job with ``{index, total, key, cached, elapsed_s, status}`` plus
    structured engine events carrying an ``"event"`` key (``fallback``,
    ``retry``, ``pool-rebuild``).

    ``policy`` configures fault tolerance (:class:`FaultPolicy`:
    timeouts, deadline, retries, record-vs-raise); ``resume`` names an
    append-only journal file -- completed jobs found there are not
    re-executed, and every completion is checkpointed to it.
    ``fault_plan`` injects scripted worker faults (tests only).
    """
    workers = resolve_jobs(jobs)
    policy = policy if policy is not None else FaultPolicy()
    cache = ResultCache(cache_dir) if (cache_dir and use_cache) else None
    expanded = spec.expand()
    start = time.perf_counter()
    report = SweepReport(n_jobs=len(expanded), workers=workers)
    counters = RunnerCounters()

    journal: Optional[SweepJournal] = None
    resumed_records: Dict[str, Dict[str, Any]] = {}
    if resume is not None:
        journal = SweepJournal(resume, spec)
        resumed_records = journal.load()

    cache_keys: List[Optional[str]] = [None] * len(expanded)
    state = _SweepState(expanded, policy, fault_plan, report, counters,
                        progress, cache, cache_keys, journal)
    to_run: List[int] = []

    try:
        if journal is not None:
            journal.begin()
        for i, job in enumerate(expanded):
            record = resumed_records.get(job.key)
            if record is not None:
                report.resumed += 1
                counters.incr("jobs_resumed")
                state.finish_ok(i, record, 0.0, resumed=True)
                continue
            if cache is not None:
                cache_keys[i] = cache.job_cache_key(job)
                hit = cache.get(cache_keys[i])
                if hit is not None:
                    report.cached += 1
                    state.finish_ok(i, hit, 0.0, cached=True)
                    continue
            to_run.append(i)

        if to_run:
            report.executed = len(to_run)
            report.parallel = workers > 1 and len(to_run) > 1
            if report.parallel:
                report.parallel = _run_parallel(state, to_run, workers)
                if not report.parallel:
                    report.fallback = "serial"
            if not report.parallel:
                _run_serial(
                    state, [i for i in to_run if state.status[i] is None]
                )
    finally:
        if journal is not None:
            journal.close()

    if cache is not None:
        report.poisoned = cache.poisoned
    report.elapsed_s = time.perf_counter() - start
    report.counters = counters.snapshot()

    outcomes: List[JobOutcome] = []
    for i, job in enumerate(expanded):
        status = state.status[i]
        assert status is not None  # every job reached a terminal state
        outcomes.append(JobOutcome(
            job=job,
            result=state.results[i],
            cached=state.cached_flags[i],
            elapsed_s=state.elapsed[i],
            status=status,
            error=state.errors[i],
            attempts=max(1, state.dispatches[i]),
            resumed=state.resumed_flags[i],
        ))
    return SweepResult(spec, outcomes, report)


def _run_serial(state: _SweepState, indices: List[int]) -> None:
    """Execute jobs in-process, with retries/backoff and deadline checks.

    Per-job timeouts are unenforceable without a worker process (a
    running job cannot be preempted), so only the sweep deadline applies
    here -- checked between jobs and between attempts.
    """
    for n, i in enumerate(indices):
        if state.check_deadline():
            state.fail_remaining(indices[n:], "Deadline",
                                 "sweep deadline expired before this job "
                                 "started")
            return
        job = state.expanded[i]
        while state.status[i] is None:
            state.dispatches[i] += 1
            try:
                result, dt = _timed_execute(
                    job.kind, dict(job.params), job.key,
                    state.dispatches[i], state.plan,
                )
            except Exception as exc:
                delay = state.record_failure(i, exc, str(exc))
            else:
                if isinstance(result, dict):
                    state.finish_ok(i, result, dt)
                    break
                delay = state.record_failure(
                    i, None,
                    f"executor returned {type(result).__name__}, "
                    "not a result dict",
                )
            if delay is not None and delay > 0:
                time.sleep(delay)
            if state.status[i] is None and state.check_deadline():
                state.finish_bad(i, "timeout", "Deadline",
                                 "sweep deadline expired mid-retry")


class _PendingJob:
    """A job awaiting (re-)dispatch, possibly held back by backoff."""

    __slots__ = ("index", "ready_at")

    def __init__(self, index: int, ready_at: float = 0.0) -> None:
        self.index = index
        self.ready_at = ready_at


def _make_pool(workers: int, n_jobs: int) -> Optional[ProcessPoolExecutor]:
    try:
        return ProcessPoolExecutor(max_workers=min(workers, n_jobs))
    except (OSError, PermissionError, ValueError):
        return None


def _run_parallel(state: _SweepState, to_run: List[int],
                  workers: int) -> bool:
    """Supervise the pending jobs on a (rebuildable) process pool.

    Returns False if a pool cannot be created at all -- e.g. sandboxed
    environments without process-spawn rights -- in which case the
    fallback is *announced* (RuntimeWarning + ``fallback`` progress
    event + ``SweepReport.fallback``), never silent, and the caller runs
    the jobs serially.
    """
    policy = state.policy
    pool = _make_pool(workers, len(to_run))
    if pool is None:
        warnings.warn(
            "process pool unavailable; sweep falling back to serial "
            "execution (parallelism disabled, results unaffected)",
            RuntimeWarning,
            stacklevel=3,
        )
        state.counters.incr("serial_fallbacks")
        state.emit({"event": "fallback", "mode": "serial",
                    "reason": "process pool unavailable"})
        return False

    pending: Deque[_PendingJob] = deque(_PendingJob(i) for i in to_run)
    in_flight: Dict[Future[_WorkerResult], Tuple[int, float]] = {}
    rebuilds = 0

    def requeue(i: int, delay: float = 0.0) -> None:
        pending.append(_PendingJob(i, time.monotonic() + delay))

    def rebuild(reason: str) -> bool:
        """Replace a broken/poisoned pool; False when the budget is gone."""
        nonlocal pool, rebuilds
        assert pool is not None
        _terminate_pool(pool)
        pool = None
        rebuilds += 1
        state.report.pool_rebuilds += 1
        state.counters.incr("pool_rebuilds")
        state.emit({"event": "pool-rebuild", "reason": reason,
                    "rebuilds": rebuilds})
        if rebuilds > policy.max_pool_rebuilds:
            return False
        pool = _make_pool(workers, len(to_run))
        return pool is not None

    def abort_remaining(error_type: str, message: str) -> None:
        remaining = [i for i, _ in in_flight.values()]
        in_flight.clear()
        state.fail_remaining(
            remaining + [p.index for p in pending], error_type, message)
        pending.clear()

    try:
        while pending or in_flight:
            now = time.monotonic()

            # Sweep-level deadline: cancel in-flight, fail pending.
            if state.check_deadline():
                assert pool is not None
                _terminate_pool(pool)
                pool = None
                for i, started in in_flight.values():
                    state.elapsed[i] = time.monotonic() - started
                    state.finish_bad(i, "timeout", "Deadline",
                                     "sweep deadline expired while this "
                                     "job was running")
                in_flight.clear()
                state.fail_remaining(
                    [p.index for p in pending], "Deadline",
                    "sweep deadline expired before this job started")
                pending.clear()
                return True

            # Dispatch every ready pending job into free worker slots.
            for _ in range(len(pending)):
                if len(in_flight) >= workers:
                    break
                item = pending.popleft()
                if item.ready_at > now:
                    pending.append(item)  # still backing off; rotate
                    continue
                i = item.index
                job = state.expanded[i]
                state.dispatches[i] += 1
                assert pool is not None
                future = pool.submit(
                    _timed_execute, job.kind, dict(job.params),
                    job.key, state.dispatches[i], state.plan,
                )
                in_flight[future] = (i, time.monotonic())

            if not in_flight:
                # Everything pending is backing off; sleep to readiness.
                wake = min(p.ready_at for p in pending)
                pause = max(0.0, wake - time.monotonic())
                if state.deadline_at is not None:
                    pause = min(pause,
                                max(0.0, state.deadline_at -
                                    time.monotonic()))
                time.sleep(min(pause, 0.5) if pause else 0.001)
                continue

            # Wait for completions -- bounded only when a clock matters.
            timeout: Optional[float] = None
            bounds: List[float] = []
            if policy.job_timeout_s is not None:
                bounds.extend(
                    started + policy.job_timeout_s - now
                    for _, started in in_flight.values()
                )
            if state.deadline_at is not None:
                bounds.append(state.deadline_at - now)
            if pending:
                bounds.extend(p.ready_at - now for p in pending
                              if p.ready_at > now)
            if bounds:
                timeout = max(0.0, min(bounds)) + 0.01
            done, _ = wait(set(in_flight), timeout=timeout,
                           return_when=FIRST_COMPLETED)

            crashed = False
            for future in done:
                i, started = in_flight.pop(future)
                exc = future.exception()
                if isinstance(exc, BrokenProcessPool):
                    crashed = True
                    if state.record_crash(i):
                        requeue(i)
                elif exc is not None:
                    delay = state.record_failure(i, exc, str(exc))
                    if delay is not None:
                        requeue(i, delay)
                else:
                    result, dt = future.result()
                    if isinstance(result, dict):
                        state.finish_ok(i, result, dt)
                    else:
                        delay = state.record_failure(
                            i, None,
                            f"worker returned "
                            f"{type(result).__name__}, not a result dict",
                        )
                        if delay is not None:
                            requeue(i, delay)

            if crashed:
                state.report.worker_crashes += 1
                state.counters.incr("worker_crashes")
                # Crashes cannot be attributed precisely: every in-flight
                # job advances its crash counter and is re-dispatched.
                for i, _ in in_flight.values():
                    if state.record_crash(i):
                        requeue(i)
                in_flight.clear()
                if not rebuild("worker crash"):
                    abort_remaining(
                        "BrokenPool",
                        "worker pool broke more than "
                        f"{policy.max_pool_rebuilds} times",
                    )
                    return True
                continue

            # Per-job wall-clock timeouts: cancelling a running task
            # requires terminating its worker, which breaks the pool --
            # so time out, re-dispatch the innocent in-flight jobs, and
            # rebuild.
            if policy.job_timeout_s is not None and in_flight:
                now = time.monotonic()
                expired = [
                    (future, i, started)
                    for future, (i, started) in in_flight.items()
                    if now - started >= policy.job_timeout_s
                ]
                if expired:
                    for future, i, started in expired:
                        del in_flight[future]
                        state.elapsed[i] = now - started
                        state.counters.incr("job_timeouts")
                        state.finish_bad(
                            i, "timeout", "JobTimeout",
                            f"still running after "
                            f"{policy.job_timeout_s:g}s "
                            f"(job_timeout_s)",
                        )
                    for i, _ in in_flight.values():
                        requeue(i)
                    in_flight.clear()
                    if not rebuild("job timeout"):
                        abort_remaining(
                            "BrokenPool",
                            "worker pool broke more than "
                            f"{policy.max_pool_rebuilds} times",
                        )
                        return True
    except BaseException:
        # Abort path (on_error="raise", Ctrl-C, ...): a plain shutdown
        # would join hung workers forever, so kill the pool outright.
        if pool is not None:
            _terminate_pool(pool)
            pool = None
        raise
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
    return True
