"""Parallel sweep-execution subsystem.

Every paper figure is a grid of independent packet-level simulations
(network x traffic x load x seed).  This package turns such grids into
declarative :class:`~repro.runner.spec.SweepSpec` objects, expands them
into jobs with deterministically derived per-job RNG seeds, executes the
jobs across worker processes (serial fallback included), and caches
completed results on disk keyed by a content hash of the job parameters
plus a fingerprint of the simulator source code.

Guarantees:

* **Determinism** -- a job's seed is ``derive_seed(root_seed, job.key)``,
  a pure function of the sweep's root seed and the job's position in the
  grid, so serial and parallel execution produce bit-identical results
  and adding a point to a sweep never perturbs the other points.
* **Cache safety** -- cache entries embed a digest of their own payload
  and are keyed by the code fingerprint; corrupted, tampered, or stale
  entries are detected and recomputed, never served; writes are atomic
  (temp file + fsync + ``os.replace``), so a killed worker can never
  leave a truncated entry.
* **Fault tolerance** -- worker crashes rebuild the pool and re-dispatch
  only the in-flight jobs; :class:`~repro.runner.policy.FaultPolicy`
  adds per-job timeouts, a sweep deadline, deterministic retry/backoff
  with poison-job quarantine, and record-instead-of-raise partial
  results; ``resume=<journal>`` checkpoints completions to an
  append-only JSONL journal (:class:`~repro.runner.journal.SweepJournal`)
  so an interrupted campaign resumes byte-identically.
* **Observability** -- every run returns a :class:`~repro.runner.engine.
  SweepReport` with per-job wall times, executed/cached/resumed/poisoned
  counts, fault counters (retries, crashes, rebuilds, fallbacks), and
  accepts a progress callback that also receives structured engine
  events.
"""

from repro.runner.cache import ResultCache, code_fingerprint
from repro.runner.engine import (
    JobOutcome,
    SweepReport,
    SweepResult,
    resolve_jobs,
    run_sweep,
)
from repro.runner.faults import InjectedWorkerFault, WorkerFaultPlan
from repro.runner.jobs import JOB_KINDS, execute_job
from repro.runner.journal import SweepJournal
from repro.runner.policy import FaultPolicy
from repro.runner.spec import Job, SweepSpec, canonical_json

__all__ = [
    "FaultPolicy",
    "InjectedWorkerFault",
    "Job",
    "JobOutcome",
    "JOB_KINDS",
    "ResultCache",
    "SweepJournal",
    "SweepReport",
    "SweepResult",
    "SweepSpec",
    "WorkerFaultPlan",
    "canonical_json",
    "code_fingerprint",
    "execute_job",
    "resolve_jobs",
    "run_sweep",
]
