"""Declarative sweep specifications and their expansion into jobs.

A :class:`SweepSpec` is the cartesian product of named *axes* (the grid
dimensions: pattern, network, load, ...) over a set of *fixed* parameters
shared by every cell.  :meth:`SweepSpec.expand` turns it into an ordered
list of :class:`Job` objects, one per grid point.

Seed discipline: each job's simulation seed is derived from the sweep's
``root_seed`` and the job's canonical key via
:func:`repro.sim.rand.derive_seed`.  The derivation depends only on
*what* the job is, never on *when* or *where* it runs, which is what
makes ``--jobs N`` bit-identical to serial execution.
"""

from __future__ import annotations

import itertools
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.sim.rand import derive_seed

__all__ = ["Job", "SweepSpec", "canonical_json", "json_safe"]

RESERVED_PARAMS = ("seed",)
"""Parameter names injected by the expansion; specs may not define them."""


def json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats with ``None`` (JSON null).

    RFC 8259 has no NaN/Infinity literals; Python's ``json`` emits them
    by default, silently producing files other tools reject.  A run with
    zero deliveries reports NaN latencies, so result payloads must pass
    through this before serialization.  Tuples become lists (matching
    what a JSON round-trip produces anyway).
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value


def canonical_json(value: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace, shortest-repr floats.

    Two structurally equal values always serialize to the same bytes, so
    this is the basis for job hashing and byte-identical results files.
    Strictly RFC 8259: non-finite floats serialize as ``null`` (via
    :func:`json_safe`), and ``allow_nan=False`` guarantees no
    ``NaN``/``Infinity`` literal can ever leak into output.
    """
    return json.dumps(
        json_safe(value), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )


@dataclass(frozen=True)
class Job:
    """One grid point: an executor kind, a canonical key, and parameters.

    ``params`` contains the fixed parameters, this job's axis assignment,
    and the derived ``seed`` -- exactly the keyword payload handed to the
    executor registered for ``kind`` in :mod:`repro.runner.jobs`.
    """

    kind: str
    key: str
    params: Mapping[str, Any]
    seed: int


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: ``kind`` x ``axes`` grid over ``fixed`` params.

    ``axes`` preserves declaration order; jobs are expanded in row-major
    order over that ordering, so the expansion itself is deterministic.
    """

    kind: str
    axes: Mapping[str, Sequence[Any]]
    fixed: Mapping[str, Any] = field(default_factory=dict)
    root_seed: int = 0

    def __post_init__(self) -> None:
        if not self.axes:
            raise ConfigurationError("a sweep needs at least one axis")
        for name, values in self.axes.items():
            if not tuple(values):
                raise ConfigurationError(f"axis {name!r} has no values")
        overlap = set(self.axes) & set(self.fixed)
        if overlap:
            raise ConfigurationError(
                f"axes and fixed params overlap: {sorted(overlap)}"
            )
        for reserved in RESERVED_PARAMS:
            if reserved in self.axes or reserved in self.fixed:
                raise ConfigurationError(
                    f"{reserved!r} is derived per job; use root_seed "
                    "(or a replication axis) instead"
                )

    def job_key(self, assignment: Mapping[str, Any]) -> str:
        """Canonical key of one grid point (stable across runs)."""
        parts = [self.kind, *(f"{k}={assignment[k]}" for k in self.axes)]
        return "/".join(parts)

    def expand(self) -> List[Job]:
        """All jobs of the grid, in deterministic row-major order."""
        names = list(self.axes)
        jobs: List[Job] = []
        for combo in itertools.product(*(tuple(self.axes[n]) for n in names)):
            assignment = dict(zip(names, combo))
            key = self.job_key(assignment)
            seed = derive_seed(self.root_seed, key)
            params: Dict[str, Any] = {**self.fixed, **assignment, "seed": seed}
            jobs.append(Job(kind=self.kind, key=key, params=params, seed=seed))
        return jobs

    def payload(self) -> Dict[str, Any]:
        """JSON-safe identity of this spec (embedded in results files)."""
        return {
            "kind": self.kind,
            "axes": {name: list(values) for name, values in self.axes.items()},
            "fixed": dict(self.fixed),
            "root_seed": self.root_seed,
        }
