"""Content-addressed on-disk cache for completed sweep jobs.

Cache keys are a SHA-256 over the canonical JSON of ``{kind, key, params,
code}`` where ``code`` is a fingerprint of every ``repro`` source file --
any change to the simulators (or to the job itself) changes the key, so a
perf rewrite can never be served stale numbers from a previous code
version.

Each entry file additionally embeds a digest of its own result payload.
:meth:`ResultCache.get` re-derives that digest on every read and treats
any mismatch (truncation, bit-rot, manual tampering) as a miss: poisoned
entries are counted, deleted, and recomputed -- never served.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

import repro
from repro.runner.spec import Job, canonical_json

__all__ = ["ResultCache", "code_fingerprint", "result_digest"]

_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Computed once per process; invalidates every cache entry whenever any
    simulator code changes, which is the conservative notion of "same
    experiment" a regression-safe cache needs.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def result_digest(result: Any) -> str:
    """Digest of a result payload (what entry files embed and verify)."""
    return hashlib.sha256(canonical_json(result).encode()).hexdigest()


class ResultCache:
    """Disk cache mapping job content hashes to result payloads."""

    def __init__(self, cache_dir) -> None:
        self.root = Path(cache_dir)
        self.hits = 0
        self.misses = 0
        self.poisoned = 0

    def job_cache_key(self, job: Job, fingerprint: Optional[str] = None) -> str:
        """Content hash identifying one job under the current code."""
        payload = {
            "kind": job.kind,
            "key": job.key,
            "params": dict(job.params),
            "code": fingerprint if fingerprint is not None else code_fingerprint(),
        }
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()

    def entry_path(self, cache_key: str) -> Path:
        return self.root / cache_key[:2] / f"{cache_key}.json"

    def get(self, cache_key: str) -> Optional[Dict[str, Any]]:
        """The cached result, or ``None`` on miss or failed verification."""
        path = self.entry_path(cache_key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._poison(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("cache_key") != cache_key
            or "result" not in entry
            or entry.get("digest") != result_digest(entry["result"])
        ):
            self._poison(path)
            return None
        self.hits += 1
        return entry["result"]

    def put(self, cache_key: str, job: Job, result: Any) -> Path:
        """Atomically persist one completed job result."""
        path = self.entry_path(cache_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache_key": cache_key,
            "kind": job.kind,
            "key": job.key,
            "params": dict(job.params),
            "digest": result_digest(result),
            "result": result,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=1),
                       encoding="utf-8")
        os.replace(tmp, path)
        return path

    def _poison(self, path: Path) -> None:
        """A corrupted/stale entry: count it, drop it, report a miss."""
        self.poisoned += 1
        self.misses += 1
        try:
            os.unlink(path)
        except OSError:
            pass
