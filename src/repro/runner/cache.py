"""Content-addressed on-disk cache for completed sweep jobs.

Cache keys are a SHA-256 over the canonical JSON of ``{kind, key, params,
code}`` where ``code`` is a fingerprint of every ``repro`` source file --
any change to the simulators (or to the job itself) changes the key, so a
perf rewrite can never be served stale numbers from a previous code
version.

Each entry file additionally embeds a digest of its own result payload.
:meth:`ResultCache.get` re-derives that digest on every read and treats
any mismatch (truncation, bit-rot, manual tampering) as a miss: poisoned
entries are counted, deleted, and recomputed -- never served.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union, cast

import repro
from repro.runner.spec import Job, canonical_json, json_safe

__all__ = ["ResultCache", "code_fingerprint", "result_digest"]

# Memoized fingerprints keyed by tree root; the value pairs a cheap
# stat() snapshot of the tree with the content hash it produced, so the
# memo self-invalidates when any source file changes (a once-per-process
# global would serve stale fingerprints to long-lived processes -- REPL
# sessions, notebook kernels -- that edit code between sweeps).
_Snapshot = Tuple[Tuple[str, int, int], ...]
# FORK-001 audited (repro.lint.flow.FORK_STATE_ALLOWLIST): pure memo of
# an on-disk property -- a fork worker's write is dropped at exit, which
# costs one recomputation and can never change a result.
_FINGERPRINT_CACHE: Dict[Path, Tuple[_Snapshot, str]] = {}


def _tree_snapshot(root: Path) -> _Snapshot:
    """(relative path, mtime_ns, size) of every source file under root."""
    return tuple(
        (
            path.relative_to(root).as_posix(),
            path.stat().st_mtime_ns,
            path.stat().st_size,
        )
        for path in sorted(root.rglob("*.py"))
    )


def code_fingerprint(root: Optional[Union[str, Path]] = None) -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Invalidates every cache entry whenever any simulator code changes,
    which is the conservative notion of "same experiment" a
    regression-safe cache needs.  The hash is memoized against a
    stat-level snapshot (file set, mtimes, sizes): unchanged trees reuse
    the memo, while any edit -- even mid-process -- recomputes the
    fingerprint.  ``root`` defaults to the installed ``repro`` package
    (overridable for tests).
    """
    if root is not None:
        tree = Path(root).resolve()
    else:
        package_file = repro.__file__
        assert package_file is not None  # repro is an on-disk package
        tree = Path(package_file).resolve().parent
    snapshot = _tree_snapshot(tree)
    cached = _FINGERPRINT_CACHE.get(tree)
    if cached is not None and cached[0] == snapshot:
        return cached[1]
    digest = hashlib.sha256()
    for path in sorted(tree.rglob("*.py")):
        digest.update(path.relative_to(tree).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    fingerprint = digest.hexdigest()
    _FINGERPRINT_CACHE[tree] = (snapshot, fingerprint)
    return fingerprint


def result_digest(result: Any) -> str:
    """Digest of a result payload (what entry files embed and verify)."""
    return hashlib.sha256(canonical_json(result).encode()).hexdigest()


class ResultCache:
    """Disk cache mapping job content hashes to result payloads."""

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.root = Path(cache_dir)
        self.hits = 0
        self.misses = 0
        self.poisoned = 0

    def job_cache_key(self, job: Job, fingerprint: Optional[str] = None) -> str:
        """Content hash identifying one job under the current code."""
        payload = {
            "kind": job.kind,
            "key": job.key,
            "params": dict(job.params),
            "code": fingerprint if fingerprint is not None else code_fingerprint(),
        }
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()

    def entry_path(self, cache_key: str) -> Path:
        return self.root / cache_key[:2] / f"{cache_key}.json"

    def get(self, cache_key: str) -> Optional[Dict[str, Any]]:
        """The cached result, or ``None`` on miss or failed verification."""
        path = self.entry_path(cache_key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._poison(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("cache_key") != cache_key
            or "result" not in entry
            or entry.get("digest") != result_digest(entry["result"])
        ):
            self._poison(path)
            return None
        self.hits += 1
        return cast(Dict[str, Any], entry["result"])

    def put(self, cache_key: str, job: Job, result: Any) -> Path:
        """Atomically persist one completed job result.

        The entry is written to a temp file *in the cache directory*,
        flushed and fsynced, then ``os.replace``d into place -- a worker
        killed mid-write (SIGKILL, OOM, power loss) can leave a stale
        ``.tmp.<pid>`` sibling but never a truncated entry file, and
        readers only ever open the exact entry path.  Stale temp files
        from dead writers are swept opportunistically.
        """
        path = self.entry_path(cache_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache_key": cache_key,
            "kind": job.kind,
            "key": job.key,
            "params": dict(job.params),
            "digest": result_digest(result),
            # Sanitized so the entry file is valid RFC 8259 JSON (NaN
            # latencies become null) and reads return exactly what a
            # canonical_json round-trip of the result would.
            "result": json_safe(result),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True, indent=1,
                                allow_nan=False))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        for stale in path.parent.glob(f"{cache_key[:8]}*.tmp.*"):
            if stale != tmp:
                with contextlib.suppress(OSError):
                    os.unlink(stale)
        return path

    def _poison(self, path: Path) -> None:
        """A corrupted/stale entry: count it, drop it, report a miss."""
        self.poisoned += 1
        self.misses += 1
        with contextlib.suppress(OSError):
            os.unlink(path)
