"""Injectable worker-fault plans: deterministic chaos for the engine.

A :class:`WorkerFaultPlan` scripts misbehaviour *inside worker
processes* -- crash the interpreter, hang past the job timeout, raise,
or return a corrupt result -- keyed by job key and dispatch number.  It
is the execution-layer sibling of :mod:`repro.faults` (which injects
faults into the *simulated network*): tests hand a plan to
:func:`~repro.runner.engine.run_sweep` to prove that crash recovery,
timeout cancellation, retry/quarantine, and checkpoint/resume actually
work, without monkeypatching executor internals.

Plans are plain frozen dataclasses so they pickle into
``ProcessPoolExecutor`` workers, and they are entirely script-driven --
no randomness, no wall-clock decisions -- so a faulty run is exactly as
reproducible as a healthy one.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError

__all__ = ["InjectedWorkerFault", "WorkerFaultPlan", "CORRUPT_RESULT"]

_ACTIONS = ("ok", "fail", "crash", "hang", "corrupt")

CORRUPT_RESULT: Tuple[str, ...] = ("__corrupt__",)
"""What a ``corrupt`` action returns in place of a result dict.  Any
non-dict return is treated by the engine as a corrupt result and consumes
a retry attempt, exactly like an executor exception."""


class InjectedWorkerFault(ReproError):
    """The exception a scripted ``fail`` action raises inside the worker.

    Defined at module scope (and carrying only its message) so it pickles
    cleanly back across the process boundary to the supervising engine.
    """


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Scripted per-job worker misbehaviour, by dispatch number.

    ``actions`` maps a job key to the sequence of actions its successive
    dispatches perform: ``{"open_loop/.../load=0.7": ("crash", "ok")}``
    crashes the worker on the first dispatch and succeeds on the
    re-dispatch.  Dispatches beyond the end of the sequence (and jobs not
    named at all) run normally, so a plan describes only the faults.

    Actions:

    * ``ok``      -- run the job normally;
    * ``fail``    -- raise :class:`InjectedWorkerFault`;
    * ``crash``   -- kill the worker process with ``os._exit`` (the
      supervisor sees ``BrokenProcessPool``);
    * ``hang``    -- sleep ``hang_s`` seconds (far past any test timeout)
      before running, simulating a wedged job;
    * ``corrupt`` -- return :data:`CORRUPT_RESULT` instead of a result
      dict, simulating a worker that scrambled its payload.
    """

    actions: Mapping[str, Sequence[str]] = field(default_factory=dict)
    hang_s: float = 600.0
    exit_code: int = 139

    def __post_init__(self) -> None:
        for key, plan in self.actions.items():
            for action in plan:
                if action not in _ACTIONS:
                    raise ConfigurationError(
                        f"unknown fault action {action!r} for job "
                        f"{key!r}; expected one of {_ACTIONS}"
                    )

    def action(self, key: str, dispatch: int) -> str:
        """The scripted action for dispatch ``dispatch`` (1-based) of
        ``key``; ``"ok"`` when the script has nothing to say."""
        plan = self.actions.get(key)
        if plan is None or not 1 <= dispatch <= len(plan):
            return "ok"
        return plan[dispatch - 1]

    def apply(self, key: str, dispatch: int) -> Optional[Any]:
        """Run the scripted action inside the worker.

        Returns ``None`` to proceed with normal execution, or a
        replacement "result" object (the ``corrupt`` action).  ``fail``
        raises, ``crash`` never returns, ``hang`` sleeps then proceeds.
        """
        action = self.action(key, dispatch)
        if action == "ok":
            return None
        if action == "fail":
            raise InjectedWorkerFault(
                f"injected failure for {key!r} (dispatch {dispatch})"
            )
        if action == "crash":
            # os._exit skips atexit/finally machinery: the pool sees the
            # worker vanish exactly as it would on a segfault or OOM kill.
            os._exit(self.exit_code)
        if action == "hang":
            time.sleep(self.hang_s)
            return None
        return CORRUPT_RESULT
