"""Fault-tolerance policy for sweep execution.

A :class:`FaultPolicy` bundles every knob of the fault-tolerant execution
layer: per-job wall-clock timeouts, a sweep-level deadline budget, retry
counts with deterministic exponential backoff, worker-crash re-dispatch
limits, and whether failures abort the sweep or become recorded
:class:`~repro.runner.engine.JobOutcome` statuses.

Backoff discipline: retry delays are a pure function of the job key and
the attempt number -- the jitter is derived through
:func:`repro.sim.rand.derive_seed`, never the global RNG or the wall
clock, so ``repro-lint``'s RNG-001/CLK-001 contracts hold and two runs
of the same failing sweep back off identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.rand import derive_seed

__all__ = ["FaultPolicy"]

_ON_ERROR_MODES = ("raise", "record")


@dataclass(frozen=True)
class FaultPolicy:
    """How :func:`~repro.runner.engine.run_sweep` treats failing jobs.

    The default policy is backward compatible with the pre-fault-tolerant
    engine: no timeouts, no retries, exceptions propagate -- except that
    worker crashes (``BrokenProcessPool``) are always recovered by
    rebuilding the pool and re-dispatching the in-flight jobs, up to
    ``crash_retries`` re-dispatches per job.

    ``on_error="record"`` turns every terminal failure into a typed
    :class:`~repro.runner.engine.JobOutcome` (``failed`` / ``timeout`` /
    ``quarantined``) so one poisoned cell cannot lose the rest of the
    grid; ``on_error="raise"`` aborts the sweep on the first terminal
    failure (re-raising the job's own exception where there is one,
    :class:`~repro.errors.SweepExecutionError` otherwise).
    """

    job_timeout_s: Optional[float] = None
    """Per-job wall-clock budget.  A job still running after this many
    seconds is cancelled (its worker is terminated and the pool rebuilt)
    and reported as ``status="timeout"``.  Only enforceable with worker
    processes; serial execution cannot preempt a running job and ignores
    it (the deadline is still checked between jobs)."""

    deadline_s: Optional[float] = None
    """Sweep-level wall-clock budget.  Once exceeded, in-flight jobs are
    cancelled (``timeout``) and pending jobs are recorded as ``failed``
    with a ``deadline`` error instead of being started."""

    max_attempts: int = 1
    """Execution attempts per job before it is quarantined.  An attempt is
    consumed by an exception from the executor or a corrupt (non-dict)
    result.  ``1`` means no retries; a job that exhausts ``max_attempts >
    1`` is reported as ``status="quarantined"`` (a poison job)."""

    crash_retries: int = 2
    """Re-dispatches a job may receive after worker crashes.  A crash
    cannot be attributed more precisely than the in-flight set, so every
    in-flight job's crash counter advances on a pool break: a repeatedly
    crashing poison job is quarantined after ``crash_retries`` rebuilds
    while innocent bystanders simply re-run."""

    max_pool_rebuilds: int = 8
    """Total pool rebuilds (crashes + timeouts) per sweep before the
    engine stops trusting process pools and falls back to serial
    execution for the remaining jobs."""

    backoff_base_s: float = 0.05
    """First-retry backoff; attempt ``n`` waits ``base * 2**(n-1)``
    (capped) times a deterministic jitter in ``[0.5, 1.0)``.  Set to 0
    to retry immediately (tests do)."""

    backoff_cap_s: float = 2.0
    """Upper bound on a single backoff delay."""

    on_error: str = "raise"
    """``"raise"``: first terminal failure aborts the sweep (the
    pre-fault-tolerant contract).  ``"record"``: failures become typed
    partial-result outcomes and the sweep completes."""

    def __post_init__(self) -> None:
        if self.on_error not in _ON_ERROR_MODES:
            raise ConfigurationError(
                f"on_error must be one of {_ON_ERROR_MODES}, "
                f"got {self.on_error!r}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.crash_retries < 0:
            raise ConfigurationError(
                f"crash_retries must be >= 0, got {self.crash_retries}"
            )
        if self.max_pool_rebuilds < 0:
            raise ConfigurationError(
                f"max_pool_rebuilds must be >= 0, "
                f"got {self.max_pool_rebuilds}"
            )
        for name in ("job_timeout_s", "deadline_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {value}"
                )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")

    @property
    def record_failures(self) -> bool:
        """True when terminal failures become outcomes, not exceptions."""
        return self.on_error == "record"

    def backoff_s(self, key: str, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` (>= 2) of ``key``.

        ``min(cap, base * 2**(attempt-2))`` scaled by a jitter factor in
        ``[0.5, 1.0)`` derived from ``(attempt, key)`` -- no wall clock,
        no global RNG, so the schedule is a pure function of the job.
        """
        if self.backoff_base_s <= 0:
            return 0.0
        raw = min(
            self.backoff_cap_s,
            self.backoff_base_s * (2.0 ** max(0, attempt - 2)),
        )
        jitter = 0.5 + (derive_seed(attempt, key) % 4096) / 8192.0
        return raw * jitter
