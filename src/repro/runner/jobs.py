"""Job executors: the functions worker processes actually run.

Each sweep ``kind`` maps to a module-level executor (so it pickles into
:class:`concurrent.futures.ProcessPoolExecutor` workers) that takes the
job's parameter dict and returns a JSON-safe result dict.  Executors are
pure functions of their parameters: all randomness flows through the
job's pre-derived ``seed``, which is what makes results independent of
worker count and scheduling order.

Heavyweight simulator modules are imported lazily inside the executors
so importing :mod:`repro.runner` stays cheap and free of import cycles
with :mod:`repro.analysis`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.netsim.stats import StatsSummary

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

__all__ = ["JOB_KINDS", "execute_job"]


def _summary(stats: Any) -> Dict[str, Any]:
    return dict(StatsSummary.from_stats(stats).to_dict())


def _make_obs(
    params: Mapping[str, Any],
) -> Tuple[Optional[Tracer], Optional[MetricsRegistry]]:
    """Build (tracer, metrics) from a spec's optional ``obs`` parameter.

    ``obs`` is a JSON-safe dict -- ``{"trace": true, "trace_capacity": N,
    "metrics": true, "window_ns": W}`` -- so it participates in job keys
    and cache hashing like any other parameter.  Absent or falsy means no
    observability: the simulators keep their zero-overhead hot path and
    results stay byte-identical to un-instrumented runs.
    """
    obs = params.get("obs") or {}
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    if obs.get("trace"):
        from repro.obs import Tracer
        from repro.obs.tracer import DEFAULT_CAPACITY

        tracer = Tracer(
            capacity=obs.get("trace_capacity") or DEFAULT_CAPACITY
        )
    if obs.get("metrics"):
        from repro.obs import MetricsRegistry
        from repro.obs.metrics import DEFAULT_WINDOW_NS

        metrics = MetricsRegistry(
            window_ns=obs.get("window_ns") or DEFAULT_WINDOW_NS
        )
    return tracer, metrics


def _attach_obs_result(
    result: Dict[str, Any],
    tracer: Optional[Tracer],
    metrics: Optional[MetricsRegistry],
) -> Dict[str, Any]:
    """Embed the deterministic observability rollup, if any was collected."""
    if tracer is not None or metrics is not None:
        from repro.obs import obs_payload

        result["obs"] = obs_payload(tracer=tracer, metrics=metrics)
    return result


def _execute_open_loop(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One open-loop cell (a point of Fig. 6 / the hotspot column)."""
    from repro.analysis.experiments import run_open_loop

    tracer, metrics = _make_obs(params)
    stats = run_open_loop(
        params["network"],
        params["n_nodes"],
        params["pattern"],
        params["load"],
        params["packets_per_node"],
        seed=params["seed"],
        until=params["until"],
        tracer=tracer,
        metrics=metrics,
        shards=params.get("shards"),
        shard_latency_ns=params.get("shard_latency_ns", 0.0),
    )
    return _attach_obs_result(_summary(stats), tracer, metrics)


def _execute_workload(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One Fig. 7 cell: hotspot, ping-pong, or an HPC trace replay."""
    from repro import constants as C
    from repro.analysis.experiments import build_network, run_open_loop
    from repro.traffic import (
        HPC_WORKLOADS,
        ping_pong1_pairs,
        ping_pong2_pairs,
        replay_trace,
        run_ping_pong,
    )

    if params.get("shards") not in (None, 1):
        raise ConfigurationError(
            "workload cells are closed-loop (receive hooks drive the "
            "traffic), which the sharded engine does not support; "
            "drop shards for this sweep kind"
        )
    workload = params["workload"]
    n_nodes = params["n_nodes"]
    seed = params["seed"]
    until = params["until"]

    if workload == "hotspot":
        stats = run_open_loop(
            params["network"], n_nodes, "hotspot", C.HEAVY_INPUT_LOAD,
            max(2, params["packets_per_node"] // 4), seed=seed, until=until,
        )
        return _summary(stats)

    if workload in ("ping_pong1", "ping_pong2"):
        pairs_fn = ping_pong1_pairs if workload == "ping_pong1" else ping_pong2_pairs
        net = build_network(params["network"], n_nodes, seed)
        stats = run_ping_pong(
            net, pairs_fn(n_nodes, seed),
            rounds=params["ping_pong_rounds"], until=until,
        )
        return _summary(stats)

    if workload in HPC_WORKLOADS:
        kwargs = dict(params.get("hpc_kwargs") or {})
        trace = HPC_WORKLOADS[workload](n_nodes, seed=seed, **kwargs)
        net = build_network(params["network"], n_nodes, seed)
        return _summary(replay_trace(net, trace, until=until))

    raise ConfigurationError(f"unknown workload {workload!r}")


def _execute_table5(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One Table V row: Baldur at a given multiplicity under transpose."""
    from repro import constants as C
    from repro.core.baldur_network import BaldurNetwork
    from repro.tl.switch_circuit import switch_model
    from repro.traffic import inject_open_loop, transpose

    m = params["multiplicity"]
    model = switch_model(m)
    net = BaldurNetwork(params["n_nodes"], multiplicity=m, seed=params["seed"])
    inject_open_loop(
        net, transpose(params["n_nodes"]), params["load"],
        params["packets_per_node"], seed=params["seed"],
    )
    stats = net.run(
        until=params["until"],
        shards=params.get("shards") or 1,
        shard_latency_ns=params.get("shard_latency_ns", 0.0),
    )
    return {
        "multiplicity": m,
        "gates_per_switch": model.gate_count,
        "switch_latency_ns": model.latency_ns,
        "drop_rate_pct": 100 * stats.drop_rate,
        "paper_drop_rate_pct": C.PAPER_DROP_RATE_PCT.get(m),
        "avg_latency_ns": stats.average_latency,
        "stats": _summary(stats),
    }


def _execute_resilience(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One resilience cell: a network under ``k`` failed switches."""
    from repro.analysis.resilience import run_with_failures
    from repro.faults import ChaosSchedule

    if params.get("shards") not in (None, 1):
        raise ConfigurationError(
            "resilience cells inject faults mid-run, which the sharded "
            "engine does not support; drop shards for this sweep kind"
        )
    chaos_params = params.get("chaos")
    chaos = ChaosSchedule(**chaos_params) if chaos_params else None
    return run_with_failures(
        params["network"],
        params["n_nodes"],
        params["k"],
        load=params["load"],
        packets_per_node=params["packets_per_node"],
        seed=params["seed"],
        until=params["until"],
        chaos=chaos,
    )


def _execute_sensitivity(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One Fig. 9 column: power-advantage ratios under a scaling case."""
    from repro.power.sensitivity import sensitivity_ratios

    return dict(sensitivity_ratios(params["scale"], params["case"]))


JOB_KINDS: Dict[str, Callable[[Mapping[str, Any]], Dict[str, Any]]] = {
    "open_loop": _execute_open_loop,
    "workload": _execute_workload,
    "table5": _execute_table5,
    "resilience": _execute_resilience,
    "sensitivity": _execute_sensitivity,
}
"""Registry of sweep kinds -> executors (extend to add new sweep types)."""


def execute_job(kind: str, params: Mapping[str, Any]) -> Dict[str, Any]:
    """Run one job in the current process and return its result dict."""
    try:
        executor = JOB_KINDS[kind]
    except KeyError:
        raise ConfigurationError(f"unknown job kind {kind!r}") from None
    return executor(params)
