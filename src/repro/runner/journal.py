"""Append-only sweep journal: crash recovery for long campaigns.

A :class:`SweepJournal` is a JSONL checkpoint written next to the result
cache: a header line identifying the sweep (spec payload + code
fingerprint) followed by one self-verifying record per *successfully*
completed job.  :func:`~repro.runner.engine.run_sweep` appends a record
-- flushed and fsynced -- the moment each job finishes, so a SIGKILL'd
or power-cut campaign loses at most the jobs that were in flight.

Resume semantics (``run_sweep(..., resume=path)`` / ``repro-bench ...
--resume``): records whose header matches the current spec and code are
trusted and their jobs are not re-executed; everything else -- a missing
or torn record, a failed job (never journaled), a journal from a
different spec or code version (stale header) -- is recomputed.  Because
job results are pure functions of the spec and results are reassembled
in expansion order, a resumed run's ``SweepResult.to_json()`` is
byte-identical to an uninterrupted one.

Torn-write tolerance: a record is one line ending in ``\\n`` carrying a
digest of its own result; a crash mid-append leaves a final line that
either fails to parse or fails its digest, and loading skips it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Union

from repro.runner.cache import code_fingerprint, result_digest
from repro.runner.spec import SweepSpec, canonical_json

__all__ = ["SweepJournal"]

JOURNAL_VERSION = 1


class SweepJournal:
    """Append-only JSONL checkpoint of one sweep's completed jobs."""

    def __init__(
        self,
        path: Union[str, Path],
        spec: SweepSpec,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        self._header = canonical_json({
            "journal": JOURNAL_VERSION,
            "spec": spec.payload(),
            "code": (
                fingerprint if fingerprint is not None else code_fingerprint()
            ),
        })
        self._fh: Optional[TextIO] = None
        self._matched = False

    # -- reading -------------------------------------------------------------

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Trusted completed results by job key (empty when starting fresh).

        A journal written for a different spec or code version is *stale*:
        none of its records are trusted and :meth:`begin` will truncate
        it.  Torn or tampered records are skipped individually.
        """
        self._matched = False
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except (FileNotFoundError, OSError, UnicodeDecodeError):
            return {}
        if not lines or lines[0] != self._header:
            return {}
        self._matched = True
        records: Dict[str, Dict[str, Any]] = {}
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a mid-append crash
            if not isinstance(record, dict):
                continue
            key = record.get("key")
            result = record.get("result")
            if (
                not isinstance(key, str)
                or not isinstance(result, dict)
                or record.get("digest") != result_digest(result)
            ):
                continue
            records[key] = result
        return records

    # -- writing -------------------------------------------------------------

    def begin(self) -> None:
        """Open the journal for appending, (re)writing the header if the
        file is missing, torn, or belongs to a different spec/code."""
        if self._fh is not None:
            return
        if not self._matched:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(self.path.name + f".tmp.{os.getpid()}")
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(self._header + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._matched = True
        self._fh = open(self.path, "a", encoding="utf-8")

    def record(self, key: str, result: Dict[str, Any]) -> None:
        """Durably append one completed job (flush + fsync per record, so
        a kill immediately afterwards cannot lose it)."""
        assert self._fh is not None, "SweepJournal.begin() not called"
        line = canonical_json({
            "key": key,
            "result": result,
            "digest": result_digest(result),
        })
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        self.begin()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- export --------------------------------------------------------------

    def to_jsonl(self, target: Union[str, Path, TextIO]) -> int:
        """Copy the journal's lines to ``target``; returns the line count.

        Matches the exporter protocol of :mod:`repro.obs.artifacts`, so a
        failing fault-tolerance test can register its journal and CI
        uploads it with the other failure artifacts.
        """
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except (FileNotFoundError, OSError):
            lines = []
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                for line in lines:
                    fh.write(line + "\n")
        else:
            for line in lines:
                target.write(line + "\n")
        return len(lines)
