"""Sharded parallel simulation: conservative time-window PDES.

``repro.shard`` partitions a network's switch graph into shards
(:mod:`repro.shard.plan`), runs each shard on its own
:class:`repro.sim.core.Environment` in a worker process, and synchronizes
the shards with conservative lookahead windows equal to the minimum
inter-shard link delay (:mod:`repro.shard.engine`).  The per-shard RNG
contract and the window protocol are documented in DESIGN.md section 14.

Entry points: ``NetworkSimulator.run(..., shards=N)`` (which delegates to
:func:`repro.shard.engine.run_sharded`), ``--shards`` on the ``repro-bench``
sweep commands, and the plan builders here for partition introspection.
"""

from repro.shard.engine import run_sharded
from repro.shard.plan import (
    ShardPlan,
    host_plan,
    multistage_plan,
    dragonfly_plan,
    fattree_plan,
)
from repro.shard.runtime import ShardContext, shard_stream_seed

__all__ = [
    "ShardPlan",
    "ShardContext",
    "run_sharded",
    "shard_stream_seed",
    "host_plan",
    "multistage_plan",
    "dragonfly_plan",
    "fattree_plan",
]
