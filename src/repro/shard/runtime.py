"""Per-worker runtime state for the sharded engine.

Two message planes cross shard boundaries (DESIGN.md section 14):

* the **packet plane** — timed tuples describing a packet arriving at a
  fabric element or host owned by another shard.  These become real
  events (``schedule_at``) on the receiving kernel at the start of the
  next window, sorted by ``(time, origin_shard, origin_index)`` so the
  schedule is independent of IPC arrival order;
* the **ledger plane** — untimed delivered/terminal notices sent to the
  packet's *source-host* shard, which owns its conservation-ledger entry
  (``_outstanding``).  Notices are applied as barrier metadata in the
  same deterministic order, never as simulated events, so a delivery
  just before the horizon cannot leave its ledger entry dangling.

Message kinds are small-int tags in slot 0 of a plain tuple; tuples
pickle cheaply and the per-window batches are lists of them.

RNG contract: shard ``i`` of a run rooted at ``seed`` draws from streams
derived from ``derive_seed(seed, f"shard:{i}")`` (the same labeled-stream
scheme the sweep engine uses per job, see DESIGN.md section 4).  The
substream labels ("baldur-arbitration", "baldur-beb") are unchanged.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.sim.rand import derive_seed

__all__ = [
    "MSG_ARRIVE",
    "MSG_DELIVER",
    "NOTICE_DELIVERED",
    "NOTICE_TERMINAL",
    "ShardContext",
    "shard_stream_seed",
]

# Packet-plane message kinds (slot 0 of a message tuple).
MSG_ARRIVE = 0
"""Packet enters a fabric stage owned by another shard.
``(MSG_ARRIVE, time, stage, switch, pid, src, dst, size_bytes,
create_time, is_ack, acked_pid, hops)``"""

MSG_DELIVER = 1
"""Packet delivery at a host owned by another shard.
``(MSG_DELIVER, time, pid, src, dst, size_bytes, create_time, is_ack,
acked_pid, hops)``"""

# Ledger-plane notice kinds (slot 0 of a notice tuple; slot 1 is the pid).
NOTICE_DELIVERED = 0
NOTICE_TERMINAL = 1

Message = Tuple[Any, ...]
Notice = Tuple[int, int]


def shard_stream_seed(root_seed: int, shard: int) -> int:
    """The documented per-shard RNG root: ``derive_seed(root, "shard:i")``."""
    return derive_seed(root_seed, f"shard:{shard}")


class ShardContext:
    """Attached to a worker's network as ``_shard_ctx``.

    ``None`` on an unsharded network — every hot-path branch in the
    simulators tests ``_shard_ctx is None`` first, keeping the
    single-kernel path byte-identical.
    """

    __slots__ = (
        "shard",
        "n_shards",
        "host_shard",
        "stage_shard",
        "cut_delay_ns",
        "outboxes",
        "notice_boxes",
        "latency_log",
    )

    def __init__(
        self,
        shard: int,
        n_shards: int,
        host_shard: List[int],
        stage_shard: Optional[List[int]],
        cut_delay_ns: float,
    ) -> None:
        self.shard = shard
        self.n_shards = n_shards
        self.host_shard = host_shard
        self.stage_shard = stage_shard
        self.cut_delay_ns = cut_delay_ns
        self.outboxes: List[List[Message]] = [[] for _ in range(n_shards)]
        self.notice_boxes: List[List[Notice]] = [[] for _ in range(n_shards)]
        # (deliver_time, latency) per local delivery, in execution order;
        # the coordinator merges the per-shard logs into the global
        # ``stats.latencies`` ordered by (time, shard, local index).
        self.latency_log: List[Tuple[float, float]] = []

    def send(self, dest: int, message: Message) -> None:
        """Queue a packet-plane message for shard ``dest`` (this window)."""
        self.outboxes[dest].append(message)

    def notify(self, dest: int, kind: int, pid: int) -> None:
        """Queue a ledger-plane notice for shard ``dest`` (this window)."""
        self.notice_boxes[dest].append((kind, pid))

    def take(self) -> Tuple[List[List[Message]], List[List[Notice]]]:
        """Drain and return this window's outboxes and notice boxes."""
        out, notes = self.outboxes, self.notice_boxes
        self.outboxes = [[] for _ in range(self.n_shards)]
        self.notice_boxes = [[] for _ in range(self.n_shards)]
        return out, notes
