"""Shard partition plans over the repo's topology objects.

A :class:`ShardPlan` answers three questions for the window engine:

* which shard owns each node (hosts always have an owner; fabric elements
  are owned stage-wise, pod-wise, or group-wise depending on the family),
* what the conservative lookahead is (the minimum delay over all
  boundary-crossing edges — every cross-shard message generated at time
  ``t`` arrives no earlier than ``t + lookahead_ns``), and
* which physical links cross the cut (``iter_edges`` / ``boundary``),
  used by the partition-invariant property tests.

Edges are enumerated lazily: a 64k-endpoint Baldur instance has millions
of links and the engine itself only ever needs the ownership arrays and
the lookahead scalar.

Delays attached to edges are *lower bounds* on the modeled hop delay
(serialization time is load-dependent and strictly positive, so it is
excluded), which is exactly what a conservative lookahead needs.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro import constants as C
from repro.errors import ConfigurationError

__all__ = [
    "Node",
    "PlanEdge",
    "ShardPlan",
    "block_shard",
    "multistage_plan",
    "host_plan",
    "dragonfly_plan",
    "fattree_plan",
]

Node = Tuple[Any, ...]
"""A plan node: ``("host", h)``, ``("switch", stage, idx)``,
``("router", rid)``, ``("edge"|"agg", pod, idx)``, or ``("core", c)``."""

PlanEdge = Tuple[Node, Node, float]
"""One directed physical link: ``(src_node, dst_node, min_delay_ns)``."""


def block_shard(index: int, count: int, n_shards: int) -> int:
    """Contiguous-block assignment: item ``index`` of ``count`` -> shard.

    ``index * n_shards // count`` keeps blocks contiguous and balanced to
    within one item, and is the single assignment rule used by every plan
    builder (hosts, stages, pods, groups, cores all use it) so that the
    mapping is trivially deterministic and documented.
    """
    return index * n_shards // count


class ShardPlan:
    """A partition of one network's node/link graph into ``n_shards``."""

    __slots__ = (
        "kind",
        "n_shards",
        "n_nodes",
        "host_shard",
        "stage_shard",
        "lookahead_ns",
        "cut_delay_ns",
        "_edge_fn",
        "_node_fn",
    )

    def __init__(
        self,
        kind: str,
        n_shards: int,
        host_shard: List[int],
        lookahead_ns: float,
        edge_fn: Callable[[], Iterator[PlanEdge]],
        node_fn: Callable[[Node], int],
        stage_shard: Optional[List[int]] = None,
        cut_delay_ns: float = 0.0,
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        if cut_delay_ns < 0 or not math.isfinite(cut_delay_ns):
            raise ConfigurationError(
                f"cut_delay_ns must be finite and >= 0, got {cut_delay_ns}"
            )
        self.kind = kind
        self.n_shards = n_shards
        self.n_nodes = len(host_shard)
        self.host_shard = host_shard
        self.stage_shard = stage_shard
        self.lookahead_ns = lookahead_ns
        self.cut_delay_ns = cut_delay_ns
        self._edge_fn = edge_fn
        self._node_fn = node_fn

    def shard_of(self, node: Node) -> int:
        """Owning shard of a plan node."""
        return self._node_fn(node)

    def iter_edges(self) -> Iterator[PlanEdge]:
        """Yield every physical link once (lazily; may be huge)."""
        return self._edge_fn()

    def boundary(self) -> Dict[int, Tuple[Node, Node, float, int, int]]:
        """Map edge index -> ``(u, v, delay, shard_u, shard_v)`` for every
        boundary-crossing edge.  Keyed by the edge's position in
        ``iter_edges()`` order so parallel links stay distinct."""
        out: Dict[int, Tuple[Node, Node, float, int, int]] = {}
        for i, (u, v, delay) in enumerate(self.iter_edges()):
            su = self._node_fn(u)
            sv = self._node_fn(v)
            if su != sv:
                out[i] = (u, v, delay, su, sv)
        return out

    def validate(self) -> None:
        """Check the plan's internal invariants (test/debug helper).

        * every edge endpoint is owned by a shard in range,
        * ``lookahead_ns`` equals the minimum boundary-edge delay (``inf``
          when nothing crosses), and
        * the lookahead is strictly positive whenever a boundary exists
          (a zero-lookahead plan cannot be executed conservatively).
        """
        min_cut = math.inf
        for u, v, delay in self.iter_edges():
            for node in (u, v):
                shard = self._node_fn(node)
                if not 0 <= shard < self.n_shards:
                    raise ConfigurationError(
                        f"plan {self.kind}: node {node!r} assigned to "
                        f"shard {shard} of {self.n_shards}"
                    )
            if delay < 0 or not math.isfinite(delay):
                raise ConfigurationError(
                    f"plan {self.kind}: edge {u!r}->{v!r} has bad delay {delay}"
                )
            if self._node_fn(u) != self._node_fn(v):
                min_cut = min(min_cut, delay)
        if min_cut != self.lookahead_ns:
            raise ConfigurationError(
                f"plan {self.kind}: lookahead {self.lookahead_ns} != "
                f"min boundary delay {min_cut}"
            )
        if min_cut is not math.inf and not min_cut > 0:
            raise ConfigurationError(
                f"plan {self.kind}: zero-lookahead boundary (min cut delay "
                f"{min_cut}); conservative windows would never advance"
            )


def multistage_plan(
    topology: Any,
    n_shards: int,
    *,
    link_delay_ns: float,
    switch_latency_ns: float,
    cut_delay_ns: float = 0.0,
    kind: str = "baldur",
) -> ShardPlan:
    """Stage-cut plan for a multi-butterfly fabric (Baldur / electrical MB).

    Stages are split into ``n_shards`` contiguous blocks; hosts into
    matching contiguous blocks, so the first host block is co-resident
    with the first stages (injection is usually intra-shard) and the last
    host block with the last stages.  ``cut_delay_ns`` models extra fiber
    on the *cut* inter-stage hops only (e.g. the shards live in separate
    cabinets); the default 0.0 preserves the single-cabinet physics
    exactly, at the price of a lookahead of one switch latency.
    """
    n_nodes = int(topology.n_nodes)
    n_stages = int(topology.n_stages)
    sps = int(topology.switches_per_stage)
    wiring = topology.wiring
    host_shard = [block_shard(h, n_nodes, n_shards) for h in range(n_nodes)]
    stage_shard = [block_shard(s, n_stages, n_shards) for s in range(n_stages)]

    def node_fn(node: Node) -> int:
        if node[0] == "host":
            return host_shard[node[1]]
        if node[0] == "switch":
            return stage_shard[node[1]]
        raise ConfigurationError(f"unknown multistage plan node {node!r}")

    def edge_fn() -> Iterator[PlanEdge]:
        for h in range(n_nodes):
            yield ("host", h), ("switch", 0, topology.entry_switch(h)), link_delay_ns
        for s in range(n_stages):
            last = s == n_stages - 1
            stage_cut = (not last) and stage_shard[s] != stage_shard[s + 1]
            hop = switch_latency_ns + (cut_delay_ns if stage_cut else 0.0)
            for i in range(sps):
                for targets in wiring[s][i]:
                    for t in targets:
                        if last:
                            yield (
                                ("switch", s, i),
                                ("host", t),
                                switch_latency_ns + link_delay_ns,
                            )
                        else:
                            yield ("switch", s, i), ("switch", s + 1, t), hop

    # Lookahead: minimum over the crossing classes actually present.
    min_cut = math.inf
    if n_shards > 1:
        if any(host_shard[h] != stage_shard[0] for h in range(n_nodes)):
            min_cut = min(min_cut, link_delay_ns)
        if any(
            stage_shard[s] != stage_shard[s + 1] for s in range(n_stages - 1)
        ):
            min_cut = min(min_cut, switch_latency_ns + cut_delay_ns)
        last = n_stages - 1
        # Last-stage switch i feeds hosts listed in its wiring targets.
        if any(
            stage_shard[last] != host_shard[t]
            for i in range(sps)
            for targets in wiring[last][i]
            for t in targets
        ):
            min_cut = min(min_cut, switch_latency_ns + link_delay_ns)
    return ShardPlan(
        kind,
        n_shards,
        host_shard,
        min_cut,
        edge_fn,
        node_fn,
        stage_shard=stage_shard,
        cut_delay_ns=cut_delay_ns,
    )


def host_plan(
    n_nodes: int,
    n_shards: int,
    *,
    hop_delay_ns: float,
    kind: str = "ideal",
) -> ShardPlan:
    """Host-cut plan for fabrics with no per-fabric state to partition.

    Used by :class:`~repro.electrical.ideal_net.IdealNetwork` (every
    host pair is one abstract hop of ``hop_delay_ns``) and by
    :class:`~repro.zoo.rotor.RotorNetwork` (rotor switch state is a pure
    function of simulated time, so every worker replicates it and only
    host state is partitioned; deliveries are scheduled end-to-end with a
    delay of at least ``2 * link_delay + switch_latency``, which is the
    ``hop_delay_ns`` a rotor caller passes here).
    """
    host_shard = [block_shard(h, n_nodes, n_shards) for h in range(n_nodes)]

    def node_fn(node: Node) -> int:
        if node[0] == "host":
            return host_shard[node[1]]
        raise ConfigurationError(f"unknown host plan node {node!r}")

    def edge_fn() -> Iterator[PlanEdge]:
        for src in range(n_nodes):
            for dst in range(n_nodes):
                if src != dst:
                    yield ("host", src), ("host", dst), hop_delay_ns

    crossing = n_shards > 1 and len(set(host_shard)) > 1
    min_cut = hop_delay_ns if crossing else math.inf
    return ShardPlan(kind, n_shards, host_shard, min_cut, edge_fn, node_fn)


def dragonfly_plan(topology: Any, n_shards: int) -> ShardPlan:
    """Group-cut plan for a dragonfly: each group is atomic; groups are
    split into contiguous blocks.  Partition-introspection only — the
    buffered dragonfly simulator has zero-lookahead credit feedback and
    cannot be executed sharded (DESIGN.md section 14)."""
    groups = int(topology.groups)
    a = int(topology.routers_per_group)
    h = int(topology.h)
    n_nodes = int(topology.n_nodes)
    group_shard = [block_shard(g, groups, n_shards) for g in range(groups)]
    host_shard = [
        group_shard[topology.router_of_node(node)[0]] for node in range(n_nodes)
    ]

    def node_fn(node: Node) -> int:
        if node[0] == "host":
            return host_shard[node[1]]
        if node[0] == "router":
            return group_shard[node[1] // a]
        raise ConfigurationError(f"unknown dragonfly plan node {node!r}")

    def edge_fn() -> Iterator[PlanEdge]:
        intra = C.DRAGONFLY_INTRA_GROUP_DELAY_NS
        inter = C.DRAGONFLY_INTER_GROUP_DELAY_NS
        for node in range(n_nodes):
            g, local = topology.router_of_node(node)
            yield ("host", node), ("router", topology.router_id(g, local)), intra
        for g in range(groups):
            for i in range(a):
                rid = topology.router_id(g, i)
                # Intra-group all-to-all, each unordered pair once.
                for j in range(i + 1, a):
                    yield ("router", rid), ("router", topology.router_id(g, j)), intra
                # Global channels, enumerated once from the lower group id.
                for link in range(h):
                    peer = topology.global_peer(g, i, link)
                    if g < peer.peer_group:
                        yield (
                            ("router", rid),
                            ("router", topology.router_id(peer.peer_group, peer.peer_router)),
                            inter,
                        )

    crossing = n_shards > 1 and len(set(group_shard)) > 1
    min_cut = C.DRAGONFLY_INTER_GROUP_DELAY_NS if crossing else math.inf
    return ShardPlan("dragonfly", n_shards, host_shard, min_cut, edge_fn, node_fn)


def fattree_plan(topology: Any, n_shards: int) -> ShardPlan:
    """Pod-cut plan for a fat-tree: pods split into contiguous blocks,
    core switches block-distributed independently.  Partition-
    introspection only, like :func:`dragonfly_plan`."""
    k = int(topology.k)
    half = int(topology.half)
    n_core = int(topology.n_core)
    n_nodes = int(topology.n_nodes)
    pod_shard = [block_shard(p, k, n_shards) for p in range(k)]
    core_shard = [block_shard(c, n_core, n_shards) for c in range(n_core)]
    host_shard = [pod_shard[topology.locate_host(host)[0]] for host in range(n_nodes)]
    host_delay, agg_delay, core_delay = C.FATTREE_LEVEL_DELAYS_NS

    def node_fn(node: Node) -> int:
        if node[0] == "host":
            return host_shard[node[1]]
        if node[0] in ("edge", "agg"):
            return pod_shard[node[1]]
        if node[0] == "core":
            return core_shard[node[1]]
        raise ConfigurationError(f"unknown fat-tree plan node {node!r}")

    def edge_fn() -> Iterator[PlanEdge]:
        for host in range(n_nodes):
            pod, edge, _slot = topology.locate_host(host)
            yield ("host", host), ("edge", pod, edge), host_delay
        for pod in range(k):
            for edge in range(half):
                for agg in range(half):
                    yield ("edge", pod, edge), ("agg", pod, agg), agg_delay
            for agg in range(half):
                for core in topology.cores_above_agg(agg):
                    yield ("agg", pod, agg), ("core", core), core_delay

    min_cut = math.inf
    if n_shards > 1:
        if len(set(pod_shard)) > 1 or any(
            core_shard[c] != pod_shard[p] for p in range(k) for c in range(n_core)
        ):
            min_cut = core_delay
    return ShardPlan("fattree", n_shards, host_shard, min_cut, edge_fn, node_fn)
