"""Conservative time-window coordinator for sharded runs.

Window protocol (proof sketch in DESIGN.md section 14).  Let ``W`` be the
plan lookahead — the minimum delay on any boundary-crossing link.  The
coordinator repeatedly:

1. computes ``t_next`` = the minimum over every worker's next local event
   time and every not-yet-delivered cross-shard message time (``inf``
   means global quiescence — stop);
2. sets the window end ``E = min(t_next + W, until)``;
3. hands each worker its sorted inbox (messages and ledger notices that
   fell due) and lets it drain its kernel through ``env.run(until=E)``
   — the repo kernel executes events with ``time <= E`` inclusively;
4. collects each worker's outboxes, notices, and next-event peek.

Safety: any cross-shard message generated inside window ``k`` is stamped
``>= t_gen + W > E_{k-1} + W >= E_k``... more precisely ``t_gen >= t_next``
and message time ``>= t_gen + W >= t_next + W >= E``, so it can never be
due inside the window that produced it; exchanging at barriers is
sufficient.  A message stamped exactly ``E`` is scheduled at the barrier
and executes first thing next window at its correct simulated time.
Messages are sorted by ``(time, origin_shard, origin_index)`` before
scheduling, so the merged order is a pure function of (seed, shards) —
two runs with the same pair are bit-identical regardless of backend.

Progress: every window executes at least the event at ``t_next``
somewhere (or delivers the message that defines it), and window ends
strictly increase until ``until`` is reached, so the loop terminates.

Backends: ``inline`` runs every worker in-process (tests, debugging);
``process`` forks one OS process per shard and exchanges batched pickled
tuples over pipes (the default).  Both produce identical bytes.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ShardingUnsupportedError
from repro.shard.plan import ShardPlan
from repro.shard.runtime import Message, Notice, ShardContext

__all__ = ["run_sharded"]

_INF = math.inf

# (when, packet) injections grouped per shard, in global submit order.
_Injections = List[Tuple[float, Any]]
_WindowResult = Tuple[List[List[Message]], List[List[Notice]], float]


class _ShardWorker:
    """One shard: a private network replica bound to a ShardContext."""

    def __init__(
        self,
        recipe: Tuple[Any, Dict[str, Any]],
        plan: ShardPlan,
        shard: int,
        injections: _Injections,
        next_pid: int,
    ) -> None:
        cls, kwargs = recipe
        self.net = cls(**kwargs)
        ctx = ShardContext(
            shard,
            plan.n_shards,
            plan.host_shard,
            plan.stage_shard,
            plan.cut_delay_ns,
        )
        self.net._shard_bind(ctx, int(kwargs.get("seed", 0)))
        self.net._shard_resubmit(injections, next_pid)

    def peek(self) -> float:
        return float(self.net.env.peek())

    def window(
        self,
        end: Optional[float],
        messages: List[Message],
        notices: List[Notice],
    ) -> _WindowResult:
        """Apply one barrier exchange, then drain the kernel to ``end``.

        ``end=None`` is the post-loop flush: schedule/apply the leftovers
        without advancing the clock (they lie beyond the horizon).
        """
        net = self.net
        if notices:
            net._shard_apply_notices(notices)
        if messages:
            net._shard_schedule_inbox(messages)
        if end is not None and end > net.env.now:
            net.env.run(until=end)
        out, notes = net._shard_ctx.take()
        return out, notes, float(net.env.peek())

    def finalize(self) -> Dict[str, Any]:
        return dict(self.net._shard_export())


def _worker_main(
    conn: Any,
    recipe: Tuple[Any, Dict[str, Any]],
    plan: ShardPlan,
    shard: int,
    injections: _Injections,
    next_pid: int,
) -> None:
    """Forked worker process: serve window commands over a pipe."""
    try:
        worker = _ShardWorker(recipe, plan, shard, injections, next_pid)
        conn.send(("ready", worker.peek()))
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "window":
                conn.send(("ok", worker.window(cmd[1], cmd[2], cmd[3])))
            elif op == "finalize":
                conn.send(("ok", worker.finalize()))
                break
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown shard command {op!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class _InlineBackend:
    """All shards in this process; used by tests and as the fork fallback."""

    def __init__(
        self,
        recipe: Tuple[Any, Dict[str, Any]],
        plan: ShardPlan,
        injections: List[_Injections],
        next_pid: int,
    ) -> None:
        self.workers = [
            _ShardWorker(recipe, plan, shard, injections[shard], next_pid)
            for shard in range(plan.n_shards)
        ]

    def start(self) -> List[float]:
        return [w.peek() for w in self.workers]

    def window(
        self,
        end: Optional[float],
        inboxes: List[List[Message]],
        notice_boxes: List[List[Notice]],
    ) -> List[_WindowResult]:
        return [
            w.window(end, inboxes[i], notice_boxes[i])
            for i, w in enumerate(self.workers)
        ]

    def finalize(self) -> List[Dict[str, Any]]:
        return [w.finalize() for w in self.workers]

    def close(self) -> None:
        self.workers = []


class _ProcessBackend:
    """One forked OS process per shard, star-wired to the coordinator.

    Fork (not spawn) is required: worker construction re-uses the live
    topology object and any packet-filter callables by COW inheritance
    instead of pickling them.
    """

    def __init__(
        self,
        recipe: Tuple[Any, Dict[str, Any]],
        plan: ShardPlan,
        injections: List[_Injections],
        next_pid: int,
    ) -> None:
        ctx = multiprocessing.get_context("fork")
        self.conns: List[Any] = []
        self.procs: List[Any] = []
        for shard in range(plan.n_shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, recipe, plan, shard, injections[shard], next_pid),
                daemon=True,
            )
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def _recv(self, shard: int) -> Any:
        try:
            tag, payload = self.conns[shard].recv()
        except EOFError:
            raise ConfigurationError(
                f"shard worker {shard} died without reporting an error"
            ) from None
        if tag == "error":
            raise ConfigurationError(
                f"shard worker {shard} failed:\n{payload}"
            )
        return payload

    def start(self) -> List[float]:
        return [float(self._recv(s)) for s in range(len(self.conns))]

    def window(
        self,
        end: Optional[float],
        inboxes: List[List[Message]],
        notice_boxes: List[List[Notice]],
    ) -> List[_WindowResult]:
        for s, conn in enumerate(self.conns):
            conn.send(("window", end, inboxes[s], notice_boxes[s]))
        return [self._recv(s) for s in range(len(self.conns))]

    def finalize(self) -> List[Dict[str, Any]]:
        for conn in self.conns:
            conn.send(("finalize",))
        payloads = [self._recv(s) for s in range(len(self.conns))]
        self.close()
        return payloads

    def close(self) -> None:
        for conn in self.conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for proc in self.procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5.0)
        self.conns = []
        self.procs = []


def _extract_injections(net: Any, plan: ShardPlan) -> List[_Injections]:
    """Pull the submitted-but-unrun injection events off the parent kernel.

    ``submit``/``submit_batch`` leave ``(when, seq, net._inject, (packet,))``
    entries on the environment's batch side-list and/or heap.  Anything
    else pending means the caller scheduled custom events the shards
    cannot replay — refuse loudly.
    """
    env = net.env
    entries: List[Tuple[float, int, Any]] = []
    pending = list(env._queue) + list(env._run[env._ridx :])
    for item in pending:
        when, seq, fn, args = item
        if fn != net._inject or len(args) != 1:
            raise ShardingUnsupportedError(
                "sharded run requires a pending event queue containing only "
                f"plain packet injections; found {getattr(fn, '__qualname__', fn)!r}"
            )
        entries.append((when, seq, args[0]))
    entries.sort(key=lambda e: (e[0], e[1]))
    per_shard: List[_Injections] = [[] for _ in range(plan.n_shards)]
    for when, _seq, packet in entries:
        per_shard[plan.host_shard[packet.src]].append((when, packet))
    return per_shard


def _check_unsharded_state(net: Any) -> None:
    """Refuse configurations the sharded engine cannot honor."""
    reasons = []
    if net.receive_hook is not None:
        reasons.append("receive_hook (closed-loop workloads)")
    if net.tracer is not None:
        reasons.append("an attached tracer")
    if net.metrics is not None:
        reasons.append("an attached metrics registry")
    if net.fault_injector is not None:
        reasons.append("fault injection")
    if net.env._profile is not None:
        reasons.append("kernel profiling")
    if net.env.now != 0:
        reasons.append("a non-zero simulation clock (run() already called)")
    if reasons:
        raise ShardingUnsupportedError(
            "cannot shard this run: " + "; ".join(reasons)
        )


def _route(
    results: Sequence[_WindowResult], n_shards: int
) -> Tuple[List[List[Message]], List[List[Notice]], float]:
    """Merge worker outboxes into deterministic per-shard inboxes.

    Inboxes sort by ``(time, origin_shard, origin_index)``; notices
    concatenate in origin-shard order.  Returns the minimum pending
    message time (drives window skipping).
    """
    inboxes: List[List[Tuple[float, int, int, Message]]] = [
        [] for _ in range(n_shards)
    ]
    notice_boxes: List[List[Notice]] = [[] for _ in range(n_shards)]
    pending_min = _INF
    for origin in range(n_shards):
        out, notes, _peek = results[origin]
        for dest in range(n_shards):
            for idx, msg in enumerate(out[dest]):
                when = float(msg[1])
                if when < pending_min:
                    pending_min = when
                inboxes[dest].append((when, origin, idx, msg))
            notice_boxes[dest].extend(notes[dest])
    sorted_inboxes: List[List[Message]] = []
    for box in inboxes:
        box.sort(key=lambda e: (e[0], e[1], e[2]))
        sorted_inboxes.append([e[3] for e in box])
    return sorted_inboxes, notice_boxes, pending_min


def run_sharded(
    net: Any,
    shards: int,
    until: Optional[float] = None,
    shard_latency_ns: float = 0.0,
    backend: Optional[str] = None,
) -> Any:
    """Execute ``net``'s submitted workload across ``shards`` kernels.

    Called by ``NetworkSimulator.run(shards=N)``; returns the merged
    :class:`~repro.netsim.stats.LatencyStats` after a global ``audit()``.

    ``shard_latency_ns`` adds extra fiber delay on cut inter-stage hops
    (stage-cut plans only) — 0.0 preserves single-cabinet physics and is
    the default; the perf harness passes 100.0 ns (inter-cabinet fiber,
    paper Table VI) to widen the lookahead window.

    ``backend`` is ``"process"`` (default; requires fork) or ``"inline"``.
    Both are bit-identical; ``REPRO_SHARD_BACKEND`` overrides the default.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        raise ConfigurationError(
            "run_sharded requires shards >= 2; shards=1 uses the "
            "single-kernel path in NetworkSimulator.run"
        )
    if until is not None and (until < 0 or not math.isfinite(until)):
        raise ConfigurationError(f"until must be finite and >= 0, got {until}")
    _check_unsharded_state(net)
    net._shard_check_supported()
    reason = getattr(net, "_shard_exec_unsupported_reason", None)
    if reason is not None:
        raise ShardingUnsupportedError(
            f"{type(net).__name__} cannot run sharded: {reason}"
        )
    plan = net.shard_plan(shards, shard_latency_ns=shard_latency_ns)
    lookahead = plan.lookahead_ns
    if lookahead != _INF and not lookahead > 0:
        raise ShardingUnsupportedError(
            f"plan for {type(net).__name__} has zero lookahead; "
            "conservative windows would never advance"
        )
    injections = _extract_injections(net, plan)
    recipe = net.shard_recipe()

    if backend is None:
        backend = os.environ.get("REPRO_SHARD_BACKEND", "process")
    if backend == "process" and "fork" not in multiprocessing.get_all_start_methods():
        backend = "inline"  # pragma: no cover - non-POSIX fallback
    if backend == "process":
        engine: Any = _ProcessBackend(recipe, plan, injections, net._next_pid)
    elif backend == "inline":
        engine = _InlineBackend(recipe, plan, injections, net._next_pid)
    else:
        raise ConfigurationError(
            f"unknown shard backend {backend!r} (expected 'process' or 'inline')"
        )

    try:
        peeks = engine.start()
        inboxes: List[List[Message]] = [[] for _ in range(shards)]
        notice_boxes: List[List[Notice]] = [[] for _ in range(shards)]
        pending_min = _INF
        horizon = _INF if until is None else float(until)
        while True:
            t_next = min(min(peeks), pending_min)
            if t_next == _INF or t_next > horizon:
                break
            end = t_next + lookahead
            if end > horizon:
                end = horizon
            results = engine.window(end, inboxes, notice_boxes)
            peeks = [r[2] for r in results]
            inboxes, notice_boxes, pending_min = _route(results, shards)
        # Post-loop flush: schedule/apply leftovers beyond the horizon so
        # the conservation ledger closes; clocks do not advance and (by
        # the lookahead argument) no new cross-shard traffic can appear.
        if any(inboxes) or any(notice_boxes):
            results = engine.window(None, inboxes, notice_boxes)
            for out, notes, _peek in results:
                if any(out) or any(notes):  # pragma: no cover - protocol bug
                    raise ConfigurationError(
                        "shard flush produced new cross-shard traffic"
                    )
        payloads = engine.finalize()
    finally:
        engine.close()

    net._shard_absorb(payloads, plan, until)
    net.audit()
    return net.stats
