"""Fault model library (Sec. IV-F fault shapes, generalized).

Every fault targets one switch, addressed by the network's *flat switch
id* (:meth:`~repro.netsim.network.NetworkSimulator.switch_ids`), and is
active over a time window ``[start_ns, end_ns)`` -- a finite window makes
any fault *transient*; the default window is permanent.

Four shapes cover the paper's reliability discussion:

* :class:`FailStop` -- the switch drops every packet it sees (the gate
  stuck-at faults of Sec. IV-F);
* :class:`DegradedLink` -- each traversing packet is independently
  corrupted (and therefore dropped at the CRC check) with a fixed
  probability; :func:`degraded_link_from_jitter` derives that probability
  from the timing-jitter error model of :mod:`repro.tl.reliability`;
* transient variants of either -- any fault with a finite ``end_ns``;
* :class:`SlowGateDrift` -- the switch still routes correctly but its
  latency widens (aging TL gates), optionally growing over time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import constants as C
from repro.errors import FaultInjectionError

__all__ = [
    "Fault",
    "FailStop",
    "DegradedLink",
    "SlowGateDrift",
    "degraded_link_from_jitter",
]


@dataclass(frozen=True)
class Fault:
    """Base fault: a switch id plus an activity window ``[start, end)``."""

    switch_id: int
    start_ns: float = 0.0
    end_ns: float = math.inf

    def __post_init__(self):
        if self.switch_id < 0:
            raise FaultInjectionError(
                f"switch id must be non-negative, got {self.switch_id}"
            )
        if self.start_ns < 0:
            raise FaultInjectionError(
                f"fault start must be non-negative, got {self.start_ns}"
            )
        if self.end_ns <= self.start_ns:
            raise FaultInjectionError(
                f"fault window is empty: [{self.start_ns}, {self.end_ns})"
            )

    def active(self, now: float) -> bool:
        """True while the fault affects traffic."""
        return self.start_ns <= now < self.end_ns

    @property
    def transient(self) -> bool:
        """True for faults that repair themselves (finite window)."""
        return math.isfinite(self.end_ns)


@dataclass(frozen=True)
class FailStop(Fault):
    """The switch drops 100% of traffic while active."""


@dataclass(frozen=True)
class DegradedLink(Fault):
    """Each traversing packet is corrupted with ``corruption_prob``.

    A corrupted packet fails its CRC at the destination, which in a
    bufferless network is indistinguishable from an in-network drop, so
    the simulators discard it at the degraded switch.
    """

    corruption_prob: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 <= self.corruption_prob <= 1.0:
            raise FaultInjectionError(
                f"corruption probability must be in [0, 1], "
                f"got {self.corruption_prob}"
            )


@dataclass(frozen=True)
class SlowGateDrift(Fault):
    """Aging gates widen the switch latency without corrupting data.

    ``extra_latency_ns`` applies for the whole active window;
    ``drift_ns_per_ms`` adds a linear widening measured from the fault
    start (gradual degradation).
    """

    extra_latency_ns: float = 0.0
    drift_ns_per_ms: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if self.extra_latency_ns < 0 or self.drift_ns_per_ms < 0:
            raise FaultInjectionError("gate drift terms must be non-negative")

    def extra_at(self, now: float) -> float:
        """Latency widening (ns) this fault contributes at time ``now``."""
        if not self.active(now):
            return 0.0
        elapsed_ms = (now - self.start_ns) / 1e6
        return self.extra_latency_ns + self.drift_ns_per_ms * elapsed_ms


def degraded_link_from_jitter(
    switch_id: int,
    jitter_variance_ps2: float,
    packet_bits: int = C.PACKET_SIZE_BYTES * 8,
    start_ns: float = 0.0,
    end_ns: float = math.inf,
) -> DegradedLink:
    """A :class:`DegradedLink` whose corruption probability follows the
    Sec. IV-F jitter error model.

    ``jitter_variance_ps2`` is the (degraded) per-element timing-jitter
    variance; the per-bit decode error probability comes from
    :func:`repro.tl.reliability.error_probability` at the paper's 0.42T
    margin, and a packet is corrupted when any of its bits is
    (``1 - (1 - p_bit) ** packet_bits``).  The healthy variance of 1.53
    ps^2 yields a negligible ~1e-9 per bit; a jitter fault is modelled by
    inflating the variance.
    """
    from repro.tl.reliability import error_probability

    if jitter_variance_ps2 <= 0:
        raise FaultInjectionError(
            f"jitter variance must be positive, got {jitter_variance_ps2}"
        )
    if packet_bits < 1:
        raise FaultInjectionError("packet_bits must be >= 1")
    p_bit = error_probability(jitter_variance_ps2=jitter_variance_ps2)
    p_packet = 1.0 - (1.0 - p_bit) ** packet_bits
    return DegradedLink(
        switch_id,
        start_ns=start_ns,
        end_ns=end_ns,
        corruption_prob=p_packet,
    )
