"""Chaos scheduling: MTBF/MTTR-driven failure arrival processes.

A :class:`ChaosSchedule` turns reliability parameters into concrete,
seeded fault windows: each switch independently alternates between up
intervals (exponential with mean ``mtbf_ns``) and down intervals
(exponential with mean ``mttr_ns``) over a fixed horizon -- the standard
alternating-renewal availability model.  The generated faults are plain
:class:`~repro.faults.models.Fault` windows, so one schedule applies
identically to Baldur and the electrical baselines, and two runs with the
same seed see byte-identical failure timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import FaultInjectionError
from repro.faults.models import DegradedLink, FailStop, Fault
from repro.sim.rand import stream

__all__ = ["ChaosSchedule"]


@dataclass(frozen=True)
class ChaosSchedule:
    """An MTBF/MTTR on/off failure process over a simulation horizon.

    ``kind`` selects the fault shape injected during down intervals:
    ``"fail_stop"`` (default) or ``"degraded"`` (corruption with
    ``corruption_prob``).  Expected availability of each switch is
    ``mtbf / (mtbf + mttr)``.
    """

    mtbf_ns: float
    mttr_ns: float
    horizon_ns: float
    seed: int = 0
    kind: str = "fail_stop"
    corruption_prob: float = 1.0

    def __post_init__(self):
        if self.mtbf_ns <= 0 or self.mttr_ns <= 0:
            raise FaultInjectionError(
                f"MTBF and MTTR must be positive, got "
                f"mtbf={self.mtbf_ns}, mttr={self.mttr_ns}"
            )
        if self.horizon_ns <= 0:
            raise FaultInjectionError(
                f"horizon must be positive, got {self.horizon_ns}"
            )
        if self.kind not in ("fail_stop", "degraded"):
            raise FaultInjectionError(
                f"unknown chaos fault kind {self.kind!r}"
            )

    @property
    def availability(self) -> float:
        """Steady-state fraction of time each switch is up."""
        return self.mtbf_ns / (self.mtbf_ns + self.mttr_ns)

    def faults_for(self, switch_ids: Iterable[int]) -> List[Fault]:
        """Generate the fault windows for the given switches.

        Each switch draws from its own named stream, so the timeline of
        one switch is independent of which other switches participate.
        """
        faults: List[Fault] = []
        for sid in switch_ids:
            rng = stream(self.seed, f"chaos-{sid}")
            t = 0.0
            while True:
                t += rng.expovariate(1.0 / self.mtbf_ns)
                if t >= self.horizon_ns:
                    break
                down = rng.expovariate(1.0 / self.mttr_ns)
                faults.append(self._make_fault(sid, t, t + down))
                t += down
        return faults

    def _make_fault(self, sid: int, start: float, end: float) -> Fault:
        if self.kind == "degraded":
            return DegradedLink(
                sid, start_ns=start, end_ns=end,
                corruption_prob=self.corruption_prob,
            )
        return FailStop(sid, start_ns=start, end_ns=end)
