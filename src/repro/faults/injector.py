"""The fault injector: live fault state consulted by every simulator.

One :class:`FaultInjector` holds an arbitrary mix of fault models and
answers three questions for a (switch, time) pair -- should the packet be
dropped (fail-stop or corruption draw), and how much extra latency does
the switch exhibit (gate drift).  Corruption draws use a dedicated seeded
stream so runs stay bit-for-bit reproducible.

Attach with :meth:`repro.netsim.network.NetworkSimulator.attach_faults`;
the same injector API drives Baldur and all three electrical baselines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import FaultInjectionError
from repro.faults.models import DegradedLink, FailStop, Fault, SlowGateDrift
from repro.sim.rand import stream

__all__ = ["FaultInjector"]


class FaultInjector:
    """Holds fault models and evaluates them against live traffic."""

    def __init__(self, faults: Iterable[Fault] = (), seed: int = 0):
        self._by_switch: Dict[int, List[Fault]] = {}
        self._rng = stream(seed, "fault-injector")
        # Per-switch count of packets this injector discarded (diagnosis
        # ground truth and drop attribution for the resilience reports).
        self.drops_by_switch: Dict[int, int] = {}
        for fault in faults:
            self.add(fault)

    def add(self, fault: Fault) -> None:
        """Register one fault (validation happened at construction)."""
        if not isinstance(fault, Fault):
            raise FaultInjectionError(
                f"expected a Fault model, got {type(fault).__name__}"
            )
        self._by_switch.setdefault(fault.switch_id, []).append(fault)

    @property
    def faults(self) -> List[Fault]:
        """Every registered fault, in registration order per switch."""
        return [f for faults in self._by_switch.values() for f in faults]

    def faults_at(self, switch_id: int, now: float) -> List[Fault]:
        """The faults active on ``switch_id`` at time ``now``."""
        return [
            f for f in self._by_switch.get(switch_id, ()) if f.active(now)
        ]

    def failed(self, switch_id: int, now: float) -> bool:
        """True if a fail-stop fault is active on the switch."""
        return any(
            isinstance(f, FailStop)
            for f in self.faults_at(switch_id, now)
        )

    def corruption_prob(self, switch_id: int, now: float) -> float:
        """Combined per-packet corruption probability of the active
        degraded-link faults (independent corruption events)."""
        survive = 1.0
        for fault in self.faults_at(switch_id, now):
            if isinstance(fault, DegradedLink):
                survive *= 1.0 - fault.corruption_prob
        return 1.0 - survive

    def extra_latency_ns(self, switch_id: int, now: float) -> float:
        """Total latency widening from active slow-gate-drift faults."""
        extra = 0.0
        for fault in self._by_switch.get(switch_id, ()):
            if isinstance(fault, SlowGateDrift):
                extra += fault.extra_at(now)
        return extra

    def check_drop(self, switch_id: int, now: float) -> bool:
        """Evaluate drop-producing faults for one packet traversal.

        Fail-stop faults drop deterministically; degraded links draw a
        Bernoulli sample from the injector's seeded stream.  Drops are
        attributed to the switch in :attr:`drops_by_switch`.
        """
        faults = self._by_switch.get(switch_id)
        if not faults:
            return False
        drop = self.failed(switch_id, now)
        if not drop:
            prob = self.corruption_prob(switch_id, now)
            drop = prob > 0.0 and self._rng.random() < prob
        if drop:
            self.drops_by_switch[switch_id] = (
                self.drops_by_switch.get(switch_id, 0) + 1
            )
        return drop

    def describe(self) -> str:
        """Human-readable fault inventory."""
        total = sum(len(v) for v in self._by_switch.values())
        return (
            f"FaultInjector({total} faults on "
            f"{len(self._by_switch)} switches)"
        )
