"""Unified fault-injection and resilience subsystem.

Four pieces, threaded through every network simulator:

* **fault models** (:mod:`repro.faults.models`) -- fail-stop switches,
  degraded links driven by the Sec. IV-F jitter error model, transient
  windows, and slow-gate latency drift;
* **chaos schedules** (:mod:`repro.faults.chaos`) -- seeded MTBF/MTTR
  failure arrival processes that flip faults on and off during a run;
* **the injector** (:mod:`repro.faults.injector`) -- live fault state
  consulted by Baldur and the electrical baselines through one API
  (:meth:`~repro.netsim.network.NetworkSimulator.attach_faults`);
* **conservation audits** (:mod:`repro.faults.audit`) -- the always-on
  ``injected = delivered + terminal_drops + given_up + in_flight``
  invariant check behind every ``run()``.

Degraded-mode operation (mask a diagnosed switch and route around it via
path multiplicity) lives on :class:`~repro.core.baldur_network.
BaldurNetwork` itself; the experiment drivers are in
:mod:`repro.analysis.resilience`.
"""

from repro.faults.audit import audit_all, audit_conservation, format_ledger
from repro.faults.chaos import ChaosSchedule
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    DegradedLink,
    FailStop,
    Fault,
    SlowGateDrift,
    degraded_link_from_jitter,
)

__all__ = [
    "Fault",
    "FailStop",
    "DegradedLink",
    "SlowGateDrift",
    "degraded_link_from_jitter",
    "FaultInjector",
    "ChaosSchedule",
    "audit_conservation",
    "audit_all",
    "format_ledger",
]
