"""Conservation auditing helpers.

The invariant itself lives in
:meth:`repro.netsim.network.NetworkSimulator.audit` (it is checked after
every ``run()``); this module adds the cross-network convenience used by
the resilience experiments and benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable

__all__ = ["audit_conservation", "audit_all", "format_ledger"]


def audit_conservation(network) -> Dict[str, int]:
    """Audit one network and return its conservation ledger.

    Raises :class:`~repro.errors.InvariantViolationError` if
    ``injected != delivered + terminal_drops + given_up + in_flight``.
    """
    return network.audit()


def format_ledger(ledger: Dict[str, int]) -> str:
    """One-line rendering of a conservation ledger."""
    return (
        f"injected={ledger['injected']} = "
        f"delivered={ledger['delivered']} "
        f"+ terminal_drops={ledger['terminal_drops']} "
        f"+ given_up={ledger['given_up']} "
        f"+ in_flight={ledger['in_flight']}"
    )


def audit_all(networks: Iterable) -> Dict[str, Dict[str, int]]:
    """Audit several networks; keys are ``describe()`` or class names."""
    out = {}
    for network in networks:
        name = (
            network.describe()
            if hasattr(network, "describe")
            else type(network).__name__
        )
        out[name] = network.audit()
    return out
