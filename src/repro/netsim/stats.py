"""Latency and delivery statistics collection (Sec. V-B metrics)."""

from __future__ import annotations

import hashlib
import math
import warnings
from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Sequence

__all__ = ["LatencyStats", "StatsSummary", "geomean"]


class LatencyStats:
    """Accumulates per-packet latencies and drop/retransmission counts.

    Reports the two metrics the paper plots: average packet latency and
    tail (99th-percentile) packet latency, plus drop-rate bookkeeping for
    Table V.
    """

    def __init__(self):
        self.latencies: List[float] = []
        self.injected = 0
        self.delivered = 0
        self.drops = 0
        self.retransmissions = 0
        self.ack_drops = 0
        self.terminal_drops = 0
        self.given_up = 0
        self.in_flight = 0

    def record_injection(self) -> None:
        """Count one first-attempt packet injection."""
        self.injected += 1

    def record_delivery(self, latency: float) -> None:
        """Count one delivered packet with its end-to-end latency."""
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self.delivered += 1
        self.latencies.append(latency)

    def record_drop(self, is_ack: bool = False) -> None:
        """Count one in-network packet drop."""
        if is_ack:
            self.ack_drops += 1
        else:
            self.drops += 1

    def record_retransmission(self) -> None:
        """Count one retransmission attempt."""
        self.retransmissions += 1

    def record_terminal_drop(self) -> None:
        """Count one data packet lost in-network for good (no retransmission
        path exists: retransmission disabled, an in-network filter, or a
        fail-stop/corruption fault in a lossless electrical network)."""
        self.terminal_drops += 1

    def record_give_up(self) -> None:
        """Count one undelivered data packet abandoned after max retries."""
        self.given_up += 1

    @property
    def average_latency(self) -> float:
        """Mean end-to-end latency over delivered packets."""
        if not self.latencies:
            return float("nan")
        return sum(self.latencies) / len(self.latencies)

    @property
    def tail_latency(self) -> float:
        """99th-percentile end-to-end latency (the paper's 'tail')."""
        return self.percentile(99.0)

    def percentile(self, pct: float) -> float:
        """Latency percentile using nearest-rank on the sorted sample.

        Nearest-rank (no interpolation): the value at index
        ``ceil(pct/100 * n) - 1`` of the sorted sample.  Beware small
        samples -- with fewer than 100 latencies the 99th percentile is
        simply the maximum, so a single outlier *is* the reported tail.
        Consumers should check the sample size (``n_latencies`` in
        :meth:`summary` and :class:`StatsSummary`) before reading tail
        estimates as population percentiles.
        """
        if not self.latencies:
            return float("nan")
        if not 0 < pct <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {pct}")
        ordered = sorted(self.latencies)
        rank = max(0, math.ceil(pct / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    @property
    def drop_rate(self) -> float:
        """Dropped data packets / total data-packet transmission attempts."""
        attempts = self.injected + self.retransmissions
        if attempts == 0:
            return 0.0
        return self.drops / attempts

    @property
    def delivery_ratio(self) -> float:
        """Delivered / injected (should be 1.0 once retransmission works)."""
        if self.injected == 0:
            return float("nan")
        return self.delivered / self.injected

    @property
    def accounted(self) -> int:
        """Packets whose fate is known: delivered, terminally dropped,
        given up, or still in flight (``in_flight`` is refreshed by
        :meth:`~repro.netsim.network.NetworkSimulator.audit`)."""
        return (
            self.delivered + self.terminal_drops + self.given_up
            + self.in_flight
        )

    def conservation(self) -> Dict[str, int]:
        """The packet-conservation ledger (Sec. IV-E accounting).

        ``injected = delivered + terminal_drops + given_up + in_flight``
        must hold at every instant; ``balance`` is the discrepancy (zero
        for a leak-free run).
        """
        return {
            "injected": self.injected,
            "delivered": self.delivered,
            "terminal_drops": self.terminal_drops,
            "given_up": self.given_up,
            "in_flight": self.in_flight,
            "balance": self.injected - self.accounted,
        }

    def summary(self) -> Dict[str, float]:
        """A dict of the headline metrics.

        ``n_latencies`` accompanies ``tail_latency_ns`` so readers can
        judge the tail estimate (nearest-rank p99 equals the sample max
        below 100 samples -- see :meth:`percentile`).
        """
        return {
            "injected": self.injected,
            "delivered": self.delivered,
            "avg_latency_ns": self.average_latency,
            "tail_latency_ns": self.tail_latency,
            "n_latencies": len(self.latencies),
            "drop_rate": self.drop_rate,
            "retransmissions": self.retransmissions,
            "given_up": self.given_up,
        }


@dataclass(frozen=True)
class StatsSummary:
    """An immutable, JSON-round-trippable view of a finished run's stats.

    This is what sweep jobs return across process boundaries and what the
    result cache stores.  It mirrors the read API of :class:`LatencyStats`
    (``average_latency``, ``tail_latency``, ``drop_rate``, ...) so
    experiment drivers and benches work identically on live and cached
    results, and it carries ``latency_digest`` -- a SHA-256 over the
    ordered per-packet latency sequence -- so two runs can be compared for
    *trace* equality without shipping the full latency list around.
    """

    injected: int
    delivered: int
    drops: int
    ack_drops: int
    terminal_drops: int
    given_up: int
    retransmissions: int
    in_flight: int
    n_latencies: int
    avg_latency_ns: float
    tail_latency_ns: float
    p50_latency_ns: float
    latency_digest: str

    @classmethod
    def from_stats(cls, stats: "LatencyStats") -> "StatsSummary":
        """Freeze a :class:`LatencyStats` into a summary."""
        digest = hashlib.sha256()
        for latency in stats.latencies:
            digest.update(repr(latency).encode())
            digest.update(b",")
        return cls(
            injected=stats.injected,
            delivered=stats.delivered,
            drops=stats.drops,
            ack_drops=stats.ack_drops,
            terminal_drops=stats.terminal_drops,
            given_up=stats.given_up,
            retransmissions=stats.retransmissions,
            in_flight=stats.in_flight,
            n_latencies=len(stats.latencies),
            avg_latency_ns=stats.average_latency,
            tail_latency_ns=stats.tail_latency,
            p50_latency_ns=stats.percentile(50.0),
            latency_digest=digest.hexdigest(),
        )

    _NULLABLE_FLOATS = ("avg_latency_ns", "tail_latency_ns", "p50_latency_ns")

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StatsSummary":
        """Rebuild a summary from :meth:`to_dict` output (cache/JSON).

        Latency fields are NaN when nothing was delivered; RFC 8259 JSON
        has no NaN literal, so :func:`~repro.runner.spec.canonical_json`
        serializes them as ``null`` and this inverse maps ``None`` back.
        """
        fields = {f: payload[f] for f in cls.__dataclass_fields__}
        for name in cls._NULLABLE_FLOATS:
            if fields[name] is None:
                fields[name] = float("nan")
        return cls(**fields)

    def to_dict(self) -> Dict:
        """JSON-safe payload (inverse of :meth:`from_dict`)."""
        return asdict(self)

    # -- LatencyStats-compatible read API -----------------------------------

    @property
    def average_latency(self) -> float:
        """Mean end-to-end latency over delivered packets."""
        return self.avg_latency_ns

    @property
    def tail_latency(self) -> float:
        """99th-percentile end-to-end latency."""
        return self.tail_latency_ns

    @property
    def drop_rate(self) -> float:
        """Dropped data packets / total data-packet transmission attempts."""
        attempts = self.injected + self.retransmissions
        if attempts == 0:
            return 0.0
        return self.drops / attempts

    @property
    def delivery_ratio(self) -> float:
        """Delivered / injected."""
        if self.injected == 0:
            return float("nan")
        return self.delivered / self.injected


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (used for Fig. 7 cross-workload summaries).

    Returns NaN (with a :class:`RuntimeWarning`) for an empty sequence or
    any non-positive/non-finite input instead of raising: a saturated or
    zero-delivery sweep cell yields NaN/0 ratios, and one bad cell should
    degrade the cross-workload summary, not crash the whole report.
    Callers that want hard failures can check ``math.isnan`` on the
    result."""
    if not values:
        warnings.warn(
            "geomean of empty sequence is NaN", RuntimeWarning, stacklevel=2
        )
        return float("nan")
    bad = [v for v in values if not math.isfinite(v) or v <= 0]
    if bad:
        warnings.warn(
            f"geomean undefined for non-positive/non-finite values {bad!r}; "
            "returning NaN",
            RuntimeWarning,
            stacklevel=2,
        )
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))
