"""Uniform network-simulator driver shared by Baldur and the baselines.

Every network exposes the same API:

* :meth:`NetworkSimulator.submit` -- inject a message at a given time;
* :meth:`NetworkSimulator.run` -- advance the simulation;
* ``stats`` -- a :class:`~repro.netsim.stats.LatencyStats`;
* ``receive_hook`` -- optional callback fired on each delivery (used by
  closed-loop workloads like ping_pong).

Open-loop experiments pre-schedule all messages; closed-loop experiments
submit from inside the hook.

The base class also owns two cross-cutting resilience facilities used by
:mod:`repro.faults`:

* a **packet ledger** -- every submitted data packet is tracked until it is
  delivered, terminally dropped, or given up; :meth:`NetworkSimulator.audit`
  checks the conservation invariant ``injected = delivered + terminal_drops
  + given_up + in_flight`` after every run and raises
  :class:`~repro.errors.InvariantViolationError` on a leak;
* **fault attachment** -- :meth:`NetworkSimulator.attach_faults` installs a
  :class:`~repro.faults.FaultInjector` and wires its fail-stop/corruption/
  slow-gate checks into every switch the network exposes via
  :meth:`NetworkSimulator.iter_switches`.

A third cross-cutting facility is the **observability plane**
(:mod:`repro.obs`): :meth:`NetworkSimulator.attach_tracer` and
:meth:`NetworkSimulator.attach_metrics` hang a packet-lifecycle
:class:`~repro.obs.Tracer` and/or a windowed per-switch
:class:`~repro.obs.MetricsRegistry` off the same ``iter_switches``
plumbing faults use.  Both default to ``None`` and cost a single
``is None`` check per hook site when detached; attached observers are
strictly passive (no RNG draws, no state writes), so they can never
change simulation results.
"""

from __future__ import annotations

import functools

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import constants as C
from repro.errors import (
    ConfigurationError,
    InvariantViolationError,
    ShardingUnsupportedError,
)
from repro.netsim.packet import Packet
from repro.netsim.stats import LatencyStats
from repro.shard.runtime import NOTICE_DELIVERED, NOTICE_TERMINAL
from repro.sim import Environment

__all__ = ["NetworkSimulator"]


class NetworkSimulator:
    """Base class: clock, stats, packet-id allocation, delivery plumbing."""

    # Slots keep hot-path attribute reads (tracer, metrics, fault_injector
    # are checked on every hop of every simulator) out of an instance
    # dict.  Subclasses that declare no __slots__ of their own still get a
    # dict for their extra attributes; BaldurNetwork declares slots too.
    __slots__ = (
        "n_nodes",
        "env",
        "stats",
        "receive_hook",
        "_next_pid",
        "fault_injector",
        "tracer",
        "metrics",
        "_outstanding",
        "_shard_ctx",
        "_ledger_corrections",
    )

    # Networks whose event model cannot be executed sharded set this to a
    # human-readable reason (the buffered electrical fabrics: zero-latency
    # credit feedback means zero conservative lookahead, DESIGN.md sec. 14).
    # None means run(shards=N) may proceed if the class defines a plan.
    _shard_exec_unsupported_reason: Optional[str] = None

    def __init__(self, n_nodes: int):
        if n_nodes < 2:
            raise ConfigurationError("a network needs at least 2 nodes")
        self.n_nodes = n_nodes
        self.env = Environment()
        self.stats = LatencyStats()
        self.receive_hook: Optional[Callable[[Packet, float], None]] = None
        self._next_pid = 0
        self.fault_injector = None
        # Observability plane (repro.obs); None = zero-overhead hook sites.
        self.tracer = None
        self.metrics = None
        # Conservation ledger: pids of data packets whose fate is still open.
        self._outstanding: Set[int] = set()
        # Sharded execution (repro.shard).  _shard_ctx is None except on a
        # worker replica inside a sharded run; every hot-path branch tests
        # `is None` first so the single-kernel path is byte-identical.
        self._shard_ctx: Optional[Any] = None
        # Cross-shard outcome conflicts resolved at barriers (a packet both
        # delivered remotely and given up locally inside one lookahead
        # window); audit() balances the ledger with this term.
        self._ledger_corrections = 0

    # -- message injection ------------------------------------------------------

    def submit(
        self,
        src: int,
        dst: int,
        size_bytes: int = C.PACKET_SIZE_BYTES,
        time: float = 0.0,
    ) -> Packet:
        """Create a packet from ``src`` to ``dst`` at ``time`` and inject it.

        Injection is scheduled, so :meth:`submit` may be called before
        :meth:`run` (open loop) or from a delivery hook (closed loop).

        Validate-then-commit: a rejected submission (bad endpoints or a
        past timestamp) raises *before* any state is touched, so the
        stats ledger, the conservation ledger, and the pid counter are
        exactly as they were -- a failed submit never poisons a later
        :meth:`audit`.
        """
        self._validate_endpoints(src, dst)
        if time < self.env.now:
            raise ConfigurationError(
                f"cannot submit in the past: t={time} < now={self.env.now}"
            )
        packet = Packet(
            pid=self._alloc_pid(),
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            create_time=time,
        )
        self.stats.record_injection()
        self._outstanding.add(packet.pid)
        self.env.schedule_at(time, self._inject, packet)
        return packet

    def submit_batch(self, entries) -> List[Packet]:
        """Inject many messages at once: ``(src, dst, size_bytes, time)``.

        Equivalent to calling :meth:`submit` per entry in iteration order
        (identical pids, stats, ledger, and event ordering -- byte-
        identical results), but funnels the injections through
        :meth:`~repro.sim.Environment.schedule_batch`, which heapifies
        once instead of pushing one event at a time when the queue is
        empty -- the open-loop pre-scheduling case.

        The batch is all-or-nothing: every entry is validated before any
        state is committed, so one bad entry (out-of-range endpoint or a
        past timestamp) raises with stats, pids, the conservation
        ledger, and the event queue untouched -- never a half-submitted
        batch that a later :meth:`audit` flags as a leak.
        """
        now = self.env.now
        batch = list(entries)
        # Pass 1: validate everything; nothing below this loop can fail.
        for src, dst, _size_bytes, time in batch:
            self._validate_endpoints(src, dst)
            if time < now:
                raise ConfigurationError(
                    f"cannot submit in the past: t={time} < now={now}"
                )
        # Pass 2: commit -- same pid allocation, stats, ledger, and event
        # order per entry as pass-free submission, so successful batches
        # are byte-identical to the pre-validation behaviour.
        record_injection = self.stats.record_injection
        outstanding_add = self._outstanding.add
        inject = self._inject
        packets: List[Packet] = []
        to_schedule = []
        for src, dst, size_bytes, time in batch:
            packet = Packet(
                pid=self._alloc_pid(),
                src=src,
                dst=dst,
                size_bytes=size_bytes,
                create_time=time,
            )
            record_injection()
            outstanding_add(packet.pid)
            packets.append(packet)
            to_schedule.append((time, inject, (packet,)))
        self.env.schedule_batch(to_schedule)
        return packets

    def _validate_endpoints(self, src: int, dst: int) -> None:
        if not 0 <= src < self.n_nodes or not 0 <= dst < self.n_nodes:
            raise ConfigurationError(
                f"endpoints ({src}, {dst}) out of range [0, {self.n_nodes})"
            )
        if src == dst:
            raise ConfigurationError("src and dst must differ")

    def _alloc_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def _inject(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- delivery and the conservation ledger -----------------------------------

    def _on_delivered(self, packet: Packet, time: float) -> None:
        """Record the delivery and fire the closed-loop hook."""
        ctx = self._shard_ctx
        if ctx is not None:
            # Worker replica: the conservation-ledger entry lives on the
            # shard owning the packet's *source* host.  Delivery stats are
            # recorded here (the destination shard) and the per-delivery
            # latency is logged with its timestamp for the global merge.
            owner = ctx.host_shard[packet.src]
            if owner != ctx.shard:
                ctx.notify(owner, NOTICE_DELIVERED, packet.pid)
            else:
                try:
                    self._outstanding.remove(packet.pid)
                except KeyError:
                    self._resolve(packet, "delivered")
            latency = time - packet.create_time
            self.stats.record_delivery(latency)
            ctx.latency_log.append((time, latency))
            return
        try:
            # Inlined _resolve: this runs once per delivery on every
            # network, and the extra frame was measurable.
            self._outstanding.remove(packet.pid)
        except KeyError:
            self._resolve(packet, "delivered")  # raises the ledger error
        self.stats.record_delivery(time - packet.create_time)
        if self.tracer is not None:
            self.tracer.record(time, "deliver", packet)
        if self.receive_hook is not None:
            self.receive_hook(packet, time)

    def _record_terminal_drop(self, packet: Packet) -> None:
        """A data packet was lost for good (no retransmission will follow)."""
        ctx = self._shard_ctx
        if ctx is not None:
            owner = ctx.host_shard[packet.src]
            if owner != ctx.shard:
                ctx.notify(owner, NOTICE_TERMINAL, packet.pid)
                self.stats.record_terminal_drop()
                return
        self._resolve(packet, "terminally dropped")
        self.stats.record_terminal_drop()

    def _record_give_up(self, packet: Packet) -> None:
        """A data packet was abandoned undelivered after max retries."""
        self._resolve(packet, "given up")
        self.stats.record_give_up()
        if self.tracer is not None:
            self.tracer.record(self.env.now, "give_up", packet)

    def _resolve(self, packet: Packet, outcome: str) -> None:
        try:
            self._outstanding.remove(packet.pid)
        except KeyError:
            raise InvariantViolationError(
                f"packet {packet.pid} ({packet.src}->{packet.dst}) "
                f"{outcome} but it was already resolved or never submitted"
            ) from None

    def audit(self) -> Dict[str, int]:
        """Check the packet-conservation invariant and return the ledger.

        ``injected = delivered + terminal_drops + given_up + in_flight``
        must hold at any instant (in-flight packets are the still-open
        ledger entries: queued, streaming, or awaiting a retransmission
        timeout).  Raises :class:`InvariantViolationError` on a leak.
        """
        self.stats.in_flight = len(self._outstanding)
        ledger = self.stats.conservation()
        corrections = self._ledger_corrections
        if corrections:
            # Sharded runs only: a packet can be both delivered (counted at
            # the destination shard) and given up (counted at the source
            # shard) inside one lookahead window; each conflict was
            # resolved at a barrier and balances one ledger unit here.
            # Unsharded runs always have corrections == 0 and an
            # unchanged ledger dict.
            ledger["conflict_corrections"] = corrections
        if ledger["balance"] + corrections != 0:
            raise InvariantViolationError(
                f"packet conservation violated ({type(self).__name__}): "
                + ", ".join(f"{k}={v}" for k, v in sorted(ledger.items()))
            )
        return ledger

    # -- fault injection ---------------------------------------------------------

    def iter_switches(self) -> Iterable:
        """The switch objects faults can attach to (overridden by the
        electrical networks; Baldur consults the injector directly)."""
        return ()

    def switch_ids(self) -> List[int]:
        """Flat ids of every switch that can be failed in this network."""
        return [switch.sid for switch in self.iter_switches()]

    def attach_faults(self, injector) -> None:
        """Install a :class:`~repro.faults.FaultInjector` on this network."""
        self.fault_injector = injector
        self._install_faults()

    def _install_faults(self) -> None:
        for switch in self.iter_switches():
            switch.fault_hook = self._switch_fault_check
            switch.extra_latency_fn = self._switch_extra_latency
            switch.drop_fn = self._switch_fault_drop

    def _switch_fault_check(self, switch, packet: Packet) -> bool:
        injector = self.fault_injector
        return injector is not None and injector.check_drop(
            switch.sid, self.env.now
        )

    def _switch_extra_latency(self, switch) -> float:
        injector = self.fault_injector
        if injector is None:
            return 0.0
        return injector.extra_latency_ns(switch.sid, self.env.now)

    def _switch_fault_drop(self, packet: Packet, switch=None) -> None:
        """A buffered electrical switch discarded a packet due to a fault:
        there is no retransmission layer, so the loss is terminal.  The
        dropping switch is passed for per-switch attribution."""
        self.stats.record_drop(is_ack=packet.is_ack)
        sid = switch.sid if switch is not None else None
        if self.tracer is not None:
            self.tracer.record(
                self.env.now, "drop", packet, switch=sid, note="fault"
            )
        if self.metrics is not None and sid is not None:
            self.metrics.incr("drops", sid, self.env.now)
        if not packet.is_ack:
            self._record_terminal_drop(packet)

    # -- observability -----------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Install a :class:`~repro.obs.Tracer` on this network.

        Mirrors :meth:`attach_faults`: the base class wires the shared
        switch-level hooks; simulators with non-switch machinery (Baldur's
        bufferless stages, the retransmission layer) also consult
        ``self.tracer`` inline.  Pass ``None`` to detach.
        """
        self.tracer = tracer
        self._install_obs()

    def attach_metrics(self, registry) -> None:
        """Install a :class:`~repro.obs.MetricsRegistry` on this network.

        Pass ``None`` to detach.
        """
        self.metrics = registry
        self._install_obs()

    def _install_obs(self) -> None:
        """(Re)wire observability hooks into every exposed switch.

        Idempotent; when both tracer and metrics are detached the hooks
        are reset to ``None`` so the hot path pays nothing again.
        """
        observing = self.tracer is not None or self.metrics is not None
        for switch in self.iter_switches():
            switch.arrival_hook = self._obs_switch_arrival if observing else None
            for port in switch.ports:
                port.stall_hook = (
                    functools.partial(self._obs_credit_stall, switch.sid)
                    if observing
                    else None
                )

    def _obs_switch_arrival(self, switch, packet: Packet) -> None:
        """Passive observer for electrical switch header arrivals."""
        now = self.env.now
        if self.tracer is not None:
            self.tracer.record(
                now,
                "stage_arrival",
                packet,
                switch=switch.sid,
                stage=switch.meta.get("stage"),
            )
        if self.metrics is not None:
            self.metrics.incr("arrivals", switch.sid, now)
            self.metrics.observe_max(
                "occupancy_bytes",
                switch.sid,
                now,
                sum(port.queued_bytes for port in switch.ports),
            )

    def _obs_credit_stall(self, sid: int, packet: Packet) -> None:
        """Passive observer for head-of-line credit stalls."""
        now = self.env.now
        if self.tracer is not None:
            self.tracer.record(
                now, "credit_stall", packet, switch=sid
            )
        if self.metrics is not None:
            self.metrics.incr("credit_stalls", sid, now)

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        shards: int = 1,
        shard_latency_ns: float = 0.0,
    ) -> LatencyStats:
        """Run to completion (or to ``until`` ns), audit packet
        conservation, and return the stats.

        ``shards > 1`` executes the submitted workload on that many
        event kernels in parallel worker processes, synchronized with
        conservative lookahead windows (:mod:`repro.shard`, DESIGN.md
        section 14).  ``shards=1`` is the single-kernel path, untouched.
        ``shard_latency_ns`` adds inter-cabinet fiber delay on cut
        inter-stage hops (stage-cut plans only; 0.0 keeps single-cabinet
        physics and a lookahead of one switch latency).
        """
        if shards != 1:
            from repro.shard.engine import run_sharded

            result: LatencyStats = run_sharded(
                self, shards, until=until, shard_latency_ns=shard_latency_ns
            )
            return result
        self.env.run(until=until)
        self.audit()
        return self.stats

    # -- sharded execution hooks (repro.shard) -----------------------------------
    #
    # The window engine drives worker replicas of this network through the
    # hooks below; networks that support sharded execution override
    # shard_plan/shard_recipe (and the inbox handler) while the generic
    # ledger/stats merge lives here.  See DESIGN.md section 14.

    def shard_plan(self, n_shards: int, shard_latency_ns: float = 0.0) -> Any:
        """Partition plan for this network (see :mod:`repro.shard.plan`)."""
        raise ShardingUnsupportedError(
            f"{type(self).__name__} defines no shard partition plan"
        )

    def _shard_check_supported(self) -> None:
        """Veto hook: subclasses raise ShardingUnsupportedError for
        subclass-specific state the worker replicas cannot reproduce
        (e.g. Baldur's injected faults or diagnosis modes)."""

    def shard_recipe(self) -> Tuple[Any, Dict[str, Any]]:
        """``(cls, ctor_kwargs)`` used to build worker replicas.  The
        kwargs reuse the live topology object (inherited copy-on-write by
        forked workers, never pickled)."""
        raise ShardingUnsupportedError(
            f"{type(self).__name__} cannot build shard worker replicas"
        )

    def _shard_bind(self, ctx: Any, root_seed: int) -> None:
        """Attach a worker replica to its ShardContext.  Subclasses with
        RNG streams rebind them here to the documented per-shard contract
        ``derive_seed(root_seed, f"shard:{i}")``."""
        self._shard_ctx = ctx

    def _shard_resubmit(
        self, injections: Sequence[Tuple[float, Packet]], next_pid: int
    ) -> None:
        """Replay this shard's slice of the submitted workload, preserving
        the parent-assigned pids (global uniqueness) and the global pid
        counter (locally allocated ACK pids start past every data pid)."""
        record_injection = self.stats.record_injection
        outstanding_add = self._outstanding.add
        inject = self._inject
        to_schedule = []
        for when, packet in injections:
            record_injection()
            outstanding_add(packet.pid)
            to_schedule.append((when, inject, (packet,)))
        self.env.schedule_batch(to_schedule)
        self._next_pid = next_pid

    def _shard_schedule_inbox(self, messages: Sequence[Any]) -> None:
        """Turn one window's cross-shard messages into local events.
        Messages arrive sorted by (time, origin shard, origin index)."""
        raise ShardingUnsupportedError(
            f"{type(self).__name__} defines no cross-shard message handler"
        )

    def _shard_apply_notices(self, notices: Sequence[Tuple[int, int]]) -> None:
        """Apply one window's ledger notices (barrier metadata, never
        simulated events, so a delivery just before the horizon still
        closes its ledger entry)."""
        outstanding = self._outstanding
        for kind, pid in notices:
            if kind == NOTICE_DELIVERED:
                if pid in outstanding:
                    outstanding.remove(pid)
                    self._shard_note_remote_delivery(pid)
                else:
                    self._shard_unmatched_delivery_notice(pid)
            elif kind == NOTICE_TERMINAL:
                if pid in outstanding:
                    outstanding.remove(pid)
                else:
                    raise InvariantViolationError(
                        f"terminal-drop notice for packet {pid} which was "
                        "already resolved on its source shard"
                    )
            else:  # pragma: no cover - protocol bug
                raise ConfigurationError(f"unknown ledger notice kind {kind}")

    def _shard_note_remote_delivery(self, pid: int) -> None:
        """A packet owned here was delivered on another shard (subclasses
        with retransmission mark it delivered so timeouts stand down)."""

    def _shard_unmatched_delivery_notice(self, pid: int) -> None:
        """Delivery notice for a pid no longer outstanding: a leak unless
        a subclass can prove a benign outcome conflict (see Baldur)."""
        raise InvariantViolationError(
            f"delivery notice for packet {pid} which was already resolved "
            "on its source shard"
        )

    def _shard_export(self) -> Dict[str, Any]:
        """Worker-side final payload: counters, open ledger entries, and
        the timestamped latency log for the deterministic global merge."""
        st = self.stats
        ctx = self._shard_ctx
        assert ctx is not None
        return {
            "now": self.env.now,
            "injected": st.injected,
            "delivered": st.delivered,
            "drops": st.drops,
            "ack_drops": st.ack_drops,
            "retransmissions": st.retransmissions,
            "terminal_drops": st.terminal_drops,
            "given_up": st.given_up,
            "outstanding": sorted(self._outstanding),
            "corrections": self._ledger_corrections,
            "latency_log": ctx.latency_log,
            "next_pid": self._next_pid,
        }

    def _shard_absorb(
        self,
        payloads: Sequence[Dict[str, Any]],
        plan: Any,
        until: Optional[float],
    ) -> None:
        """Merge worker payloads back into this (parent) network.

        Latencies are rebuilt ordered by ``(deliver_time, shard, local
        index)`` — a pure function of (seed, shard count), so the merged
        stats (and their digest) are deterministic.  The parent kernel's
        pending injections are cleared (the workers executed them) and
        its clock is advanced to the horizon.
        """
        st = self.stats
        for field in (
            "injected",
            "delivered",
            "drops",
            "ack_drops",
            "retransmissions",
            "terminal_drops",
            "given_up",
        ):
            setattr(st, field, sum(p[field] for p in payloads))
        merged: List[Tuple[float, int, int, float]] = []
        for shard, payload in enumerate(payloads):
            for idx, (when, latency) in enumerate(payload["latency_log"]):
                merged.append((when, shard, idx, latency))
        merged.sort(key=lambda e: (e[0], e[1], e[2]))
        st.latencies = [e[3] for e in merged]
        self._outstanding = set()
        for payload in payloads:
            self._outstanding.update(payload["outstanding"])
        self._ledger_corrections = sum(p["corrections"] for p in payloads)
        self._next_pid = max(p["next_pid"] for p in payloads)
        env = self.env
        env._queue.clear()
        env._run = []
        env._ridx = 0
        env._now = (
            float(until)
            if until is not None
            else max(float(p["now"]) for p in payloads)
        )
