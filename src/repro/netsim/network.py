"""Uniform network-simulator driver shared by Baldur and the baselines.

Every network exposes the same API:

* :meth:`NetworkSimulator.submit` -- inject a message at a given time;
* :meth:`NetworkSimulator.run` -- advance the simulation;
* ``stats`` -- a :class:`~repro.netsim.stats.LatencyStats`;
* ``receive_hook`` -- optional callback fired on each delivery (used by
  closed-loop workloads like ping_pong).

Open-loop experiments pre-schedule all messages; closed-loop experiments
submit from inside the hook.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import constants as C
from repro.errors import ConfigurationError
from repro.netsim.packet import Packet
from repro.netsim.stats import LatencyStats
from repro.sim import Environment

__all__ = ["NetworkSimulator"]


class NetworkSimulator:
    """Base class: clock, stats, packet-id allocation, delivery plumbing."""

    def __init__(self, n_nodes: int):
        if n_nodes < 2:
            raise ConfigurationError("a network needs at least 2 nodes")
        self.n_nodes = n_nodes
        self.env = Environment()
        self.stats = LatencyStats()
        self.receive_hook: Optional[Callable[[Packet, float], None]] = None
        self._next_pid = 0

    # -- message injection ------------------------------------------------------

    def submit(
        self,
        src: int,
        dst: int,
        size_bytes: int = C.PACKET_SIZE_BYTES,
        time: float = 0.0,
    ) -> Packet:
        """Create a packet from ``src`` to ``dst`` at ``time`` and inject it.

        Injection is scheduled, so :meth:`submit` may be called before
        :meth:`run` (open loop) or from a delivery hook (closed loop).
        """
        self._validate_endpoints(src, dst)
        packet = Packet(
            pid=self._alloc_pid(),
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            create_time=time,
        )
        self.stats.record_injection()
        if time < self.env.now:
            raise ConfigurationError(
                f"cannot submit in the past: t={time} < now={self.env.now}"
            )
        self.env.schedule_at(time, self._inject, packet)
        return packet

    def _validate_endpoints(self, src: int, dst: int) -> None:
        if not 0 <= src < self.n_nodes or not 0 <= dst < self.n_nodes:
            raise ConfigurationError(
                f"endpoints ({src}, {dst}) out of range [0, {self.n_nodes})"
            )
        if src == dst:
            raise ConfigurationError("src and dst must differ")

    def _alloc_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def _inject(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- delivery ---------------------------------------------------------------

    def _on_delivered(self, packet: Packet, time: float) -> None:
        """Record the delivery and fire the closed-loop hook."""
        self.stats.record_delivery(time - packet.create_time)
        if self.receive_hook is not None:
            self.receive_hook(packet, time)

    # -- execution ----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> LatencyStats:
        """Run to completion (or to ``until`` ns) and return the stats."""
        self.env.run(until=until)
        return self.stats
