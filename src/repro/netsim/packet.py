"""Network packets and their lifecycle bookkeeping."""

from __future__ import annotations

from typing import Optional

from repro import constants as C

__all__ = ["Packet", "ACK_SIZE_BYTES"]

ACK_SIZE_BYTES = 64
"""Size of a Baldur acknowledgement packet (header + CRC; Sec. IV-E)."""


class Packet:
    """One network packet.

    ``create_time`` is when the message was generated at the source (the
    latency clock starts here, so source queueing counts); ``deliver_time``
    is when the last byte reached the destination host.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "size_bytes",
        "create_time",
        "inject_time",
        "deliver_time",
        "hops",
        "retransmissions",
        "is_ack",
        "acked_pid",
        "vc",
        "dropped",
        "plan_ports",
        "plan_vcs",
        "_tx_rate",
        "_tx_ns",
    )

    def __init__(
        self,
        pid: int,
        src: int,
        dst: int,
        size_bytes: int = C.PACKET_SIZE_BYTES,
        create_time: float = 0.0,
        is_ack: bool = False,
        acked_pid: Optional[int] = None,
    ):
        self.pid = pid
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.create_time = create_time
        self.inject_time: Optional[float] = None
        self.deliver_time: Optional[float] = None
        self.hops = 0
        self.retransmissions = 0
        self.is_ack = is_ack
        self.acked_pid = acked_pid
        self.vc = 0
        self.dropped = False
        # Source-routed plan (used by dragonfly UGAL): per-hop output port
        # indices and the VC to switch to after each hop.
        self.plan_ports: Optional[list] = None
        self.plan_vcs: Optional[list] = None
        # Serialization-time memo: a packet's size never changes and every
        # hop in a network shares one link rate, so the wire time is
        # computed once and reused (2-3 lookups per hop on the Baldur
        # path).  -1.0 is "no memo yet" (rates are always positive).
        self._tx_rate = -1.0
        self._tx_ns = 0.0

    @property
    def latency(self) -> Optional[float]:
        """End-to-end latency (None until delivered)."""
        if self.deliver_time is None:
            return None
        return self.deliver_time - self.create_time

    def serialization_time_ns(
        self, rate_gbps: float = C.LINK_DATA_RATE_GBPS
    ) -> float:
        """Wire time of this packet (8b/10b expansion included).

        Memoized per rate: repeated calls with the same ``rate_gbps``
        (the common case -- one link rate per network) return the cached
        value without re-deriving it.
        """
        if rate_gbps == self._tx_rate:
            return self._tx_ns
        tx = C.packet_serialization_ns(self.size_bytes, rate_gbps)
        self._tx_rate = rate_gbps
        self._tx_ns = tx
        return tx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ack" if self.is_ack else "pkt"
        return f"<{kind} {self.pid} {self.src}->{self.dst}>"
