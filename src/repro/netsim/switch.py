"""Buffered electrical switch machinery (the CODES-equivalent substrate).

Models the electrical baseline networks of Table VI at packet granularity
with virtual-cut-through timing:

* every switch input link has a :class:`VCBuffer` (24 KB split across 3
  virtual channels) guarded by credits -- an upstream output port only
  starts transmitting when the downstream buffer has room, which produces
  real backpressure chains and saturation;
* every :class:`OutputPort` serializes one packet at a time at the link
  rate; the header reaches the next switch after the link delay and is
  routed after the 90 ns switch pipeline latency while the body is still
  streaming (cut-through), so unloaded end-to-end latency is
  ``sum(switch latency + link delay) + one serialization``;
* head-of-line blocking is modelled: a port whose head packet lacks
  downstream credit stalls until the downstream buffer drains.

Routing is pluggable per network: ``route(switch, packet) -> (port, vc)``.
Adaptive policies read :meth:`OutputPort.load_bytes`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro import constants as C
from repro.errors import ConfigurationError
from repro.netsim.packet import Packet
from repro.sim import Environment

__all__ = ["VCBuffer", "OutputPort", "Switch", "Host"]


class VCBuffer:
    """Per-link input buffer with per-VC byte accounting and credit waiters."""

    __slots__ = ("capacity_per_vc", "n_vcs", "occupancy", "_waiters")

    def __init__(
        self,
        capacity_bytes: int = C.ELECTRICAL_BUFFER_PER_PORT_KB * 1024,
        n_vcs: int = C.ELECTRICAL_VIRTUAL_CHANNELS,
    ):
        if capacity_bytes <= 0 or n_vcs <= 0:
            raise ConfigurationError("buffer capacity and VCs must be positive")
        self.capacity_per_vc = capacity_bytes // n_vcs
        self.n_vcs = n_vcs
        self.occupancy = [0] * n_vcs
        self._waiters: List["OutputPort"] = []

    def has_room(self, vc: int, size: int) -> bool:
        """True if ``size`` bytes fit in virtual channel ``vc``."""
        return self.occupancy[vc] + size <= self.capacity_per_vc

    def reserve(self, vc: int, size: int) -> None:
        """Claim buffer space (caller must have checked :meth:`has_room`)."""
        self.occupancy[vc] += size

    def release(self, vc: int, size: int, time: float) -> None:
        """Free buffer space and wake stalled upstream ports."""
        self.occupancy[vc] -= size
        if self.occupancy[vc] < 0:
            raise ConfigurationError("buffer released below zero")
        waiters, self._waiters = self._waiters, []
        for port in waiters:
            port.try_start(time)

    def add_waiter(self, port: "OutputPort") -> None:
        """Register an upstream port stalled on this buffer's credit."""
        if port not in self._waiters:
            self._waiters.append(port)


class OutputPort:
    """One switch (or host NIC) output link with a FIFO and a serializer."""

    __slots__ = (
        "env",
        "rate_gbps",
        "link_delay_ns",
        "queue",
        "busy",
        "target_switch",
        "target_buffer",
        "deliver_fn",
        "queued_bytes",
        "stall_hook",
    )

    def __init__(
        self,
        env: Environment,
        rate_gbps: float,
        link_delay_ns: float,
    ):
        self.env = env
        self.rate_gbps = rate_gbps
        self.link_delay_ns = link_delay_ns
        # Queue entries: (packet, hold) where hold is a (buffer, vc, size)
        # triple recording the packet's input-buffer claim at this switch,
        # released once the packet has departed.  A plain tuple instead of
        # a per-packet release closure: this queue is touched on every hop
        # of every electrical network, and closure allocation was
        # measurable there.
        self.queue: Deque[
            Tuple[Packet, Optional[Tuple[VCBuffer, int, int]]]
        ] = deque()
        self.busy = False
        self.target_switch: Optional["Switch"] = None
        self.target_buffer: Optional[VCBuffer] = None
        self.deliver_fn: Optional[Callable[[Packet, float], None]] = None
        self.queued_bytes = 0
        # Observability hook (installed by NetworkSimulator._install_obs):
        # stall_hook(packet) fires when the head packet lacks downstream
        # credit.  Passive -- must not touch port or buffer state.
        self.stall_hook: Optional[Callable[[Packet], None]] = None

    def connect_switch(self, switch: "Switch", buffer: VCBuffer) -> None:
        """Point this port at a downstream switch's input buffer."""
        self.target_switch = switch
        self.target_buffer = buffer

    def connect_host(self, deliver_fn: Callable[[Packet, float], None]) -> None:
        """Point this port at a host (infinite sink)."""
        self.deliver_fn = deliver_fn

    @property
    def load_bytes(self) -> int:
        """Bytes queued behind this port (the adaptive-routing signal)."""
        return self.queued_bytes

    def enqueue(
        self,
        packet: Packet,
        time: float,
        hold: Optional[Tuple[VCBuffer, int, int]] = None,
    ) -> None:
        """Add a packet to the port FIFO and start it if possible.

        ``hold`` is the packet's upstream input-buffer claim as a
        ``(buffer, vc, size)`` triple (None for host NIC injections);
        it is released when the packet finishes serializing out.
        """
        self.queue.append((packet, hold))
        self.queued_bytes += packet.size_bytes
        self.try_start(time)

    def try_start(self, time: float) -> None:
        """Begin serializing the head packet if the port and credit allow."""
        if self.busy or not self.queue:
            return
        packet, _hold = self.queue[0]
        target_buffer = self.target_buffer
        if target_buffer is not None:
            if not target_buffer.has_room(packet.vc, packet.size_bytes):
                if self.stall_hook is not None:
                    self.stall_hook(packet)
                target_buffer.add_waiter(self)
                return
            target_buffer.reserve(packet.vc, packet.size_bytes)
        self.queue.popleft()
        self.queued_bytes -= packet.size_bytes
        self.busy = True
        tx_time = packet.serialization_time_ns(self.rate_gbps)
        env = self.env
        env.schedule(tx_time, self._on_sent, _hold)
        if self.target_switch is not None:
            env.schedule(
                self.link_delay_ns,
                self.target_switch.on_head_arrival,
                packet,
                target_buffer,
            )
        else:
            # Host delivery: the last byte lands after tx + link delay.
            env.schedule(
                tx_time + self.link_delay_ns, self._deliver, packet
            )

    def _on_sent(self, hold: Optional[Tuple[VCBuffer, int, int]]) -> None:
        now = self.env.now
        self.busy = False
        if hold is not None:
            buf, vc, size = hold
            buf.release(vc, size, now)
        self.try_start(now)

    def _deliver(self, packet: Packet) -> None:
        if self.deliver_fn is None:
            raise ConfigurationError("port has no host attached")
        self.deliver_fn(packet, self.env.now)


class Switch:
    """A buffered electrical switch with pluggable routing.

    ``route(switch, packet) -> (output port index, next vc)`` is supplied by
    the network that builds the switch.
    """

    __slots__ = (
        "env",
        "sid",
        "latency_ns",
        "ports",
        "route_fn",
        "meta",
        "fault_hook",
        "extra_latency_fn",
        "drop_fn",
        "arrival_hook",
    )

    def __init__(
        self,
        env: Environment,
        sid: int,
        latency_ns: float = C.ELECTRICAL_SWITCH_LATENCY_NS,
    ):
        self.env = env
        self.sid = sid
        self.latency_ns = latency_ns
        self.ports: List[OutputPort] = []
        self.route_fn: Optional[
            Callable[["Switch", Packet], Tuple[int, int]]
        ] = None
        self.meta: dict = {}
        # Fault-injection hooks (installed by NetworkSimulator.attach_faults):
        # fault_hook(switch, packet) -> True drops the packet at this switch,
        # extra_latency_fn(switch) widens the pipeline latency (slow-gate
        # drift), drop_fn(packet, switch) reports the terminal loss (with
        # its location, for per-switch attribution) to the network.
        self.fault_hook: Optional[Callable[["Switch", Packet], bool]] = None
        self.extra_latency_fn: Optional[Callable[["Switch"], float]] = None
        self.drop_fn: Optional[Callable[[Packet, "Switch"], None]] = None
        # Observability hook (installed by NetworkSimulator._install_obs):
        # arrival_hook(switch, packet) fires on every header arrival.
        # Passive -- must not touch switch, packet, or buffer state.
        self.arrival_hook: Optional[Callable[["Switch", Packet], None]] = None

    def add_port(self, rate_gbps: float, link_delay_ns: float) -> OutputPort:
        """Create and register a new output port."""
        port = OutputPort(self.env, rate_gbps, link_delay_ns)
        self.ports.append(port)
        return port

    def on_head_arrival(self, packet: Packet, in_buffer: VCBuffer) -> None:
        """A packet header has arrived; route it after the pipeline delay."""
        packet.hops += 1
        if self.arrival_hook is not None:
            self.arrival_hook(self, packet)
        latency = self.latency_ns
        if self.extra_latency_fn is not None:
            latency += self.extra_latency_fn(self)
        self.env.schedule(
            latency, self._route_and_enqueue, packet, in_buffer
        )

    def _route_and_enqueue(self, packet: Packet, in_buffer: VCBuffer) -> None:
        if self.fault_hook is not None and self.fault_hook(self, packet):
            # Fail-stop or corruption fault: discard the packet and free its
            # input-buffer hold so upstream credit is not leaked.
            if in_buffer is not None:
                in_buffer.release(packet.vc, packet.size_bytes, self.env.now)
            if self.drop_fn is not None:
                self.drop_fn(packet, self)
            return
        if self.route_fn is None:
            raise ConfigurationError(f"switch {self.sid} has no routing")
        port_idx, next_vc = self.route_fn(self, packet)
        hold = (
            (in_buffer, packet.vc, packet.size_bytes)
            if in_buffer is not None else None
        )
        packet.vc = next_vc
        self.ports[port_idx].enqueue(packet, self.env.now, hold)


class Host:
    """A server node: an injection NIC plus a delivery hook."""

    __slots__ = ("env", "hid", "nic", "on_deliver")

    def __init__(
        self,
        env: Environment,
        hid: int,
        rate_gbps: float = C.LINK_DATA_RATE_GBPS,
        link_delay_ns: float = 10.0,
    ):
        self.env = env
        self.hid = hid
        self.nic = OutputPort(env, rate_gbps, link_delay_ns)
        self.on_deliver: Optional[Callable[[Packet, float], None]] = None

    def attach(self, switch: Switch, buffer: VCBuffer) -> None:
        """Connect the NIC to this host's edge switch."""
        self.nic.connect_switch(switch, buffer)

    def inject(self, packet: Packet, time: float) -> None:
        """Queue a packet for transmission (called at its create time)."""
        packet.inject_time = time
        self.nic.enqueue(packet, time)

    def deliver(self, packet: Packet, time: float) -> None:
        """Called by the final switch port when the last byte arrives."""
        packet.deliver_time = time
        if self.on_deliver is not None:
            self.on_deliver(packet, time)
