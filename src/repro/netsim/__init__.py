"""Packet-level network simulation substrate (CODES-equivalent)."""

from repro.netsim.network import NetworkSimulator
from repro.netsim.packet import ACK_SIZE_BYTES, Packet
from repro.netsim.stats import LatencyStats, geomean
from repro.netsim.switch import Host, OutputPort, Switch, VCBuffer

__all__ = [
    "ACK_SIZE_BYTES",
    "Packet",
    "LatencyStats",
    "geomean",
    "Host",
    "OutputPort",
    "Switch",
    "VCBuffer",
    "NetworkSimulator",
]
