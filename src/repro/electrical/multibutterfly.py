"""The electrical multi-butterfly baseline network (Table VI, Sec. II-A).

Same randomized multi-butterfly topology as Baldur (shared construction in
:mod:`repro.topology.butterfly`), but built from buffered electrical
switches: 90 ns switch latency, 24 KB buffer per port, 3 virtual channels,
and credit backpressure instead of packet drops.  Among the m ports of the
chosen output direction the least-loaded one is taken (the electrical
analogue of Baldur's path multiplicity).

Link delays: 100 ns host injection/ejection links (Table VI); inter-stage
links are intra-cabinet and modelled at 10 ns (the published 100 ns figure
is for the input/output links, cf. the Sec. V-B discussion of Baldur's
'100 ns per input/output link').
"""

from __future__ import annotations

from repro import constants as C
from repro.netsim.network import NetworkSimulator
from repro.netsim.packet import Packet
from repro.netsim.switch import Host, Switch, VCBuffer
from repro.topology.butterfly import MultiButterflyTopology

__all__ = ["MultiButterflyNetwork"]

INTER_STAGE_DELAY_NS = 10.0
"""Intra-cabinet stage-to-stage electrical link delay (model assumption)."""


class MultiButterflyNetwork(NetworkSimulator):
    """Packet simulator for the electrical multi-butterfly."""

    # Sharded *execution* is impossible for the buffered electrical
    # fabrics: VCBuffer.release wakes the upstream port at the same
    # simulated time (zero-latency credit feedback), so the conservative
    # lookahead across any cut through a credit loop is zero (DESIGN.md
    # section 14).  shard_plan still works for partition introspection.
    _shard_exec_unsupported_reason = (
        "buffered electrical switches propagate flow-control credits with "
        "zero simulated latency, so a conservative lookahead window "
        "across any cut would be empty"
    )

    def shard_plan(self, n_shards: int, shard_latency_ns: float = 0.0):
        """Stage-cut partition plan (introspection only; see above)."""
        from repro.shard.plan import multistage_plan

        return multistage_plan(
            self.topology,
            n_shards,
            link_delay_ns=self.link_delay_ns,
            switch_latency_ns=self.switch_latency_ns,
            cut_delay_ns=shard_latency_ns,
            kind="multibutterfly",
        )

    def __init__(
        self,
        n_nodes: int,
        multiplicity: int = C.BALDUR_MULTIPLICITY,
        seed: int = 0,
        switch_latency_ns: float = C.ELECTRICAL_SWITCH_LATENCY_NS,
        link_delay_ns: float = C.MULTIBUTTERFLY_LINK_DELAY_NS,
    ):
        super().__init__(n_nodes)
        self.topology = MultiButterflyTopology(n_nodes, multiplicity, seed)
        self.multiplicity = multiplicity
        self.switch_latency_ns = switch_latency_ns
        self.link_delay_ns = link_delay_ns
        topo = self.topology

        # Build switches stage-major.
        self.switches = []
        for stage in range(topo.n_stages):
            for idx in range(topo.switches_per_stage):
                switch = Switch(
                    self.env,
                    sid=stage * topo.switches_per_stage + idx,
                    latency_ns=switch_latency_ns,
                )
                switch.meta["stage"] = stage
                switch.meta["index"] = idx
                switch.route_fn = self._route
                self.switches.append(switch)

        # Hosts and injection links (100 ns).
        self.hosts = []
        for hid in range(n_nodes):
            host = Host(
                self.env,
                hid,
                rate_gbps=C.LINK_DATA_RATE_GBPS,
                link_delay_ns=link_delay_ns,
            )
            entry = self._switch(0, topo.entry_switch(hid))
            buffer = VCBuffer()
            host.attach(entry, buffer)
            self.hosts.append(host)

        # Inter-stage wiring: m ports per direction, each to its own
        # downstream input buffer (10 ns links); last stage ejects to hosts
        # over 100 ns links.
        m = multiplicity
        for stage in range(topo.n_stages):
            last = topo.is_last_stage(stage)
            for idx in range(topo.switches_per_stage):
                switch = self._switch(stage, idx)
                for direction in (0, 1):
                    targets = topo.next_switches(stage, idx, direction)
                    if last:
                        port = switch.add_port(
                            C.LINK_DATA_RATE_GBPS, link_delay_ns
                        )
                        host = self.hosts[targets[0]]
                        port.connect_host(host.deliver)
                    else:
                        for target in targets:
                            port = switch.add_port(
                                C.LINK_DATA_RATE_GBPS, INTER_STAGE_DELAY_NS
                            )
                            port.connect_switch(
                                self._switch(stage + 1, target), VCBuffer()
                            )
            # Hook up delivery callbacks.
        for host in self.hosts:
            host.on_deliver = self._on_delivered

    def _switch(self, stage: int, idx: int) -> Switch:
        return self.switches[stage * self.topology.switches_per_stage + idx]

    def iter_switches(self):
        """All buffered switches, stage-major (fault-injection targets)."""
        return self.switches

    def unloaded_latency_ns(
        self, src: int = 0, dst: int = 1,
        size_bytes: int = C.PACKET_SIZE_BYTES,
    ) -> float:
        """Analytic zero-load end-to-end latency of one packet.

        Virtual cut-through: injection link + per-stage (switch pipeline
        + outgoing link) + one serialization of the last hop.  Stage-
        symmetric like Baldur, hence independent of (src, dst).
        """
        n = self.topology.n_stages
        return (
            2 * self.link_delay_ns
            + n * self.switch_latency_ns
            + (n - 1) * INTER_STAGE_DELAY_NS
            + C.packet_serialization_ns(size_bytes)
        )

    def _route(self, switch: Switch, packet: Packet):
        """Direction by routing bit; least-loaded port among the m copies."""
        stage = switch.meta["stage"]
        direction = self.topology.routing_bit(packet.dst, stage)
        if self.topology.is_last_stage(stage):
            return direction, packet.vc
        m = self.multiplicity
        base = direction * m
        ports = switch.ports
        # First-minimum scan (ties -> lowest index, exactly like min());
        # avoids a key-lambda call per candidate on the per-hop path.
        best = base
        best_load = ports[base].queued_bytes
        for i in range(base + 1, base + m):
            load = ports[i].queued_bytes
            if load < best_load:
                best = i
                best_load = load
        return best, packet.vc

    def _inject(self, packet: Packet) -> None:
        # Feed-forward topology: VCs never need to escalate, so spread
        # packets across the 3 partitions for full buffer utilization.
        packet.vc = packet.pid % C.ELECTRICAL_VIRTUAL_CHANNELS
        if self.tracer is not None:
            self.tracer.record(self.env.now, "inject", packet)
        self.hosts[packet.src].inject(packet, self.env.now)
