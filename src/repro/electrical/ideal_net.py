"""The ideal reference network simulator (Table VI).

Infinite bandwidth and a flat packet latency: every packet is delivered
exactly ``latency_ns`` after creation, with no queueing anywhere.
"""

from __future__ import annotations

from repro import constants as C
from repro.errors import ConfigurationError
from repro.netsim.network import NetworkSimulator
from repro.netsim.packet import Packet
from repro.shard.runtime import MSG_DELIVER
from repro.topology.ideal import IdealTopology

__all__ = ["IdealNetwork"]


class IdealNetwork(NetworkSimulator):
    """Delivers every packet after a constant delay (200 ns by default)."""

    def __init__(
        self, n_nodes: int, latency_ns: float = C.IDEAL_PACKET_LATENCY_NS
    ):
        super().__init__(n_nodes)
        self.topology = IdealTopology(n_nodes, latency_ns)
        self.latency_ns = latency_ns

    def unloaded_latency_ns(
        self, src: int = 0, dst: int = 1,
        size_bytes: int = C.PACKET_SIZE_BYTES,
    ) -> float:
        """Analytic zero-load latency: the flat delay, by construction."""
        return self.latency_ns

    def _inject(self, packet: Packet) -> None:
        packet.inject_time = self.env.now
        if self.tracer is not None:
            self.tracer.record(self.env.now, "inject", packet)
        ctx = self._shard_ctx
        if ctx is not None:
            dest = ctx.host_shard[packet.dst]
            if dest != ctx.shard:
                # Host-cut delivery across the boundary: the flat latency
                # is exactly the plan lookahead.
                ctx.send(
                    dest,
                    (MSG_DELIVER, self.env.now + self.latency_ns,
                     packet.pid, packet.src, packet.dst, packet.size_bytes,
                     packet.create_time, packet.is_ack, packet.acked_pid,
                     packet.hops),
                )
                return
        self.env.schedule(self.latency_ns, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        packet.deliver_time = self.env.now
        self._on_delivered(packet, self.env.now)

    # -- sharded execution (repro.shard, DESIGN.md section 14) ----------------

    def shard_plan(self, n_shards: int, shard_latency_ns: float = 0.0):
        """Host-cut partition; every host pair is one hop of the flat
        latency, so the lookahead is ``latency_ns`` (``shard_latency_ns``
        does not apply -- there are no inter-stage hops to stretch)."""
        from repro.shard.plan import host_plan

        return host_plan(
            self.n_nodes, n_shards, hop_delay_ns=self.latency_ns, kind="ideal"
        )

    def shard_recipe(self):
        return (
            type(self),
            {"n_nodes": self.n_nodes, "latency_ns": self.latency_ns},
        )

    def _shard_schedule_inbox(self, messages) -> None:
        env = self.env
        for msg in messages:
            if msg[0] != MSG_DELIVER:  # pragma: no cover - protocol bug
                raise ConfigurationError(
                    f"unknown cross-shard message kind {msg[0]}"
                )
            (_kind, when, pid, src, dst, size_bytes,
             create_time, is_ack, acked_pid, hops) = msg
            packet = Packet(
                pid=pid,
                src=src,
                dst=dst,
                size_bytes=size_bytes,
                create_time=create_time,
                is_ack=is_ack,
                acked_pid=acked_pid,
            )
            packet.hops = hops
            env.schedule_at(when, self._deliver, packet)
