"""The ideal reference network simulator (Table VI).

Infinite bandwidth and a flat packet latency: every packet is delivered
exactly ``latency_ns`` after creation, with no queueing anywhere.
"""

from __future__ import annotations

from repro import constants as C
from repro.netsim.network import NetworkSimulator
from repro.netsim.packet import Packet
from repro.topology.ideal import IdealTopology

__all__ = ["IdealNetwork"]


class IdealNetwork(NetworkSimulator):
    """Delivers every packet after a constant delay (200 ns by default)."""

    def __init__(
        self, n_nodes: int, latency_ns: float = C.IDEAL_PACKET_LATENCY_NS
    ):
        super().__init__(n_nodes)
        self.topology = IdealTopology(n_nodes, latency_ns)
        self.latency_ns = latency_ns

    def unloaded_latency_ns(
        self, src: int = 0, dst: int = 1,
        size_bytes: int = C.PACKET_SIZE_BYTES,
    ) -> float:
        """Analytic zero-load latency: the flat delay, by construction."""
        return self.latency_ns

    def _inject(self, packet: Packet) -> None:
        packet.inject_time = self.env.now
        if self.tracer is not None:
            self.tracer.record(self.env.now, "inject", packet)
        self.env.schedule(self.latency_ns, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        packet.deliver_time = self.env.now
        self._on_delivered(packet, self.env.now)
