"""Electrical baseline network simulators (Table VI configurations)."""

from repro.electrical.dragonfly_net import DragonflyNetwork
from repro.electrical.fattree_net import FatTreeNetwork
from repro.electrical.ideal_net import IdealNetwork
from repro.electrical.multibutterfly import MultiButterflyNetwork

__all__ = [
    "DragonflyNetwork",
    "FatTreeNetwork",
    "IdealNetwork",
    "MultiButterflyNetwork",
]
