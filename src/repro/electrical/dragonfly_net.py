"""Dragonfly baseline network with UGAL adaptive routing (Table VI, [16]).

Router port layout (radix p + a-1 + h):

* ports ``0 .. p-1``            -- terminal links to hosts (10 ns);
* ports ``p .. p+a-2``          -- local links to the other a-1 routers of
  the group (10 ns intra-group, Table VI);
* ports ``p+a-1 .. p+a-1+h-1``  -- global links (100 ns inter-group).

Routing is UGAL-L [16]: at the source router the packet chooses between
the minimal path and a Valiant path through a random intermediate group by
comparing (queue depth x hop count) of the two candidate first hops.  The
chosen path is then source-routed.  The VC is incremented after each global
hop (paths take at most 2 global hops, hence the 3 VCs of Table VI -- this
is the standard dragonfly deadlock-avoidance discipline).

From ~83K nodes the intra-group links become optical (Sec. VI-A); that
affects only the power model, not the timing used here.
"""

from __future__ import annotations

from typing import List, Tuple

from repro import constants as C
from repro.netsim.network import NetworkSimulator
from repro.netsim.packet import Packet
from repro.netsim.switch import Host, Switch, VCBuffer
from repro.sim.rand import stream
from repro.topology.dragonfly import DragonflyTopology

__all__ = ["DragonflyNetwork"]

UGAL_BIAS_BYTES = C.PACKET_SIZE_BYTES
"""UGAL-L bias toward the minimal path (one packet's worth of queue)."""


class DragonflyNetwork(NetworkSimulator):
    """Packet simulator for the dragonfly baseline."""

    # See MultiButterflyNetwork: zero-latency credit feedback rules out
    # sharded execution; the plan exists for partition introspection.
    _shard_exec_unsupported_reason = (
        "buffered electrical switches propagate flow-control credits with "
        "zero simulated latency, so a conservative lookahead window "
        "across any cut would be empty"
    )

    def shard_plan(self, n_shards: int, shard_latency_ns: float = 0.0):
        """Group-cut partition plan (introspection only; see above)."""
        from repro.shard.plan import dragonfly_plan

        return dragonfly_plan(self.topology, n_shards)

    def __init__(
        self,
        n_nodes: int,
        seed: int = 0,
        switch_latency_ns: float = C.ELECTRICAL_SWITCH_LATENCY_NS,
        adaptive: bool = True,
    ):
        topo = DragonflyTopology.for_nodes(n_nodes)
        super().__init__(n_nodes)
        self.topology = topo
        self.adaptive = adaptive
        self._rng = stream(seed, "dragonfly-valiant")

        # Routers.
        self.routers: List[Switch] = []
        for rid in range(topo.n_routers):
            router = Switch(self.env, sid=rid, latency_ns=switch_latency_ns)
            router.route_fn = self._route
            router.meta["group"] = rid // topo.a
            router.meta["local"] = rid % topo.a
            self.routers.append(router)

        # Hosts: only the first n_nodes terminals are populated (the
        # balanced construction rounds the node count up; Sec. VI-A notes
        # scales differ slightly between topologies).
        self.hosts: List[Host] = []
        for hid in range(n_nodes):
            group, local = topo.router_of_node(hid)
            host = Host(
                self.env,
                hid,
                link_delay_ns=C.DRAGONFLY_INTRA_GROUP_DELAY_NS,
            )
            host.attach(self.routers[topo.router_id(group, local)], VCBuffer())
            host.on_deliver = self._on_delivered
            self.hosts.append(host)

        # Router ports: terminals, locals, globals -- in that order.
        for rid, router in enumerate(self.routers):
            group, local = rid // topo.a, rid % topo.a
            for slot in range(topo.p):
                hid = rid * topo.p + slot
                port = router.add_port(
                    C.LINK_DATA_RATE_GBPS, C.DRAGONFLY_INTRA_GROUP_DELAY_NS
                )
                if hid < n_nodes:
                    port.connect_host(self.hosts[hid].deliver)
            for peer in range(topo.a):
                if peer == local:
                    continue
                port = router.add_port(
                    C.LINK_DATA_RATE_GBPS, C.DRAGONFLY_INTRA_GROUP_DELAY_NS
                )
                port.connect_switch(
                    self.routers[topo.router_id(group, peer)], VCBuffer()
                )
            for link in range(topo.h):
                peer = topo.global_peer(group, local, link)
                port = router.add_port(
                    C.LINK_DATA_RATE_GBPS, C.DRAGONFLY_INTER_GROUP_DELAY_NS
                )
                port.connect_switch(
                    self.routers[
                        topo.router_id(peer.peer_group, peer.peer_router)
                    ],
                    VCBuffer(),
                )

    def iter_switches(self):
        """All routers (fault-injection targets)."""
        return self.routers

    def unloaded_latency_ns(
        self, src: int, dst: int,
        size_bytes: int = C.PACKET_SIZE_BYTES,
    ) -> float:
        """Analytic zero-load latency of one packet from src to dst.

        At zero load UGAL-L always takes the minimal path (the Valiant
        candidate loses the queue comparison to the bias), so the latency
        is the injection link plus, for every router of the minimal
        path, its pipeline latency and outgoing link delay, plus one
        final serialization.
        """
        topo = self.topology
        group, local = topo.router_of_node(src)
        dst_group, _ = topo.router_of_node(dst)
        router = self.routers[topo.router_id(group, local)]
        ports, _vcs = self._path_ports(router.sid, dst, dst_group)
        total = C.DRAGONFLY_INTRA_GROUP_DELAY_NS  # host injection link
        for port_idx in ports:
            port = router.ports[port_idx]
            total += router.latency_ns + port.link_delay_ns
            router = port.target_switch  # None after the terminal port
        return total + C.packet_serialization_ns(size_bytes)

    # -- port arithmetic ---------------------------------------------------------

    def _terminal_port(self, dst: int) -> int:
        return dst % self.topology.p

    def _local_port(self, local: int, peer: int) -> int:
        p = self.topology.p
        return p + (peer if peer < local else peer - 1)

    def _global_port(self, link: int) -> int:
        return self.topology.p + self.topology.a - 1 + link

    # -- path construction ---------------------------------------------------------

    def _path_ports(
        self, router_id: int, dst: int, via_group: int
    ) -> Tuple[List[int], List[int]]:
        """Source-routed (ports, vcs) from ``router_id`` to host ``dst``
        passing through ``via_group`` (set via = dst group for minimal)."""
        topo = self.topology
        ports: List[int] = []
        vcs: List[int] = []
        vc = 0
        group, local = router_id // topo.a, router_id % topo.a
        dst_group, dst_local = topo.router_of_node(dst)
        groups = [g for g in (via_group, dst_group) if True]
        # Walk: current (group, local) until we reach dst_group.
        for target_group in groups:
            if group == target_group:
                continue
            gw_local, gw_link = topo.gateway_router(group, target_group)
            if local != gw_local:
                ports.append(self._local_port(local, gw_local))
                vcs.append(vc)
                local = gw_local
            peer = topo.global_peer(group, gw_local, gw_link)
            ports.append(self._global_port(gw_link))
            vc += 1  # VC escalates after each global hop
            vcs.append(vc)
            group, local = peer.peer_group, peer.peer_router
        if local != dst_local:
            ports.append(self._local_port(local, dst_local))
            vcs.append(vc)
        ports.append(self._terminal_port(dst))
        vcs.append(vc)
        return ports, vcs

    # -- routing --------------------------------------------------------------------

    def _route(self, router: Switch, packet: Packet) -> Tuple[int, int]:
        if packet.plan_ports is None:
            self._plan(router, packet)
        port = packet.plan_ports.pop(0)
        vc = packet.plan_vcs.pop(0)
        return port, vc

    def _plan(self, router: Switch, packet: Packet) -> None:
        """UGAL-L decision at the source router."""
        topo = self.topology
        rid = router.sid
        dst_group, _ = topo.router_of_node(packet.dst)
        min_ports, min_vcs = self._path_ports(rid, packet.dst, dst_group)
        choice = (min_ports, min_vcs)
        if self.adaptive and topo.groups > 2:
            src_group = rid // topo.a
            via = self._rng.randrange(topo.groups)
            while via in (src_group, dst_group):
                via = self._rng.randrange(topo.groups)
            val_ports, val_vcs = self._path_ports(rid, packet.dst, via)
            q_min = router.ports[min_ports[0]].load_bytes
            q_val = router.ports[val_ports[0]].load_bytes
            if q_min * len(min_ports) > (
                q_val * len(val_ports) + UGAL_BIAS_BYTES
            ):
                choice = (val_ports, val_vcs)
        packet.plan_ports = list(choice[0])
        packet.plan_vcs = list(choice[1])

    def _inject(self, packet: Packet) -> None:
        packet.vc = 0
        packet.plan_ports = None
        packet.plan_vcs = None
        if self.tracer is not None:
            self.tracer.record(self.env.now, "inject", packet)
        self.hosts[packet.src].inject(packet, self.env.now)
