"""Fat-tree baseline network with adaptive up-routing (Table VI, [17], [55]).

Switch port layouts (k-ary 3-level fat-tree):

* edge switch:  ports ``0..k/2-1`` down to hosts (10 ns),
                ports ``k/2..k-1`` up to the pod's aggregations (50 ns);
* aggregation:  ports ``0..k/2-1`` down to the pod's edges (50 ns),
                ports ``k/2..k-1`` up to its cores (100 ns);
* core:         ports ``0..k-1`` down to each pod's aggregation (100 ns).

Routing is adaptive on the way up (least-loaded valid up-port, per the
multi-rail fat-tree analysis [55]) and deterministic on the way down.
Up/down routing is deadlock-free, so packets spread across the 3 VCs for
buffer utilization.
"""

from __future__ import annotations

from typing import Tuple

from repro import constants as C
from repro.netsim.network import NetworkSimulator
from repro.netsim.packet import Packet
from repro.netsim.switch import Host, Switch, VCBuffer
from repro.topology.fattree import FatTreeTopology

__all__ = ["FatTreeNetwork"]

LEVEL1_NS, LEVEL2_NS, LEVEL3_NS = C.FATTREE_LEVEL_DELAYS_NS


def _least_loaded_up(ports, half: int) -> int:
    """Least-loaded uplink among ports [half, 2*half), first-minimum."""
    best = half
    best_load = ports[half].queued_bytes
    for i in range(half + 1, 2 * half):
        load = ports[i].queued_bytes
        if load < best_load:
            best = i
            best_load = load
    return best


class FatTreeNetwork(NetworkSimulator):
    """Packet simulator for the 3-level full-bisection fat-tree."""

    # See MultiButterflyNetwork: zero-latency credit feedback rules out
    # sharded execution; the plan exists for partition introspection.
    _shard_exec_unsupported_reason = (
        "buffered electrical switches propagate flow-control credits with "
        "zero simulated latency, so a conservative lookahead window "
        "across any cut would be empty"
    )

    def shard_plan(self, n_shards: int, shard_latency_ns: float = 0.0):
        """Pod-cut partition plan (introspection only; see above)."""
        from repro.shard.plan import fattree_plan

        return fattree_plan(self.topology, n_shards)

    def __init__(
        self,
        n_nodes: int,
        seed: int = 0,
        switch_latency_ns: float = C.ELECTRICAL_SWITCH_LATENCY_NS,
    ):
        topo = FatTreeTopology.for_nodes(n_nodes)
        super().__init__(n_nodes)
        self.topology = topo
        self.switch_latency_ns = switch_latency_ns
        k, half = topo.k, topo.half

        def new_switch(sid: int, level: str, pod: int, idx: int) -> Switch:
            switch = Switch(self.env, sid=sid, latency_ns=switch_latency_ns)
            switch.meta.update(level=level, pod=pod, index=idx)
            switch.route_fn = self._route
            return switch

        self.edges = [
            new_switch(p * half + e, "edge", p, e)
            for p in range(k)
            for e in range(half)
        ]
        base = k * half
        self.aggs = [
            new_switch(base + p * half + a, "agg", p, a)
            for p in range(k)
            for a in range(half)
        ]
        base += k * half
        self.cores = [
            new_switch(base + c, "core", -1, c) for c in range(topo.n_core)
        ]

        # Hosts (first n_nodes of the k^3/4 capacity).
        self.hosts = []
        for hid in range(n_nodes):
            pod, edge, _slot = topo.locate_host(hid)
            host = Host(self.env, hid, link_delay_ns=LEVEL1_NS)
            host.attach(self._edge(pod, edge), VCBuffer())
            host.on_deliver = self._on_delivered
            self.hosts.append(host)

        # Edge ports: down to hosts then up to aggs.
        for pod in range(k):
            for e in range(half):
                edge = self._edge(pod, e)
                for slot in range(half):
                    hid = topo.host_id(pod, e, slot)
                    port = edge.add_port(C.LINK_DATA_RATE_GBPS, LEVEL1_NS)
                    if hid < n_nodes:
                        port.connect_host(self.hosts[hid].deliver)
                for a in range(half):
                    port = edge.add_port(C.LINK_DATA_RATE_GBPS, LEVEL2_NS)
                    port.connect_switch(self._agg(pod, a), VCBuffer())

        # Aggregation ports: down to edges then up to cores.
        for pod in range(k):
            for a in range(half):
                agg = self._agg(pod, a)
                for e in range(half):
                    port = agg.add_port(C.LINK_DATA_RATE_GBPS, LEVEL2_NS)
                    port.connect_switch(self._edge(pod, e), VCBuffer())
                for core in topo.cores_above_agg(a):
                    port = agg.add_port(C.LINK_DATA_RATE_GBPS, LEVEL3_NS)
                    port.connect_switch(self.cores[core], VCBuffer())

        # Core ports: one down-link per pod.
        for c, core in enumerate(self.cores):
            a = topo.agg_below_core(c)
            for pod in range(k):
                port = core.add_port(C.LINK_DATA_RATE_GBPS, LEVEL3_NS)
                port.connect_switch(self._agg(pod, a), VCBuffer())

    def iter_switches(self):
        """Edge, aggregation, and core switches (fault-injection targets)."""
        return [*self.edges, *self.aggs, *self.cores]

    def unloaded_latency_ns(
        self, src: int, dst: int,
        size_bytes: int = C.PACKET_SIZE_BYTES,
    ) -> float:
        """Analytic zero-load latency of one packet from src to dst.

        Up/down routing fixes the hop count by pod locality: 1 switch
        (same edge), 3 (same pod), or 5 (via a core).  Each hop costs the
        switch pipeline plus its outgoing link; the host injection link
        and one final serialization complete the path.
        """
        src_pod, src_edge, _ = self.topology.locate_host(src)
        dst_pod, dst_edge, _ = self.topology.locate_host(dst)
        if (src_pod, src_edge) == (dst_pod, dst_edge):
            out_links = (LEVEL1_NS,)
        elif src_pod == dst_pod:
            out_links = (LEVEL2_NS, LEVEL2_NS, LEVEL1_NS)
        else:
            out_links = (LEVEL2_NS, LEVEL3_NS, LEVEL3_NS, LEVEL2_NS,
                         LEVEL1_NS)
        return (
            LEVEL1_NS
            + len(out_links) * self.switch_latency_ns
            + sum(out_links)
            + C.packet_serialization_ns(size_bytes)
        )

    def _edge(self, pod: int, e: int) -> Switch:
        return self.edges[pod * self.topology.half + e]

    def _agg(self, pod: int, a: int) -> Switch:
        return self.aggs[pod * self.topology.half + a]

    # -- routing --------------------------------------------------------------------

    def _route(self, switch: Switch, packet: Packet) -> Tuple[int, int]:
        topo = self.topology
        half = topo.half
        level = switch.meta["level"]
        dst_pod, dst_edge, dst_slot = topo.locate_host(packet.dst)

        if level == "edge":
            if switch.meta["pod"] == dst_pod and switch.meta["index"] == dst_edge:
                return dst_slot, packet.vc  # down to the host
            # Any aggregation works: first-minimum load scan over the
            # uplinks (ties -> lowest index, exactly like min()).
            return _least_loaded_up(switch.ports, half), packet.vc

        if level == "agg":
            if switch.meta["pod"] == dst_pod:
                return dst_edge, packet.vc  # down to the destination edge
            # Any core above this agg works.
            return _least_loaded_up(switch.ports, half), packet.vc

        # Core: deterministic down to the destination pod.
        return dst_pod, packet.vc

    def _inject(self, packet: Packet) -> None:
        packet.vc = packet.pid % C.ELECTRICAL_VIRTUAL_CHANNELS
        if self.tracer is not None:
            self.tracer.record(self.env.now, "inject", packet)
        self.hosts[packet.src].inject(packet, self.env.now)
