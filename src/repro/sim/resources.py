"""Shared-resource primitives built on the event kernel.

:class:`Resource` models a counted resource with FIFO waiters (e.g. a link a
host serializes packets onto).  :class:`Store` is an unbounded-or-bounded
FIFO of Python objects (e.g. a switch input queue).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.core import Environment, Event

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with ``capacity`` concurrent users.

    Usage (process style)::

        req = resource.request()
        yield req
        ...critical section...
        resource.release()
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of users currently holding the resource."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for the resource."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires when the resource is acquired."""
        event = self.env.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one unit; wakes the oldest waiter, if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed()
        else:
            self._in_use -= 1


class Store:
    """A FIFO store of items with optional bounded capacity.

    ``put`` blocks (its event stays untriggered) when the store is full;
    ``get`` blocks when it is empty.
    """

    def __init__(
        self, env: Environment, capacity: Optional[int] = None
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Tuple[Any, ...]:
        """A snapshot of stored items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event fires once inserted."""
        event = self.env.event()
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Remove and return the oldest item via the event's value."""
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
            if self._putters:
                put_event, item = self._putters.popleft()
                self._items.append(item)
                put_event.succeed()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        if self._putters:
            put_event, pending = self._putters.popleft()
            self._items.append(pending)
            put_event.succeed()
        return item
