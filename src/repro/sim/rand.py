"""Deterministic random-stream management -- the *only* sanctioned RNG
entry point in the library.

Every stochastic component (wiring randomization, traffic generation,
jitter Monte Carlo, arbitration tie-breaking) draws from a named stream
derived from a single experiment seed, so whole experiments are
reproducible bit-for-bit while streams stay statistically independent.

The contract, mechanically enforced by the ``RNG-001`` lint rule (run
``repro-lint``; see DESIGN.md section 11):

* No ``repro.*`` module other than this one may touch the module-global
  generators -- no ``import random`` + ``random.random`` draws, no
  ``numpy.random.seed``/``numpy.random.default_rng()`` without a derived
  seed.  Global generators are hidden cross-cutting state: any import
  that draws from them perturbs every later draw, silently changing
  results between otherwise identical runs.
* Instead, derive a child seed with :func:`derive_seed` and hold a
  private generator from :func:`stream` (stdlib) or
  :func:`numpy_stream` (numpy).  Streams are keyed by
  ``(master_seed, name)`` through SHA-256, so adjacent seeds or similar
  names still yield independent streams, and adding a new consumer
  never shifts the draws of existing ones.
* Type annotations may still *name* ``np.random.Generator``; RNG-001
  flags uses, not types.

See DESIGN.md section 7 ("Experiment runner") for how named streams
compose with the sweep runner's per-job seed derivation.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np

__all__ = ["derive_seed", "stream", "numpy_stream"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``master_seed`` and a stream name.

    Uses SHA-256 so that child seeds are independent even for adjacent
    master seeds or similar names.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def stream(master_seed: int, name: str) -> random.Random:
    """A ``random.Random`` seeded from (master_seed, name)."""
    return random.Random(derive_seed(master_seed, name))


def numpy_stream(master_seed: int, name: str) -> np.random.Generator:
    """A numpy Generator seeded from (master_seed, name)."""
    return np.random.default_rng(derive_seed(master_seed, name))
