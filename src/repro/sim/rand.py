"""Deterministic random-stream management.

Every stochastic component in the library (wiring randomization, traffic
generation, jitter Monte Carlo, arbitration tie-breaking) draws from a named
stream derived from a single experiment seed, so whole experiments are
reproducible bit-for-bit while streams stay statistically independent.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np

__all__ = ["derive_seed", "stream", "numpy_stream"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``master_seed`` and a stream name.

    Uses SHA-256 so that child seeds are independent even for adjacent
    master seeds or similar names.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def stream(master_seed: int, name: str) -> random.Random:
    """A ``random.Random`` seeded from (master_seed, name)."""
    return random.Random(derive_seed(master_seed, name))


def numpy_stream(master_seed: int, name: str) -> np.random.Generator:
    """A numpy Generator seeded from (master_seed, name)."""
    return np.random.default_rng(derive_seed(master_seed, name))
