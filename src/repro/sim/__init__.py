"""Discrete-event simulation kernel (SimPy-style processes + fast callbacks)."""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.rand import derive_seed, numpy_stream, stream
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    "Resource",
    "Store",
    "derive_seed",
    "numpy_stream",
    "stream",
]
