"""A small discrete-event simulation kernel.

This is the substrate every simulator in the library runs on.  It offers two
programming styles:

* **Process style** (SimPy-like): generator functions yield :class:`Timeout`
  or :class:`Event` objects and are resumed when those events fire.  This is
  the readable style used by examples and host-side protocol logic.
* **Callback style**: :meth:`Environment.schedule` runs a plain callable at a
  future time.  This avoids generator overhead and is used by the hot loops
  of the packet-level network simulators.

Time is a float; the unit is chosen by the caller (network simulators use
nanoseconds, the gate-level circuit simulator uses picoseconds).

Hot-path engineering (see DESIGN.md section 10): the event queue is a heap of
``(time, seq, fn, args)`` tuples where ``seq`` is a plain integer sequence
(FIFO tie-break for simultaneous events, no ``itertools.count`` indirection);
:meth:`Environment.run` drains the heap with ``heappop`` and the queue bound
to locals instead of calling :meth:`Environment.step` per event; and process
resumption takes an allocation-free path when the yielded event has already
been processed.  None of this changes event ordering: the ``(time, seq)``
keys -- and therefore the dispatch sequence -- are identical to the naive
implementation, which is what keeps simulation results byte-identical.
"""

from __future__ import annotations

import heapq
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    ClassVar,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.obs.profile import KernelProfile

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
]

_INF = float("inf")

# One scheduled entry: (absolute time, FIFO tie-break seq, callback, args).
_QueueItem = Tuple[float, int, Callable[..., Any], Tuple[Any, ...]]

# The generator type a Process wraps: yields events, receives their values.
ProcessGenerator = Generator["Event", Any, Any]


class Interrupt(Exception):
    """Thrown into a process that has been interrupted via
    :meth:`Process.interrupt`.  ``cause`` carries the interrupter's payload."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*; calling :meth:`succeed` (or
    :meth:`fail`) schedules its callbacks to run at the current simulation
    time.  An event can only be triggered once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once processed)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` or :meth:`fail`."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        self._trigger(True, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception instance")
        self._trigger(False, exception)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._triggered = True
        self._ok = ok
        self._value = value
        self.env._schedule_event(self)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)


class Timeout(Event):
    """An event that fires automatically after ``delay`` time units."""

    __slots__ = ("delay",)

    def __init__(
        self, env: "Environment", delay: float, value: Any = None
    ) -> None:
        if not (0.0 <= delay < _INF):
            raise SimulationError(
                f"timeout delay must be finite and >= 0, got {delay!r}"
            )
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._ok = True
        self._triggered = True
        env._schedule_event(self, delay)


class _Started:
    """Pre-fired pseudo-event used to kick off a fresh :class:`Process`
    without allocating a real :class:`Event` (the resume path only reads
    ``ok``/``value``)."""

    __slots__ = ()
    callbacks: ClassVar[None] = None
    ok: ClassVar[bool] = True
    value: ClassVar[None] = None


_START = _Started()


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator yields events; the process is resumed with the event's
    value when it fires (or the event's exception is thrown in).
    """

    __slots__ = ("_generator", "_waiting_on", "_abandoned")

    def __init__(
        self, env: "Environment", generator: ProcessGenerator
    ) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                "Process requires a generator (did you call the function?)"
            )
        super().__init__(env)
        self._generator = generator
        # Events this process stopped waiting on due to interrupt(); their
        # eventual wake-ups are discarded (the tombstone check in _resume).
        self._abandoned: List[Any] = []
        # Kick off the process at the current time (allocation-free: the
        # shared _START sentinel stands in for a pre-fired init event).
        self._waiting_on: Optional[Any] = _START
        env._push(env._now, self._resume, (_START,))

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error.  The event the
        process was waiting on is *abandoned* in O(1): instead of removing
        the resume callback from the event's (potentially long) callback
        list, the event is tombstoned and its eventual wake-up is
        discarded by :meth:`_resume`.
        """
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        waiting = self._waiting_on
        if waiting is not None:
            self._abandoned.append(waiting)
        wakeup = Event(self.env)
        wakeup.fail(Interrupt(cause))
        callbacks = wakeup.callbacks
        assert callbacks is not None  # cleared only when processed
        callbacks.append(self._resume)
        self._waiting_on = wakeup

    def _resume(self, event: Any) -> None:
        abandoned = self._abandoned
        if abandoned and event in abandoned:
            # Stale wake-up from an event this process stopped waiting on
            # (see interrupt()).  Each interrupt abandons exactly one
            # pending wake-up, so consume exactly one tombstone.
            abandoned.remove(event)
            return
        if self._triggered:
            return  # the process already finished; nothing to resume
        self._waiting_on = None
        try:
            target = (
                self._generator.send(event.value)
                if event.ok
                else self._generator.throw(event.value)
            )
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt as exc:
            # An unhandled Interrupt terminates the process with failure.
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded a non-event: {target!r}"
            )
        self._waiting_on = target
        if target.callbacks is None:
            # Already processed: resume at the current time.  Free path --
            # the target itself carries ok/value, so no wake-up event is
            # allocated; the resume is pushed straight onto the queue at
            # the same (time, seq) position the wake-up would have had.
            env = self.env
            env._push(env._now, self._resume, (target,))
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._on_fire(event)
                if self._triggered:
                    break
            else:
                event.callbacks.append(self._on_fire)

    def _collect(self) -> Dict[Event, Any]:
        """Snapshot ``{event: value}`` of every input event whose outcome
        is already *decided* (triggered or processed).

        Semantics, by design: a triggered-but-unprocessed event has its
        value fixed at trigger time (:meth:`Event._trigger` writes it
        before scheduling the callbacks), so including it is safe and
        deliberate -- when several inputs trigger at the same timestamp,
        AnyOf reports every one of them, not just the one whose
        processing fired the condition.  Untriggered events are excluded;
        their values are not yet defined.
        """
        return {
            event: event.value
            for event in self._events
            if event.processed or event.triggered
        }

    def _on_fire(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as any of the given events fires."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires once all of the given events have fired."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._collect())


class Environment:
    """The simulation clock and event queue."""

    __slots__ = ("_now", "_queue", "_seq", "_profile", "_run", "_ridx",
                 "_running")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[_QueueItem] = []
        # FIFO tie-break for simultaneous events: a plain int sequence
        # (cheaper than itertools.count and picklable if ever needed).
        self._seq = 0
        # Bulk-scheduled events (schedule_batch) live in this sorted list
        # and are merged with the heap at dispatch time.  Keeping the
        # open-loop pre-schedule out of the heap keeps the heap small, and
        # every sift during the run is O(log heap) of the *dynamic* event
        # population only.  _ridx is the cursor of the next unconsumed
        # entry.
        self._run: List[_QueueItem] = []
        self._ridx = 0
        # True while run() is draining (schedule_batch then must push into
        # the heap: run() holds the sorted list in locals).
        self._running = False
        # Opt-in kernel profiling (repro.obs.KernelProfile); None keeps the
        # dispatch loop on its unobserved fast path.
        self._profile: Optional[KernelProfile] = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def profile(self) -> Optional[KernelProfile]:
        """The attached :class:`~repro.obs.KernelProfile`, or ``None``."""
        return self._profile

    def enable_profiling(self) -> KernelProfile:
        """Attach (and return) a kernel profile counting every dispatch.

        Idempotent: repeated calls return the same profile.  Profiling
        observes the kernel only -- it cannot change event order or
        simulation results (wall times are reported, never consumed).
        """
        if self._profile is None:
            from repro.obs.profile import KernelProfile

            self._profile = KernelProfile()
        return self._profile

    def disable_profiling(self) -> Optional[KernelProfile]:
        """Detach the kernel profile (returns it for final inspection)."""
        profile, self._profile = self._profile, None
        return profile

    # -- callback style ----------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` time units (fast path).

        ``delay`` must be finite and non-negative: NaN or infinite delays
        would silently corrupt the heap order (every comparison against
        NaN is False), so they are rejected eagerly.
        """
        when = self._now + delay
        if not (delay >= 0.0 and when < _INF):
            raise SimulationError(
                f"delay must be finite and >= 0, got {delay!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (when, seq, fn, args))

    def schedule_at(
        self, when: float, fn: Callable[..., Any], *args: Any
    ) -> None:
        """Run ``fn(*args)`` at absolute time ``when`` (finite, >= now)."""
        if not (self._now <= when < _INF):
            raise SimulationError(
                f"cannot schedule at t={when!r} (now={self._now}): "
                f"time must be finite and >= now"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (when, seq, fn, args))

    def schedule_batch(
        self,
        entries: Iterable[Tuple[float, Callable[..., Any], Tuple[Any, ...]]],
    ) -> int:
        """Bulk-schedule ``(when, fn, args)`` triples at absolute times.

        Equivalent to calling :meth:`schedule_at` once per entry in
        iteration order (identical FIFO tie-break sequence, identical
        dispatch order), but validates everything up front and -- when
        nothing else is scheduled, the common open-loop pre-scheduling
        case -- sorts the batch once into a side list that :meth:`run`
        merges with the heap by ``(time, seq)``.  The heap then only ever
        holds dynamically scheduled events, so every push/pop during the
        run sifts through a much smaller heap.  Dispatch order is
        identical either way.  Returns the number of entries scheduled.
        """
        now = self._now
        seq = self._seq
        items: List[_QueueItem] = []
        append = items.append
        for when, fn, args in entries:
            if not (now <= when < _INF):
                raise SimulationError(
                    f"cannot schedule at t={when!r} (now={now}): "
                    f"time must be finite and >= now"
                )
            append((when, seq, fn, args))
            seq += 1
        queue = self._queue
        if self._running or queue or self._ridx < len(self._run):
            push = heapq.heappush
            for item in items:
                push(queue, item)
        else:
            # Sorting compares (when, seq, ...) tuples; seq is unique, so
            # callbacks are never compared.
            items.sort()
            self._run = items
            self._ridx = 0
        self._seq = seq
        return len(items)

    # -- process style -----------------------------------------------------

    def process(self, generator: ProcessGenerator) -> Process:
        """Register ``generator`` as a process; returns its Process event."""
        return Process(self, generator)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay``."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any input event fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when every input event has fired."""
        return AllOf(self, events)

    def _push(
        self, when: float, fn: Callable[..., Any], args: Tuple[Any, ...]
    ) -> None:
        """Internal unvalidated push (callers guarantee a sane ``when``)."""
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (when, seq, fn, args))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._push(self._now + delay, event._process, ())

    # -- execution ----------------------------------------------------------

    def step(self) -> None:
        """Process the single next scheduled item."""
        queue = self._queue
        run_list = self._run
        ridx = self._ridx
        if ridx < len(run_list):
            item = run_list[ridx]
            if queue and queue[0] < item:
                item = heapq.heappop(queue)
            else:
                self._ridx = ridx + 1
        else:
            item = heapq.heappop(queue)
        when, _, fn, args = item
        self._now = when
        if self._profile is None:
            fn(*args)
        else:
            self._profile.dispatch(
                fn, args, len(queue) + len(run_list) - self._ridx + 1
            )

    def run(self, until: Optional[float] = None) -> None:
        """Run until nothing remains scheduled, or until time ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the queue empties earlier.

        This is the kernel's hottest loop: the queue, ``heappop``, and the
        dispatch logic of :meth:`step` are inlined with locals so each
        event costs one pop and one call.  Events come from two sources
        merged by ``(time, seq)``: the heap of dynamically scheduled
        events and the sorted :meth:`schedule_batch` list.  The merge pops
        whichever head is smaller, which is exactly the order one big heap
        would produce, so the split cannot change simulation results.
        """
        queue = self._queue
        pop = heapq.heappop
        run_list = self._run
        rlen = len(run_list)
        ridx = self._ridx
        self._running = True
        try:
            if until is None:
                while True:
                    if ridx < rlen:
                        item = run_list[ridx]
                        if queue and queue[0] < item:
                            item = pop(queue)
                        else:
                            ridx += 1
                            self._ridx = ridx
                    elif queue:
                        item = pop(queue)
                    else:
                        break
                    when, _, fn, args = item
                    self._now = when
                    profile = self._profile
                    if profile is None:
                        fn(*args)
                    else:
                        profile.dispatch(
                            fn, args, len(queue) + (rlen - ridx) + 1
                        )
                return
            if until < self._now:
                raise SimulationError(
                    f"until={until} is in the past (now={self._now})"
                )
            while True:
                if ridx < rlen:
                    item = run_list[ridx]
                    if queue and queue[0] < item:
                        if queue[0][0] > until:
                            break
                        item = pop(queue)
                    else:
                        if item[0] > until:
                            break
                        ridx += 1
                        self._ridx = ridx
                elif queue:
                    if queue[0][0] > until:
                        break
                    item = pop(queue)
                else:
                    break
                when, _, fn, args = item
                self._now = when
                profile = self._profile
                if profile is None:
                    fn(*args)
                else:
                    profile.dispatch(fn, args, len(queue) + (rlen - ridx) + 1)
            self._now = float(until)
        finally:
            self._running = False
            self._ridx = ridx
            if ridx >= rlen:
                # Batch fully consumed: drop it so the next
                # schedule_batch can take the sorted-list path again.
                self._run = []
                self._ridx = 0

    def peek(self) -> float:
        """Time of the next scheduled item, or +inf if nothing remains."""
        queue = self._queue
        when = queue[0][0] if queue else _INF
        ridx = self._ridx
        run_list = self._run
        if ridx < len(run_list) and run_list[ridx][0] < when:
            return run_list[ridx][0]
        return when

    def empty(self) -> bool:
        """True if nothing remains scheduled."""
        return not self._queue and self._ridx >= len(self._run)
