"""A small discrete-event simulation kernel.

This is the substrate every simulator in the library runs on.  It offers two
programming styles:

* **Process style** (SimPy-like): generator functions yield :class:`Timeout`
  or :class:`Event` objects and are resumed when those events fire.  This is
  the readable style used by examples and host-side protocol logic.
* **Callback style**: :meth:`Environment.schedule` runs a plain callable at a
  future time.  This avoids generator overhead and is used by the hot loops
  of the packet-level network simulators.

Time is a float; the unit is chosen by the caller (network simulators use
nanoseconds, the gate-level circuit simulator uses picoseconds).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
]


class Interrupt(Exception):
    """Thrown into a process that has been interrupted via
    :meth:`Process.interrupt`.  ``cause`` carries the interrupter's payload."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*; calling :meth:`succeed` (or
    :meth:`fail`) schedules its callbacks to run at the current simulation
    time.  An event can only be triggered once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once processed)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` or :meth:`fail`."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        self._trigger(True, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception instance")
        self._trigger(False, exception)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._triggered = True
        self._ok = ok
        self._value = value
        self.env._schedule_event(self)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)


class Timeout(Event):
    """An event that fires automatically after ``delay`` time units."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._ok = True
        self._triggered = True
        env._schedule_event(self, delay)


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator yields events; the process is resumed with the event's
    value when it fires (or the event's exception is thrown in).
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError(
                "Process requires a generator (did you call the function?)"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the process at the current time.
        init = Event(env)
        init.succeed()
        init.callbacks.append(self._resume)
        self._waiting_on = init

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error.
        """
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        wakeup = Event(self.env)
        wakeup.fail(Interrupt(cause))
        wakeup.callbacks.append(self._resume)
        self._waiting_on = wakeup

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt as exc:
            # An unhandled Interrupt terminates the process with failure.
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded a non-event: {target!r}"
            )
        if target.callbacks is None:
            # Already processed: resume immediately at the current time.
            wakeup = Event(self.env)
            if target.ok:
                wakeup.succeed(target.value)
            else:
                wakeup.fail(target.value)
            wakeup.callbacks.append(self._resume)
            self._waiting_on = wakeup
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._on_fire(event)
                if self._triggered:
                    break
            else:
                event.callbacks.append(self._on_fire)

    def _collect(self) -> dict:
        return {
            event: event.value
            for event in self._events
            if event.processed or event.triggered
        }

    def _on_fire(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as any of the given events fires."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires once all of the given events have fired."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._collect())


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._counter = itertools.count()
        # Opt-in kernel profiling (repro.obs.KernelProfile); None keeps the
        # dispatch loop on its unobserved fast path.
        self._profile = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def profile(self):
        """The attached :class:`~repro.obs.KernelProfile`, or ``None``."""
        return self._profile

    def enable_profiling(self):
        """Attach (and return) a kernel profile counting every dispatch.

        Idempotent: repeated calls return the same profile.  Profiling
        observes the kernel only -- it cannot change event order or
        simulation results (wall times are reported, never consumed).
        """
        if self._profile is None:
            from repro.obs.profile import KernelProfile

            self._profile = KernelProfile()
        return self._profile

    def disable_profiling(self):
        """Detach the kernel profile (returns it for final inspection)."""
        profile, self._profile = self._profile, None
        return profile

    # -- callback style ----------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` time units (fast path)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._counter), fn, args)
        )

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past: t={when} < now={self._now}"
            )
        heapq.heappush(self._queue, (when, next(self._counter), fn, args))

    # -- process style -----------------------------------------------------

    def process(self, generator: Generator) -> Process:
        """Register ``generator`` as a process; returns its Process event."""
        return Process(self, generator)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay``."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any input event fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when every input event has fired."""
        return AllOf(self, events)

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(
            self._queue,
            (self._now + delay, next(self._counter), event._process, ()),
        )

    # -- execution ----------------------------------------------------------

    def step(self) -> None:
        """Process the single next scheduled item."""
        when, _, fn, args = heapq.heappop(self._queue)
        self._now = when
        if self._profile is None:
            fn(*args)
        else:
            self._profile.dispatch(fn, args, len(self._queue) + 1)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties, or until simulation time ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the queue empties earlier.
        """
        if until is None:
            while self._queue:
                self.step()
            return
        if until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= until:
            self.step()
        self._now = float(until)

    def peek(self) -> float:
        """Time of the next scheduled item, or +inf if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def empty(self) -> bool:
        """True if nothing remains scheduled."""
        return not self._queue
