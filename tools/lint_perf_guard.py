#!/usr/bin/env python3
"""CI perf guard: the whole-tree repro-lint run must stay fast.

Runs the full default lint sweep (every rule, every default path) in a
fresh interpreter and fails if the wall time exceeds the budget.  The
analyzer is a blocking CI gate, so a silent slowdown -- an accidentally
quadratic graph pass, an eagerly-built graph when no project rule is
selected -- degrades every future PR.  The budget is deliberately loose
(the sweep takes a few seconds; the guard allows 30) so only order-of-
magnitude regressions trip it, not CI-runner jitter.

Usage::

    python tools/lint_perf_guard.py [--budget SECONDS]
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BUDGET_S = 30.0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budget",
        type=float,
        default=DEFAULT_BUDGET_S,
        help="wall-time budget in seconds (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint.cli"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - start

    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print(f"lint sweep failed (exit {proc.returncode})", file=sys.stderr)
        return proc.returncode
    print(f"whole-tree lint wall time: {elapsed:.2f}s (budget {args.budget}s)")
    if elapsed > args.budget:
        print(
            f"PERF REGRESSION: lint took {elapsed:.2f}s > {args.budget}s budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
