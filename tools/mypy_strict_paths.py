#!/usr/bin/env python3
"""Print the source paths CI must pass to ``mypy --strict``.

The package list lives in ``[tool.repro] mypy_strict_packages`` in
pyproject.toml -- the single source of truth shared by this script, the
CI workflow (which runs ``mypy --strict $(python tools/mypy_strict_paths.py)``),
and ``tests/test_typing_config.py`` (which asserts the list never drifts
against the ``ignore_errors`` exemption list).

Usage::

    python tools/mypy_strict_paths.py            # space-separated paths
    python tools/mypy_strict_paths.py --packages # dotted package names
"""

from __future__ import annotations

import sys
import tomllib
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent


def strict_packages(pyproject: Path | None = None) -> List[str]:
    """The dotted package names held to ``mypy --strict``, sorted."""
    path = pyproject or REPO_ROOT / "pyproject.toml"
    with path.open("rb") as fh:
        data = tomllib.load(fh)
    packages = data.get("tool", {}).get("repro", {}).get(
        "mypy_strict_packages", []
    )
    if not packages:
        raise SystemExit(
            "pyproject.toml defines no [tool.repro] mypy_strict_packages"
        )
    return sorted(packages)


def strict_paths(pyproject: Path | None = None) -> List[str]:
    """Repo-relative ``src/...`` paths for the strict packages."""
    paths = []
    for package in strict_packages(pyproject):
        rel = Path("src", *package.split("."))
        if not (REPO_ROOT / rel).is_dir():
            raise SystemExit(f"strict package {package!r} has no {rel}/")
        paths.append(rel.as_posix())
    return paths


def main(argv: List[str]) -> int:
    if "--packages" in argv:
        print(" ".join(strict_packages()))
    else:
        print(" ".join(strict_paths()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
