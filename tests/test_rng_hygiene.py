"""RNG-hygiene audit.

Reproducibility rests on every random draw flowing through explicitly
seeded generators (``repro.sim.rand.stream`` / per-test ``random.Random``
instances).  A single ``random.seed(...)`` or module-level draw anywhere
in the source or test tree silently couples unrelated tests and breaks
the serial-vs-parallel determinism guarantee, so this suite greps for it
at test time and also checks the stream factory really is stateless.
"""

import random
import re
from pathlib import Path

import pytest

from repro.sim import rand

REPO = Path(__file__).resolve().parent.parent
SCANNED_TREES = ("src/repro", "tests", "benchmarks")

GLOBAL_RNG_PATTERNS = (
    # Seeding or drawing from the process-global stdlib RNG.  The
    # lookbehind lets instance calls through (e.g. ``self._rng.random()``,
    # ``np.random.Generator`` annotations) while catching module-level use.
    re.compile(
        r"(?<![.\w])random\.(seed|random|randint|randrange|choice|choices"
        r"|shuffle|sample|uniform|expovariate|gauss|getrandbits)\s*\("
    ),
    # The numpy legacy global RNG.
    re.compile(r"\bnp\.random\.(seed|rand|randn|randint|choice|shuffle)\s*\("),
    re.compile(r"\bnumpy\.random\.(seed|rand|randn|randint|choice|shuffle)\s*\("),
)


def python_sources():
    for tree in SCANNED_TREES:
        for path in sorted((REPO / tree).rglob("*.py")):
            # The lint fixture corpus is deliberately full of RNG
            # violations (repro-lint's RNG-001 true positives); the
            # lint engine excludes it for the same reason.
            if "lint_fixtures" in path.parts:
                continue
            yield path


def test_no_global_rng_use_anywhere():
    me = Path(__file__).resolve()
    offenders = []
    for path in python_sources():
        if path.resolve() == me:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for pattern in GLOBAL_RNG_PATTERNS:
                if pattern.search(line):
                    rel = path.relative_to(REPO)
                    offenders.append(f"{rel}:{lineno}: {line.strip()}")
    assert not offenders, (
        "global RNG state used; route draws through repro.sim.rand.stream "
        "or a local random.Random instance:\n" + "\n".join(offenders)
    )


def test_rand_module_holds_no_shared_generator():
    """``repro.sim.rand`` must be a pure factory: no module-level Random
    (or numpy Generator) instance that draws could be routed through."""
    for name in dir(rand):
        value = getattr(rand, name)
        assert not isinstance(value, random.Random), name
        assert type(value).__name__ != "Generator", name


def test_streams_are_independent():
    """Draws from one stream never perturb another (same or different
    name): each call mints a fresh, independently seeded generator."""
    a1 = rand.stream(5, "alpha")
    b = rand.stream(5, "beta")
    _ = [b.random() for _ in range(100)]  # interleaved draws elsewhere
    a2 = rand.stream(5, "alpha")
    assert [a1.random() for _ in range(10)] == [a2.random() for _ in range(10)]


def test_derive_seed_is_pure():
    assert rand.derive_seed(3, "x") == rand.derive_seed(3, "x")
    assert rand.derive_seed(3, "x") != rand.derive_seed(4, "x")
    assert rand.derive_seed(3, "x") != rand.derive_seed(3, "y")


def test_global_random_state_untouched_by_a_simulation():
    """Running a full experiment cell must not consume from (or reseed)
    the process-global RNG."""
    from repro.analysis.experiments import run_open_loop

    random.seed(12345)  # noqa: local to this test, restored below
    before = random.getstate()
    run_open_loop("baldur", 16, "transpose", 0.5, 2, seed=0)
    assert random.getstate() == before
    random.seed()


@pytest.mark.parametrize("tree", SCANNED_TREES)
def test_scan_covers_nonempty_trees(tree):
    """Guard the audit itself: if a tree moves, the scan must fail loudly
    rather than silently scanning nothing."""
    assert any((REPO / tree).rglob("*.py")), tree
