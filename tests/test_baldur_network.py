"""Tests for the Baldur bufferless network simulator (Sec. IV/V)."""

import random

import pytest

from repro import constants as C
from repro.core import BaldurNetwork
from repro.errors import ConfigurationError


def run_permutation(net, n, packets_per_node=10, gap_ns=500.0, seed=0):
    rng = random.Random(seed)
    perm = list(range(n))
    rng.shuffle(perm)
    for src in range(n):
        dst = perm[src] if perm[src] != src else (src + 1) % n
        for j in range(packets_per_node):
            net.submit(src, dst, time=j * gap_ns)
    return net.run(until=100_000_000)


class TestBasicDelivery:
    def test_single_packet_latency(self):
        # Unloaded: 2 x 100 ns links + stages x switch latency + tx time.
        net = BaldurNetwork(64, multiplicity=4, seed=0)
        net.submit(0, 33, time=0.0)
        stats = net.run()
        expected = 2 * 100 + 6 * 1.5 + 204.8
        assert stats.average_latency == pytest.approx(expected, rel=0.01)

    def test_switch_latency_from_table5(self):
        assert BaldurNetwork(64, multiplicity=4).switch_latency_ns == 1.5
        assert BaldurNetwork(64, multiplicity=2).switch_latency_ns == 0.49

    def test_all_delivered_with_retransmission(self):
        net = BaldurNetwork(64, multiplicity=3, seed=1)
        stats = run_permutation(net, 64, packets_per_node=20, gap_ns=300.0)
        assert stats.delivered == stats.injected
        assert net.lost_packets == 0

    def test_much_faster_than_electrical_unloaded(self):
        from repro.electrical import MultiButterflyNetwork
        baldur = BaldurNetwork(64, multiplicity=4, seed=0)
        baldur.submit(0, 33, time=0.0)
        emb = MultiButterflyNetwork(64, multiplicity=4, seed=0)
        emb.submit(0, 33, time=0.0)
        lb = baldur.run().average_latency
        le = emb.run().average_latency
        # 90 ns vs 1.5 ns switch latency across 6 stages.
        assert le - lb > 6 * 80

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BaldurNetwork(64, max_attempts=0)

    def test_describe(self):
        assert "baldur" in BaldurNetwork(64).describe()


class TestDropsAndRetransmission:
    def test_head_on_collision_drops_one(self):
        # m=1: two simultaneous packets that share every stage-0 resource.
        net = BaldurNetwork(
            4, multiplicity=1, seed=0, enable_retransmission=False
        )
        net.submit(0, 2, time=0.0)
        net.submit(1, 2, time=0.0)  # same entry switch, same direction
        stats = net.run()
        assert stats.delivered == 1
        assert stats.drops == 1

    def test_multiplicity_two_resolves_collision(self):
        net = BaldurNetwork(
            4, multiplicity=2, seed=0, enable_retransmission=False
        )
        net.submit(0, 2, time=0.0)
        net.submit(1, 2, time=0.0)
        stats = net.run()
        # Both fit through the two physical ports of the direction -- but
        # they then collide at the final stage's host direction only if
        # wired to the same last-stage port at the same instant; with m=2
        # both ports exist there too, so both deliver.
        assert stats.delivered == 2

    def test_retransmission_recovers_drop(self):
        net = BaldurNetwork(4, multiplicity=1, seed=0)
        net.submit(0, 2, time=0.0)
        net.submit(1, 2, time=0.0)
        stats = net.run(until=1_000_000)
        assert stats.delivered == 2
        assert stats.retransmissions >= 1

    def test_drop_rate_decreases_with_multiplicity(self):
        rates = []
        for m in (1, 2, 3):
            net = BaldurNetwork(
                64, multiplicity=m, seed=2, enable_retransmission=False
            )
            stats = run_permutation(net, 64, packets_per_node=30, gap_ns=250.0)
            rates.append(stats.drop_rate)
        assert rates[0] > rates[1] > rates[2]

    def test_retx_buffer_tracks_occupancy(self):
        net = BaldurNetwork(64, multiplicity=1, seed=3)
        run_permutation(net, 64, packets_per_node=10, gap_ns=250.0)
        assert net.peak_retx_buffer_kb > 0
        # Sec. IV-E: 536 KB suffices; we must stay well under 1 MB.
        assert net.peak_retx_buffer_kb < C.RETX_BUFFER_PROVISIONED_MB * 1024

    def test_max_attempts_gives_up(self):
        # A 4-node m=1 network with both flows forced through one port and
        # retransmission capped: eventually gives up and counts the loss.
        net = BaldurNetwork(4, multiplicity=1, seed=0, max_attempts=1)
        net.submit(0, 2, time=0.0)
        net.submit(1, 2, time=0.0)
        net.run(until=1_000_000)
        assert net.lost_packets == 1

    def test_acks_consume_nic_time(self):
        # The receiver's ACK shares its NIC with its own data traffic.
        net = BaldurNetwork(8, multiplicity=2, seed=0)
        net.submit(0, 5, time=0.0)
        net.run(until=1_000_000)
        assert net._nic_free_at[5] > 0.0

    def test_duplicate_delivery_counted_once(self):
        # Force an ACK loss so the source retransmits a delivered packet:
        # the destination must not double-count it.
        net = BaldurNetwork(4, multiplicity=1, seed=1, timeout_ns=400.0)
        net.submit(0, 2, time=0.0)
        net.submit(1, 2, time=0.0)  # collides: one drop, one delivery
        stats = net.run(until=2_000_000)
        assert stats.delivered == 2
        assert len(net._delivered_pids) == 2


class TestLatencyUnderLoad:
    def test_latency_grows_with_load(self):
        light = run_permutation(
            BaldurNetwork(64, 4, seed=1), 64, 10, gap_ns=2000.0
        )
        heavy = run_permutation(
            BaldurNetwork(64, 4, seed=1), 64, 10, gap_ns=220.0
        )
        assert heavy.average_latency > light.average_latency

    def test_close_to_ideal_at_low_load(self):
        # Sec. V-B: Baldur's average latency is 1.7-3.4X the ideal 200 ns.
        stats = run_permutation(
            BaldurNetwork(64, 4, seed=1), 64, 10, gap_ns=2000.0
        )
        assert stats.average_latency < 3.4 * C.IDEAL_PACKET_LATENCY_NS

    def test_deterministic_given_seed(self):
        a = run_permutation(BaldurNetwork(64, 3, seed=9), 64, 5)
        b = run_permutation(BaldurNetwork(64, 3, seed=9), 64, 5)
        assert a.latencies == b.latencies
