"""Tests for the power models against the paper's published anchors."""

import pytest

from repro import constants as C
from repro.power import (
    FIG8_SCALES,
    NETWORK_POWER_MODELS,
    awgr_comparison,
    baldur_power,
    baldur_switch_power_per_node,
    dragonfly_power,
    electrical_2x2_switch_power_w,
    electrical_internal_power_w,
    fattree_power,
    multibutterfly_power,
    power_scaling_sweep,
    scaled_power,
    sensitivity_ratios,
    tl_switch_power_w,
)


class TestCalibrationAnchors:
    def test_966x_anchor_exact(self):
        # Abstract: the 2x2 electrical switch consumes 96.6X more power
        # than the TL switch.
        ratio = electrical_2x2_switch_power_w(4) / tl_switch_power_w(4)
        assert ratio == pytest.approx(C.ELECTRICAL_TO_TL_SWITCH_POWER_RATIO)

    def test_tl_switch_power_from_gates(self):
        assert tl_switch_power_w(4) == pytest.approx(
            1112 * 0.406e-3, rel=0.01
        )

    def test_internal_power_quadratic(self):
        assert electrical_internal_power_w(16) == pytest.approx(
            4 * electrical_internal_power_w(8)
        )

    def test_internal_power_validation(self):
        with pytest.raises(ValueError):
            electrical_internal_power_w(1)


class TestMultiButterflyAnchor:
    def test_emb_1k_near_2235_w(self):
        # Sec. II-A: 223.5 W per node at 1,024 nodes.
        total = multibutterfly_power(1024).total
        assert total == pytest.approx(C.EMB_POWER_PER_NODE_1K_W, rel=0.05)

    def test_emb_oeo_serdes_fraction_near_417pct(self):
        frac = multibutterfly_power(1024).oeo_serdes_fraction
        assert frac == pytest.approx(C.EMB_OEO_SERDES_FRACTION, abs=0.03)

    def test_emb_6x_fattree_at_1k(self):
        ratio = multibutterfly_power(1024).total / fattree_power(1024).total
        assert ratio == pytest.approx(
            C.EMB_TO_FATTREE_POWER_RATIO_1K, rel=0.2
        )

    def test_emb_growth_2x_to_1m(self):
        # Fig. 8: eMB per-node power doubles from 1K to 1M (10 -> 20
        # stages at fixed multiplicity).
        growth = (
            multibutterfly_power(2**20).total
            / multibutterfly_power(1024).total
        )
        assert growth == pytest.approx(
            C.POWER_GROWTH_1K_TO_1M["multibutterfly"], rel=0.05
        )


class TestBaldurPower:
    def test_baldur_cheapest_at_every_scale(self):
        for scale in FIG8_SCALES:
            baldur = baldur_power(scale).total
            for name, model in NETWORK_POWER_MODELS.items():
                if name != "baldur":
                    assert model(scale).total > baldur, (name, scale)

    def test_advantage_range_at_1k(self):
        # Fig. 8: 3.2X-26.4X at the 1K-2K scale.
        baldur = baldur_power(1024).total
        ratios = [
            NETWORK_POWER_MODELS[n](1024).total / baldur
            for n in ("dragonfly", "fattree", "multibutterfly")
        ]
        assert min(ratios) == pytest.approx(
            C.BALDUR_POWER_ADVANTAGE_1K[0], rel=0.25
        )
        assert max(ratios) == pytest.approx(
            C.BALDUR_POWER_ADVANTAGE_1K[1], rel=0.25
        )

    def test_advantage_range_at_1m(self):
        baldur = baldur_power(2**20).total
        ratios = [
            NETWORK_POWER_MODELS[n](2**20).total / baldur
            for n in ("dragonfly", "fattree", "multibutterfly")
        ]
        assert min(ratios) == pytest.approx(
            C.BALDUR_POWER_ADVANTAGE_1M[0], rel=0.25
        )
        assert max(ratios) == pytest.approx(
            C.BALDUR_POWER_ADVANTAGE_1M[1], rel=0.25
        )

    def test_baldur_growth_17x(self):
        growth = baldur_power(2**20).total / baldur_power(1024).total
        assert growth == pytest.approx(
            C.POWER_GROWTH_1K_TO_1M["baldur"], rel=0.1
        )

    def test_multiplicity_bump_at_16k(self):
        # Sec. VI-A: the benefit dips at 16K because m goes 4 -> 5.
        per_switch_8k = baldur_power(8192).detail["multiplicity"]
        per_switch_16k = baldur_power(16384).detail["multiplicity"]
        assert (per_switch_8k, per_switch_16k) == (4, 5)

    def test_retx_buffer_included(self):
        assert baldur_power(1024).retx_buffer == pytest.approx(0.741)

    def test_explicit_multiplicity_override(self):
        assert baldur_power(1024, 5).total > baldur_power(1024, 4).total


class TestFatTreeAndDragonfly:
    def test_fattree_growth_near_9x(self):
        growth = fattree_power(2**20).total / fattree_power(1024).total
        assert growth == pytest.approx(
            C.POWER_GROWTH_1K_TO_1M["fattree"], rel=0.2
        )

    def test_dragonfly_growth_near_78x(self):
        growth = dragonfly_power(2**20).total / dragonfly_power(1024).total
        assert growth == pytest.approx(
            C.POWER_GROWTH_1K_TO_1M["dragonfly"], rel=0.3
        )

    def test_dragonfly_local_links_go_optical_at_83k(self):
        below = dragonfly_power(32_768)
        above = dragonfly_power(120_000)
        assert below.detail["local_links_optical"] == 0.0
        assert above.detail["local_links_optical"] == 1.0

    def test_fattree_128k_growth_vs_1k(self):
        # Sec. II-A: radix-80 fat-tree at 128K uses several times more
        # power per node than the radix-16 tree at 1K (paper: 6.4X).
        growth = fattree_power(128_000).total / fattree_power(1024).total
        assert 3.0 < growth < 7.0

    def test_sweep_covers_all_networks(self):
        sweep = power_scaling_sweep([1024, 4096])
        assert set(sweep) == set(NETWORK_POWER_MODELS)
        assert all(len(v) == 2 for v in sweep.values())


class TestSensitivity:
    def test_pessimistic_case_still_favors_baldur(self):
        # Fig. 9: even with electrical halved and optical doubled, Baldur
        # wins by 5.1X / 8.2X / 14.7X at the 1M scale.
        ratios = sensitivity_ratios(2**20, "pessimistic")
        for name, paper in C.SENSITIVITY_PESSIMISTIC_RATIOS.items():
            assert ratios[name] == pytest.approx(paper, rel=0.35)
            assert ratios[name] > 3.0

    def test_optimistic_case_increases_advantage(self):
        base = sensitivity_ratios(2**20, "baseline")
        optimistic = sensitivity_ratios(2**20, "optimistic")
        for name in base:
            assert optimistic[name] > base[name]

    def test_scaled_power_unknown_network(self):
        with pytest.raises(KeyError):
            scaled_power("token-ring", 1024, 1.0, 1.0)


class TestAWGR:
    def test_baldur_07_w_at_32_nodes(self):
        power = baldur_switch_power_per_node(32)
        assert power == pytest.approx(
            C.BALDUR_32NODE_POWER_PER_NODE_W, rel=0.1
        )

    def test_awgr_42_w_at_32_nodes(self):
        report = awgr_comparison()
        assert report["awgr_w_per_node"] == pytest.approx(
            C.AWGR_32NODE_POWER_PER_NODE_W, rel=0.01
        )

    def test_awgr_latency_disadvantage(self):
        report = awgr_comparison()
        assert report["awgr_header_latency_ns"] > 50 * (
            report["baldur_switch_latency_ns"]
        )

    def test_awgr_wavelength_validation(self):
        from repro.errors import ConfigurationError
        from repro.power.awgr import AWGRPowerModel
        with pytest.raises(ConfigurationError):
            AWGRPowerModel(wavelengths=0)
