"""Smoke tests: every example script must run and produce its output."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_has_enough_examples():
    scripts = list(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3


def test_quickstart():
    out = run_example("quickstart.py")
    assert "avg latency" in out
    assert "baldur" in out


def test_switch_circuit_demo():
    out = run_example("switch_circuit_demo.py")
    assert "TL gates" in out
    assert "masked off" in out
    assert "dropped" in out  # the contending packet loses


def test_hpc_workloads_small():
    out = run_example("hpc_workloads.py", "64")
    assert "geomean" in out
    assert "AMG" in out and "FB" in out


def test_scale_power_study():
    out = run_example("scale_power_study.py")
    assert "1,048,576" in out
    assert "cabinets" in out


def test_worst_case_traffic():
    out = run_example("worst_case_traffic.py", timeout=500)
    assert "required m" in out
    assert "transpose" in out


def test_resilience_demo():
    out = run_example("resilience_demo.py", timeout=500)
    assert "conservation" in out
    assert "Diagnosis of two concurrent faults" in out
    assert "Degraded mode" in out
    assert "unmasked" in out and "masked" in out


def test_technology_scaling():
    out = run_example("technology_scaling.py")
    assert "node scale" in out
    assert "0.25" in out
