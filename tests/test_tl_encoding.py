"""Tests for the length-based encoding and the 8b/10b codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants as C
from repro.errors import EncodingError
from repro.tl.encoding import (
    OpticalWaveform,
    decode_8b10b,
    decode_packet,
    decode_routing_bits,
    encode_8b10b,
    encode_packet,
    encode_routing_bits,
    length_encoding_overhead,
)


class TestOpticalWaveform:
    def test_from_intervals(self):
        wf = OpticalWaveform.from_intervals([(0, 1), (2, 3)])
        assert wf.edges == (0, 1, 2, 3)

    def test_level_at(self):
        wf = OpticalWaveform.from_intervals([(1.0, 2.0)])
        assert wf.level_at(0.5) == 0
        assert wf.level_at(1.5) == 1
        assert wf.level_at(2.5) == 0

    def test_adjacent_intervals_merge(self):
        wf = OpticalWaveform.from_intervals([(0, 1), (1, 2)])
        assert wf.edges == (0, 2)

    def test_unsorted_intervals_rejected(self):
        with pytest.raises(EncodingError):
            OpticalWaveform.from_intervals([(2, 3), (0, 1)])

    def test_empty_interval_rejected(self):
        with pytest.raises(EncodingError):
            OpticalWaveform.from_intervals([(1, 1)])

    def test_nonmonotonic_edges_rejected(self):
        with pytest.raises(EncodingError):
            OpticalWaveform((3.0, 1.0))

    def test_shifted(self):
        wf = OpticalWaveform.from_intervals([(0, 1)]).shifted(10)
        assert wf.edges == (10, 11)

    def test_start_end(self):
        wf = OpticalWaveform.from_intervals([(2, 3), (5, 7)])
        assert wf.start == 2 and wf.end == 7

    def test_empty_waveform_start_end(self):
        wf = OpticalWaveform(())
        assert wf.start == float("inf") and wf.end == float("-inf")

    def test_intervals_roundtrip(self):
        intervals = [(0.0, 2.0), (3.0, 4.0)]
        assert OpticalWaveform.from_intervals(intervals).intervals() == intervals


class TestRoutingBitEncoding:
    def test_zero_is_2t_of_light(self):
        wf = encode_routing_bits([0], bit_period=1.0)
        assert wf.intervals() == [(0.0, 2.0)]

    def test_one_is_1t_of_light(self):
        wf = encode_routing_bits([1], bit_period=1.0)
        assert wf.intervals() == [(0.0, 1.0)]

    def test_slot_is_3t(self):
        wf = encode_routing_bits([1, 0], bit_period=1.0)
        assert wf.intervals() == [(0.0, 1.0), (3.0, 5.0)]

    def test_bit_period_scales(self):
        wf = encode_routing_bits([0], bit_period=40.0)
        assert wf.intervals() == [(0.0, 80.0)]

    def test_invalid_bit_rejected(self):
        with pytest.raises(EncodingError):
            encode_routing_bits([2])

    def test_decode_inverse_of_encode(self):
        bits = [0, 1, 1, 0, 1, 0, 0, 1]
        wf = encode_routing_bits(bits, bit_period=40.0)
        assert decode_routing_bits(wf, len(bits), bit_period=40.0) == bits

    def test_decode_tolerates_margin(self):
        # A '1' pulse stretched by 0.4T still decodes as '1'.
        wf = OpticalWaveform.from_intervals([(0.0, 1.4)])
        assert decode_routing_bits(wf, 1, bit_period=1.0) == [1]

    def test_decode_rejects_out_of_margin_pulse(self):
        # A pulse of 1.5T is ambiguous: outside 0.42T of both 1T and 2T.
        wf = OpticalWaveform.from_intervals([(0.0, 1.5)])
        with pytest.raises(EncodingError):
            decode_routing_bits(wf, 1, bit_period=1.0)

    def test_decode_too_few_pulses(self):
        wf = encode_routing_bits([1])
        with pytest.raises(EncodingError):
            decode_routing_bits(wf, 2)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=20))
    def test_roundtrip_property(self, bits):
        wf = encode_routing_bits(bits, bit_period=40.0)
        assert decode_routing_bits(wf, len(bits), bit_period=40.0) == bits


class Test8b10b:
    def test_roundtrip_simple(self):
        data = b"\x00\xff\xa5\x5a"
        assert decode_8b10b(encode_8b10b(data)) == data

    def test_ten_bits_per_byte(self):
        assert len(encode_8b10b(b"abc")) == 30

    def test_run_length_bounded_by_5(self):
        # The property the 6T end-of-packet rule relies on (Sec. IV-C).
        import itertools
        for data in (bytes(range(256)), b"\x00" * 64, b"\xff" * 64):
            bits = encode_8b10b(data)
            longest = max(
                len(list(group)) for _, group in itertools.groupby(bits)
            )
            assert longest <= 5, f"run of {longest} in {data[:8]!r}..."

    def test_dc_balance(self):
        bits = encode_8b10b(bytes(range(256)) * 4)
        ones = sum(bits)
        assert abs(ones - len(bits) / 2) <= len(bits) * 0.02

    def test_invalid_symbol_rejected(self):
        with pytest.raises(EncodingError):
            decode_8b10b([0] * 10)

    def test_invalid_length_rejected(self):
        with pytest.raises(EncodingError):
            decode_8b10b([1] * 7)

    def test_byte_out_of_range(self):
        with pytest.raises(EncodingError):
            encode_8b10b([300])

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=50)
    def test_roundtrip_property(self, data):
        assert decode_8b10b(encode_8b10b(data)) == data

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=50)
    def test_run_length_property(self, data):
        import itertools
        bits = encode_8b10b(data)
        longest = max(len(list(g)) for _, g in itertools.groupby(bits))
        assert longest <= 5


class TestPacketCodec:
    def test_roundtrip(self):
        bits, payload = [0, 1, 1, 0], b"hello world"
        wf = encode_packet(bits, payload, bit_period=40.0)
        got_bits, got_payload = decode_packet(wf, 4, bit_period=40.0)
        assert got_bits == bits
        assert got_payload == payload

    def test_payload_starts_after_routing_slots(self):
        wf = encode_packet([1], b"\xff", bit_period=1.0)
        # Routing slot ends at 3T; payload light must not start before.
        assert all(s >= 3.0 or e <= 1.0 for s, e in wf.intervals())

    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=10),
        st.binary(min_size=1, max_size=16),
    )
    @settings(max_examples=30)
    def test_roundtrip_property(self, bits, payload):
        wf = encode_packet(bits, payload, bit_period=40.0)
        got_bits, got_payload = decode_packet(wf, len(bits), bit_period=40.0)
        assert got_bits == bits and got_payload == payload


class TestEncodingOverhead:
    def test_paper_configuration_is_sub_half_percent(self):
        # Sec. IV-B quotes 0.34% for 8 routing bits + 512 B payload; our
        # accounting brackets it.
        with_gap = length_encoding_overhead(8, 512, include_end_gap=True)
        without = length_encoding_overhead(8, 512, include_end_gap=False)
        assert without < 0.0034 < with_gap
        assert with_gap < 0.005

    def test_overhead_shrinks_with_payload(self):
        small = length_encoding_overhead(8, 64)
        large = length_encoding_overhead(8, 4096)
        assert large < small

    def test_overhead_grows_with_routing_bits(self):
        assert length_encoding_overhead(20, 512) > length_encoding_overhead(
            8, 512
        )

    def test_invalid_arguments(self):
        with pytest.raises(EncodingError):
            length_encoding_overhead(0, 512)
        with pytest.raises(EncodingError):
            length_encoding_overhead(8, 0)

    def test_constants_sanity(self):
        assert C.ENCODING_SLOT_PERIODS == 3
        assert C.ENCODING_ZERO_PERIODS == 2
        assert C.ENCODING_ONE_PERIODS == 1
