"""Tests for traffic patterns, injection drivers, and HPC traces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants as C
from repro.electrical import IdealNetwork
from repro.errors import ConfigurationError
from repro.traffic import (
    HPC_WORKLOADS,
    amg_trace,
    bisection,
    crystal_router_trace,
    fillboundary_trace,
    group_permutation,
    hotspot,
    inject_open_loop,
    mean_interarrival_ns,
    multigrid_trace,
    ping_pong1_pairs,
    ping_pong2_pairs,
    random_permutation,
    replay_trace,
    run_ping_pong,
    transpose,
)


class TestPatterns:
    def test_random_permutation_fixed_point_free(self):
        pattern = random_permutation(64, seed=1)
        assert len(pattern) == 64
        assert all(src != dst for src, dst in pattern.items())

    def test_random_permutation_is_permutation(self):
        pattern = random_permutation(64, seed=1)
        assert sorted(pattern.values()) == list(range(64))

    def test_random_permutation_deterministic(self):
        assert random_permutation(32, seed=7) == random_permutation(32, seed=7)

    def test_transpose_definition(self):
        # 6-bit addresses: a5a4a3 a2a1a0 -> a2a1a0 a5a4a3.
        pattern = transpose(64)
        assert pattern[0b000001] == 0b001000
        assert pattern[0b111000] == 0b000111

    def test_transpose_fixed_points_silent(self):
        pattern = transpose(64)
        assert 0 not in pattern  # transpose(0) == 0
        assert all(src != dst for src, dst in pattern.items())

    def test_transpose_involution(self):
        pattern = transpose(256)
        for src, dst in pattern.items():
            assert pattern[dst] == src

    def test_transpose_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            transpose(100)

    def test_bisection_crosses_halves(self):
        pattern = bisection(64, seed=2)
        for src, dst in pattern.items():
            assert (src < 32) != (dst < 32)

    def test_bisection_symmetric(self):
        pattern = bisection(64, seed=2)
        for src, dst in pattern.items():
            assert pattern[dst] == src

    def test_bisection_odd_rejected(self):
        with pytest.raises(ConfigurationError):
            bisection(7)

    def test_group_permutation_leaves_own_group(self):
        from repro.topology.dragonfly import DragonflyTopology
        n = 128
        topo = DragonflyTopology.for_nodes(n)
        per_group = topo.p * topo.a
        pattern = group_permutation(n, seed=3)
        for src, dst in pattern.items():
            assert src // per_group != dst // per_group

    def test_hotspot_all_to_one(self):
        pattern = hotspot(32, target=5)
        assert len(pattern) == 31
        assert set(pattern.values()) == {5}
        assert 5 not in pattern

    def test_hotspot_target_validated(self):
        with pytest.raises(ConfigurationError):
            hotspot(32, target=32)

    def test_ping_pong1_pairs_disjoint(self):
        pairs = ping_pong1_pairs(64, seed=4)
        nodes = [n for pair in pairs for n in pair]
        assert len(nodes) == len(set(nodes)) == 64

    def test_ping_pong2_crosses_group_boundary(self):
        pairs = ping_pong2_pairs(128, seed=0)
        assert pairs, "no pairs generated"
        from repro.topology.dragonfly import DragonflyTopology
        per_group = DragonflyTopology.for_nodes(128).p * \
            DragonflyTopology.for_nodes(128).a
        for a, b in pairs:
            assert a // per_group == 0
            assert b // per_group == 1

    @given(st.integers(3, 8).map(lambda b: 2**b))
    @settings(max_examples=10)
    def test_transpose_values_in_range(self, n):
        pattern = transpose(n)
        assert all(0 <= dst < n for dst in pattern.values())


class TestInjection:
    def test_mean_interarrival_eq1(self):
        # 512 B / (0.7 * 25 Gbps), with the 8b/10b wire expansion.
        expected = C.packet_serialization_ns(512) / 0.7
        assert mean_interarrival_ns(0.7) == pytest.approx(expected)

    def test_load_validation(self):
        with pytest.raises(ConfigurationError):
            mean_interarrival_ns(0.0)
        with pytest.raises(ConfigurationError):
            mean_interarrival_ns(1.5)

    def test_open_loop_injects_all(self):
        net = IdealNetwork(16)
        inject_open_loop(net, random_permutation(16, 0), 0.5, 10, seed=1)
        stats = net.run()
        assert stats.injected == 160
        assert stats.delivered == 160

    def test_open_loop_respects_load(self):
        # Average injection gap should be near the Eq. 1 mean.
        net = IdealNetwork(4)
        inject_open_loop(net, {0: 1}, 0.5, 400, seed=1)
        net.run()
        total_time = net.env.now - C.IDEAL_PACKET_LATENCY_NS
        mean_gap = total_time / 400
        assert mean_gap == pytest.approx(mean_interarrival_ns(0.5), rel=0.2)

    def test_open_loop_packets_validated(self):
        with pytest.raises(ConfigurationError):
            inject_open_loop(IdealNetwork(4), {0: 1}, 0.5, 0)

    def test_ping_pong_round_trips(self):
        net = IdealNetwork(4)
        stats = run_ping_pong(net, [(0, 1)], rounds=3)
        # 1 opening ping + up to 2 x rounds replies.
        assert stats.delivered >= 6

    def test_ping_pong_serialized_in_time(self):
        net = IdealNetwork(4)
        run_ping_pong(net, [(0, 1)], rounds=2)
        assert net.env.now >= 4 * C.IDEAL_PACKET_LATENCY_NS

    def test_ping_pong_needs_pairs(self):
        with pytest.raises(ConfigurationError):
            run_ping_pong(IdealNetwork(4), [], rounds=1)


class TestHPCTraces:
    def test_amg_neighbours_are_grid_local(self):
        trace = amg_trace(64, rounds=1)
        assert len(trace) == 1
        assert all(src != dst for src, dst, _ in trace[0])

    def test_amg_symmetric_exchange(self):
        msgs = set((s, d) for s, d, _ in amg_trace(64, rounds=1)[0])
        assert all((d, s) in msgs for s, d in msgs)

    def test_crystal_router_is_hypercube(self):
        trace = crystal_router_trace(16, rounds=1)
        assert len(trace) == 4  # log2(16) rounds
        for r, messages in enumerate(trace):
            for src, dst, _ in messages:
                assert dst == src ^ (1 << r)

    def test_crystal_router_validates(self):
        with pytest.raises(ConfigurationError):
            crystal_router_trace(100)

    def test_multigrid_vcycle_sizes_shrink_then_grow(self):
        trace = multigrid_trace(64, cycles=1)
        sizes = [messages[0][2] for messages in trace]
        assert sizes[0] >= sizes[len(sizes) // 2]

    def test_fb_small_far_messages(self):
        trace = fillboundary_trace(64, rounds=2, message_bytes=256)
        assert len(trace) == 2
        for src, dst, size in trace[0]:
            assert abs(src - dst) == 32
            assert size == 256

    def test_fb_validates(self):
        with pytest.raises(ConfigurationError):
            fillboundary_trace(7)

    def test_workload_registry(self):
        assert set(HPC_WORKLOADS) == {
            "AMG", "CrystalRouter", "MultiGrid", "FB",
        }

    def test_replay_bulk_synchronous(self):
        # On the ideal network each round takes exactly one latency unit,
        # so k rounds finish at k x 200 ns.
        net = IdealNetwork(64)
        trace = fillboundary_trace(64, rounds=3)
        stats = replay_trace(net, trace)
        assert stats.delivered == sum(len(r) for r in trace)
        assert net.env.now == pytest.approx(3 * 200.0)

    def test_replay_packetizes_large_messages(self):
        net = IdealNetwork(16)
        trace = [[(0, 1, 10_000)]]
        stats = replay_trace(net, trace, max_message_bytes=4096)
        assert stats.injected == 3  # 4096 + 4096 + 1808

    def test_replay_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            replay_trace(IdealNetwork(4), [])

    def test_replay_on_baldur(self):
        from repro.core import BaldurNetwork
        net = BaldurNetwork(64, multiplicity=3, seed=0)
        stats = replay_trace(net, fillboundary_trace(64, rounds=2))
        assert stats.delivered == stats.injected
