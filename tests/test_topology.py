"""Tests for topology construction (butterfly, dragonfly, fat-tree)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import (
    DragonflyTopology,
    FatTreeTopology,
    IdealTopology,
    MultiButterflyTopology,
)


class TestMultiButterfly:
    def test_stage_count(self):
        topo = MultiButterflyTopology(1024, multiplicity=4)
        assert topo.n_stages == 10
        assert topo.switches_per_stage == 512

    def test_total_switches(self):
        topo = MultiButterflyTopology(64)
        assert topo.total_switches == 6 * 32
        assert topo.switches_per_node == pytest.approx(3.0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(TopologyError):
            MultiButterflyTopology(100)

    def test_rejects_tiny(self):
        with pytest.raises(TopologyError):
            MultiButterflyTopology(2)

    def test_rejects_bad_multiplicity(self):
        with pytest.raises(TopologyError):
            MultiButterflyTopology(64, multiplicity=0)

    def test_entry_switch(self):
        topo = MultiButterflyTopology(16)
        assert topo.entry_switch(0) == 0
        assert topo.entry_switch(5) == 2
        with pytest.raises(TopologyError):
            topo.entry_switch(16)

    def test_routing_bits_msb_first(self):
        topo = MultiButterflyTopology(16)
        assert topo.routing_bits(0b1010) == [1, 0, 1, 0]

    def test_routing_bit_bounds(self):
        topo = MultiButterflyTopology(16)
        with pytest.raises(TopologyError):
            topo.routing_bit(3, 4)

    def test_wiring_stays_in_sub_block(self):
        # Every wired target must lie in the sub-block selected by the bit.
        topo = MultiButterflyTopology(64, multiplicity=3, seed=7)
        n = topo.n_nodes
        for stage in range(topo.n_stages - 1):
            switches_per_block = (n >> stage) // 2
            sub = (n >> (stage + 1)) // 2
            for i in range(topo.switches_per_stage):
                block = i // switches_per_block
                for bit in (0, 1):
                    lo = (2 * block + bit) * sub
                    for target in topo.next_switches(stage, i, bit):
                        assert lo <= target < lo + sub

    def test_wiring_targets_distinct_when_possible(self):
        topo = MultiButterflyTopology(256, multiplicity=4, seed=1)
        targets = topo.next_switches(0, 0, 0)
        assert len(set(targets)) == 4

    def test_last_stage_reaches_hosts(self):
        topo = MultiButterflyTopology(16, multiplicity=2)
        last = topo.n_stages - 1
        assert topo.is_last_stage(last)
        assert topo.next_switches(last, 3, 0) == [6, 6]
        assert topo.next_switches(last, 3, 1) == [7, 7]

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=40)
    def test_deterministic_path_delivers(self, src, dst):
        # Following the routing bits through the wiring must end at dst.
        topo = MultiButterflyTopology(64, multiplicity=2, seed=3)
        switch = topo.entry_switch(src)
        for stage in range(topo.n_stages):
            bit = topo.routing_bit(dst, stage)
            target = topo.next_switches(stage, switch, bit)[0]
            switch = target
        assert switch == dst  # final 'switch' value is the host id

    def test_deterministic_path_length(self):
        topo = MultiButterflyTopology(64, seed=0)
        assert len(topo.deterministic_path(0, 63)) == topo.n_stages

    def test_wiring_reproducible_by_seed(self):
        a = MultiButterflyTopology(64, 3, seed=5).wiring
        b = MultiButterflyTopology(64, 3, seed=5).wiring
        assert a == b

    def test_wiring_varies_with_seed(self):
        a = MultiButterflyTopology(256, 3, seed=1).wiring
        b = MultiButterflyTopology(256, 3, seed=2).wiring
        assert a != b


class TestDragonfly:
    def test_balanced_construction(self):
        topo = DragonflyTopology(p=4)
        assert topo.a == 8 and topo.h == 4
        assert topo.groups == 33
        assert topo.n_nodes == 4 * 8 * 33  # 1056

    def test_radix_matches_paper_1k(self):
        # Sec. VI-A: dragonfly radix ~16 at the 1K scale...
        topo = DragonflyTopology.for_nodes(1024)
        assert topo.radix in (15, 16)

    def test_radix_matches_paper_1m(self):
        # ... and ~96 at the 1M scale.
        topo = DragonflyTopology.for_nodes(1_000_000)
        assert 90 <= topo.radix <= 96
        assert topo.n_nodes >= 1_000_000

    def test_for_nodes_minimal(self):
        topo = DragonflyTopology.for_nodes(100)
        smaller = DragonflyTopology(topo.p - 1)
        assert smaller.n_nodes < 100

    def test_router_of_node_roundtrip(self):
        topo = DragonflyTopology(p=2)
        for node in range(0, topo.n_nodes, 7):
            group, local = topo.router_of_node(node)
            assert node in topo.nodes_of_router(group, local)

    def test_global_links_are_symmetric(self):
        topo = DragonflyTopology(p=2)
        for group in range(topo.groups):
            for local in range(topo.a):
                for link in range(topo.h):
                    peer = topo.global_peer(group, local, link)
                    back = topo.global_peer(
                        peer.peer_group, peer.peer_router, peer.peer_link
                    )
                    assert (back.peer_group, back.peer_router, back.peer_link) == (
                        group, local, link,
                    )

    def test_every_group_pair_connected(self):
        topo = DragonflyTopology(p=2)
        for g1 in range(topo.groups):
            reached = set()
            for local in range(topo.a):
                for link in range(topo.h):
                    reached.add(topo.global_peer(g1, local, link).peer_group)
            assert reached == set(range(topo.groups)) - {g1}

    def test_gateway_router_owns_channel(self):
        topo = DragonflyTopology(p=3)
        local, link = topo.gateway_router(0, 5)
        assert topo.global_peer(0, local, link).peer_group == 5

    def test_gateway_same_group_rejected(self):
        with pytest.raises(TopologyError):
            DragonflyTopology(p=2).gateway_router(1, 1)

    def test_minimal_hop_count(self):
        topo = DragonflyTopology(p=2)
        assert topo.minimal_hop_count(0, 1) == 0  # same router
        assert 1 <= topo.minimal_hop_count(0, topo.p * 2) <= 2  # same group
        far = topo.p * topo.a * 3  # another group
        assert 1 <= topo.minimal_hop_count(0, far) <= 3

    def test_invalid_p(self):
        with pytest.raises(TopologyError):
            DragonflyTopology(p=0)

    def test_describe(self):
        assert "dragonfly" in DragonflyTopology(2).describe()


class TestFatTree:
    def test_k16_hosts_1024(self):
        topo = FatTreeTopology(16)
        assert topo.n_nodes == 1024
        assert topo.radix == 16
        assert topo.n_switches == 16 * 16 + 64  # 320

    def test_k80_hosts_128k(self):
        # The Sec. II-A example: 128K nodes from 80-radix switches.
        assert FatTreeTopology(80).n_nodes == 128_000

    def test_k160_hosts_1m(self):
        assert FatTreeTopology(160).n_nodes == 1_024_000

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            FatTreeTopology(15)

    def test_for_nodes(self):
        topo = FatTreeTopology.for_nodes(1000)
        assert topo.n_nodes >= 1000
        assert FatTreeTopology(topo.k - 2).n_nodes < 1000

    def test_locate_roundtrip(self):
        topo = FatTreeTopology(8)
        for host in range(topo.n_nodes):
            pod, edge, slot = topo.locate_host(host)
            assert topo.host_id(pod, edge, slot) == host

    def test_core_agg_connectivity(self):
        topo = FatTreeTopology(8)
        for agg in range(topo.half):
            for core in topo.cores_above_agg(agg):
                assert topo.agg_below_core(core) == agg

    def test_hop_counts(self):
        topo = FatTreeTopology(8)
        assert topo.minimal_hop_count(0, 0) == 0
        assert topo.minimal_hop_count(0, 1) == 1  # same edge
        assert topo.minimal_hop_count(0, topo.half) == 3  # same pod
        assert topo.minimal_hop_count(0, topo.n_nodes - 1) == 5

    def test_same_edge_same_pod(self):
        topo = FatTreeTopology(8)
        assert topo.same_edge(0, 1)
        assert topo.same_pod(0, topo.half * 2)
        assert not topo.same_pod(0, topo.n_nodes - 1)


class TestIdeal:
    def test_defaults(self):
        topo = IdealTopology(100)
        assert topo.latency_ns == 200.0

    def test_validation(self):
        with pytest.raises(TopologyError):
            IdealTopology(1)
        with pytest.raises(TopologyError):
            IdealTopology(10, latency_ns=0)
