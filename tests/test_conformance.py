"""Cross-simulator conformance tests.

At zero load a single packet sees no contention, so every simulator's
measured latency must equal the analytic prediction of its own
``unloaded_latency_ns`` -- injection link + per-hop switch pipeline and
link delays + one cut-through serialization.  These tests pin the timing
model of all five Sec. V simulators against closed-form hop-count
arithmetic, and check the ideal network really is a lower bound.
"""

import pytest

from repro.analysis.experiments import NETWORK_NAMES, build_network

N_NODES = 32

PAIRS = (
    (0, 1),    # nearest neighbours (same edge switch / same group)
    (0, 17),   # far halves of the machine
    (3, 29),   # cross pod / cross group
    (11, 4),   # backwards direction
)


@pytest.mark.parametrize("name", NETWORK_NAMES)
@pytest.mark.parametrize("src,dst", PAIRS)
def test_single_packet_latency_matches_analytic(name, src, dst):
    net = build_network(name, N_NODES, seed=2)
    net.submit(src, dst, time=0.0)
    stats = net.run()
    assert stats.delivered == 1
    assert stats.drops == 0
    expected = net.unloaded_latency_ns(src, dst)
    assert stats.average_latency == pytest.approx(expected, rel=1e-12)


@pytest.mark.parametrize("src,dst", PAIRS)
def test_ideal_lower_bounds_every_network(src, dst):
    ideal = build_network("ideal", N_NODES).unloaded_latency_ns(src, dst)
    for name in NETWORK_NAMES:
        real = build_network(name, N_NODES, seed=2)
        assert real.unloaded_latency_ns(src, dst) >= ideal, name


@pytest.mark.parametrize("name", NETWORK_NAMES)
def test_unloaded_latency_consistent_across_seeds(name):
    """The analytic zero-load latency is a topology property, not a
    function of the randomized wiring seed."""
    a = build_network(name, N_NODES, seed=1).unloaded_latency_ns(0, 17)
    b = build_network(name, N_NODES, seed=9).unloaded_latency_ns(0, 17)
    assert a == b


def test_fattree_locality_tiers_are_ordered():
    """Same-edge < same-pod < cross-pod latency, strictly."""
    net = build_network("fattree", N_NODES, seed=0)
    pod, edge, _ = net.topology.locate_host(0)
    same_edge = net.unloaded_latency_ns(0, 1)
    same_pod = net.unloaded_latency_ns(0, net.topology.half)
    cross_pod = net.unloaded_latency_ns(0, N_NODES - 1)
    assert same_edge < same_pod < cross_pod
    # Sanity: the chosen destinations really are in those locality tiers.
    assert net.topology.locate_host(1)[:2] == (pod, edge)
    assert net.topology.locate_host(net.topology.half)[0] == pod
    assert net.topology.locate_host(N_NODES - 1)[0] != pod


def test_baldur_beats_electrical_multibutterfly_at_zero_load():
    """Same topology, but Baldur's sub-2ns optical switches give it a
    lower zero-load latency than the 90 ns buffered electrical switch
    pipeline (the Sec. V-B latency argument at its simplest)."""
    baldur = build_network("baldur", N_NODES, seed=2)
    electrical = build_network("multibutterfly", N_NODES, seed=2)
    assert baldur.unloaded_latency_ns(0, 1) < \
        electrical.unloaded_latency_ns(0, 1)
