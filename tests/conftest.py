"""Shared pytest plumbing: export observability artifacts on failure.

Tests that drive a simulator with a tracer or metrics registry attached
can ``repro.obs.artifacts.register(...)`` the live objects; if the test
then fails, the hook below dumps each one as JSONL under
``$REPRO_TEST_ARTIFACTS_DIR`` (default ``test-artifacts/``) so CI can
upload packet-level evidence alongside the red build.
"""

import pytest

from repro.obs import artifacts as obs_artifacts


@pytest.fixture(autouse=True)
def _fresh_obs_artifact_registry():
    """The artifact registry is process-global; isolate it per test."""
    obs_artifacts.clear()
    yield
    obs_artifacts.clear()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    written = obs_artifacts.export_all(item.nodeid)
    if written:
        report.sections.append(
            (
                "observability artifacts",
                "\n".join(str(path) for path in written),
            )
        )
