"""Cross-module property-based tests on system invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BaldurNetwork, one_shot_drop_rate
from repro.electrical import DragonflyNetwork, MultiButterflyNetwork
from repro.sim import Environment
from repro.topology import MultiButterflyTopology


class TestKernelInvariants:
    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_callbacks_fire_in_time_order(self, delays):
        env = Environment()
        fired = []
        for delay in delays:
            env.schedule(delay, lambda d=delay: fired.append(env.now))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_clock_never_goes_backwards(self, delays):
        env = Environment()
        observed = []

        def note():
            observed.append(env.now)
            # Schedule a follow-up to interleave.
            if len(observed) < 50:
                env.schedule(1.0, lambda: observed.append(env.now))

        for delay in delays:
            env.schedule(delay, note)
        env.run()
        assert observed == sorted(observed)


class TestConservationInvariants:
    @given(st.integers(0, 1000), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_baldur_packet_conservation_no_retx(self, seed, m):
        # Without retransmission: every injected packet is either
        # delivered or dropped, never both, never lost silently.
        n = 32
        net = BaldurNetwork(
            n, multiplicity=m, seed=seed, enable_retransmission=False
        )
        rng = random.Random(seed)
        for _ in range(60):
            src = rng.randrange(n)
            dst = rng.randrange(n)
            if src != dst:
                net.submit(src, dst, time=rng.uniform(0, 5_000))
        stats = net.run()
        assert stats.delivered + stats.drops == stats.injected

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_baldur_full_delivery_with_retx(self, seed):
        n = 32
        net = BaldurNetwork(n, multiplicity=3, seed=seed)
        rng = random.Random(seed)
        for _ in range(40):
            src, dst = rng.randrange(n), rng.randrange(n)
            if src != dst:
                net.submit(src, dst, time=rng.uniform(0, 10_000))
        stats = net.run(until=50_000_000)
        assert stats.delivered == stats.injected
        assert net.lost_packets == 0

    @given(st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_electrical_networks_lossless(self, seed):
        n = 32
        net = MultiButterflyNetwork(n, multiplicity=2, seed=seed)
        rng = random.Random(seed)
        for _ in range(40):
            src, dst = rng.randrange(n), rng.randrange(n)
            if src != dst:
                net.submit(src, dst, time=rng.uniform(0, 20_000))
        stats = net.run(until=100_000_000)
        assert stats.drops == 0
        assert stats.delivered == stats.injected

    def test_retx_buffer_returns_to_zero(self):
        net = BaldurNetwork(32, multiplicity=3, seed=5)
        rng = random.Random(5)
        for _ in range(50):
            src, dst = rng.randrange(32), rng.randrange(32)
            if src != dst:
                net.submit(src, dst, time=rng.uniform(0, 5_000))
        net.run(until=50_000_000)
        assert all(b == 0 for b in net._retx_buffer_bytes)


class TestDragonflyPlanInvariants:
    @given(st.integers(0, 71), st.integers(0, 71), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_plans_are_executable_and_terminate_at_dst(self, src, dst, seed):
        # Walk a UGAL plan hop by hop through the actual port wiring and
        # confirm it ends at the destination's terminal port.
        if src == dst:
            return
        net = DragonflyNetwork(72, seed=seed)
        topo = net.topology
        group, local = topo.router_of_node(src)
        router = net.routers[topo.router_id(group, local)]
        from repro.netsim.packet import Packet
        packet = Packet(0, src, dst)
        net._plan(router, packet)
        current = router
        for hop, port_idx in enumerate(packet.plan_ports):
            port = current.ports[port_idx]
            if port.target_switch is None:
                # Terminal hop must be the last one and belong to dst.
                assert hop == len(packet.plan_ports) - 1
                assert current.sid * topo.p + port_idx == dst
                return
            current = port.target_switch
        pytest.fail("plan never reached a terminal port")

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_plan_vcs_monotone(self, seed):
        net = DragonflyNetwork(72, seed=seed)
        rng = random.Random(seed)
        src = rng.randrange(72)
        dst = rng.randrange(72)
        if src == dst:
            return
        topo = net.topology
        group, local = topo.router_of_node(src)
        router = net.routers[topo.router_id(group, local)]
        from repro.netsim.packet import Packet
        packet = Packet(0, src, dst)
        net._plan(router, packet)
        assert packet.plan_vcs == sorted(packet.plan_vcs)
        assert packet.plan_vcs[-1] <= 2  # Table VI: 3 VCs suffice


class TestDropModelInvariants:
    @given(st.integers(3, 7), st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_drop_rate_bounded(self, log_n, m):
        rate = one_shot_drop_rate(1 << log_n, m, trials=1)
        assert 0.0 <= rate <= 1.0

    @given(st.integers(4, 8))
    @settings(max_examples=10, deadline=None)
    def test_more_multiplicity_never_hurts(self, log_n):
        n = 1 << log_n
        low = one_shot_drop_rate(n, 1, trials=2)
        high = one_shot_drop_rate(n, 4, trials=2)
        assert high <= low


class TestWiringInvariants:
    @given(st.integers(0, 10_000), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_all_wired_targets_valid(self, seed, m):
        topo = MultiButterflyTopology(64, m, seed=seed)
        for stage in range(topo.n_stages):
            limit = (
                topo.n_nodes
                if topo.is_last_stage(stage)
                else topo.switches_per_stage
            )
            for switch in range(topo.switches_per_stage):
                for bit in (0, 1):
                    targets = topo.next_switches(stage, switch, bit)
                    assert len(targets) == m
                    assert all(0 <= t < limit for t in targets)
