"""Drift checks for the mypy --strict configuration.

The strict package list lives in one place -- ``[tool.repro]
mypy_strict_packages`` in pyproject.toml -- and CI derives its mypy path
arguments from it via ``tools/mypy_strict_paths.py``.  These tests pin
the invariants that keep the three consumers (pyproject, the script, the
workflow) from drifting apart:

* every strict package has a real ``src/`` directory;
* no strict package is simultaneously exempted by the ``ignore_errors``
  override (which would make the CI run a silent no-op for it);
* the parallelism-sensitive packages (``repro.shard`` plus this PR's
  ``repro.lint`` and ``repro.zoo``) are covered;
* the script's output matches the pyproject list exactly.
"""

import subprocess
import sys
import tomllib
from fnmatch import fnmatchcase
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "mypy_strict_paths.py"


def load_pyproject():
    with (REPO / "pyproject.toml").open("rb") as fh:
        return tomllib.load(fh)


def strict_packages():
    return load_pyproject()["tool"]["repro"]["mypy_strict_packages"]


def ignored_modules():
    for override in load_pyproject()["tool"]["mypy"]["overrides"]:
        if override.get("ignore_errors"):
            modules = override["module"]
            return [modules] if isinstance(modules, str) else modules
    return []


class TestStrictPackageList:
    def test_nonempty_and_sorted(self):
        packages = strict_packages()
        assert packages, "strict package list must not be empty"
        assert packages == sorted(packages)

    def test_every_package_has_a_source_dir(self):
        for package in strict_packages():
            path = REPO / "src" / Path(*package.split("."))
            assert path.is_dir(), f"{package} has no {path}"

    def test_parallelism_sensitive_packages_covered(self):
        packages = set(strict_packages())
        assert {"repro.shard", "repro.lint", "repro.zoo"} <= packages

    def test_no_strict_package_is_error_exempt(self):
        # A package both in the strict list and matched by an
        # ignore_errors override would pass CI while checking nothing.
        exempt = ignored_modules()
        for package in strict_packages():
            for pattern in exempt:
                assert not fnmatchcase(package, pattern), (
                    f"strict package {package} is exempted by "
                    f"ignore_errors pattern {pattern!r}"
                )
                assert not fnmatchcase(f"{package}.engine", pattern), (
                    f"submodules of strict package {package} are "
                    f"exempted by ignore_errors pattern {pattern!r}"
                )


class TestStrictPathsScript:
    def run_tool(self, *args):
        proc = subprocess.run(
            [sys.executable, str(TOOL), *args],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout.split()

    def test_paths_match_pyproject(self):
        expected = [
            ("src/" + package.replace(".", "/"))
            for package in sorted(strict_packages())
        ]
        assert self.run_tool() == expected

    def test_packages_flag_matches_pyproject(self):
        assert self.run_tool("--packages") == sorted(strict_packages())
