"""Regression tests for the submit/submit_batch validate-then-commit fix.

Historically a rejected :meth:`NetworkSimulator.submit` mutated the stats
and the conservation ledger *before* the past-timestamp check raised, and
a bad entry mid-``submit_batch`` left every earlier entry half-committed
(stats/pids/ledger mutated, nothing scheduled) -- so a later ``audit()``
raised a spurious ``InvariantViolationError`` for packets that never
existed.  These tests pin the fixed contract: a rejected submission is a
complete no-op.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.electrical import IdealNetwork
from repro.errors import ConfigurationError

N_NODES = 8


def snapshot(net):
    """Every piece of submission state a failed call must not touch."""
    return {
        "injected": net.stats.injected,
        "next_pid": net._next_pid,
        "outstanding": set(net._outstanding),
        "queued_events": len(net.env._queue)
        + len(net.env._run) - net.env._ridx,
    }


@pytest.fixture
def net():
    return IdealNetwork(N_NODES)


class TestRejectedSubmit:
    def test_past_timestamp_is_a_noop(self, net):
        net.submit(0, 1, time=10.0)
        net.run(until=20.0)
        before = snapshot(net)
        with pytest.raises(ConfigurationError, match="past"):
            net.submit(2, 3, time=5.0)
        assert snapshot(net) == before
        net.run()
        net.audit()  # no phantom in-flight packet

    def test_bad_endpoint_is_a_noop(self, net):
        before = snapshot(net)
        with pytest.raises(ConfigurationError, match="out of range"):
            net.submit(0, N_NODES, time=0.0)
        with pytest.raises(ConfigurationError, match="differ"):
            net.submit(3, 3, time=0.0)
        assert snapshot(net) == before
        net.run()
        net.audit()

    def test_injected_count_survives_rejection(self, net):
        net.submit(0, 1, time=0.0)
        with pytest.raises(ConfigurationError):
            net.submit(0, 1, time=-1.0)
        assert net.stats.injected == 1
        stats = net.run()
        assert stats.delivered == 1
        net.audit()


class TestRejectedSubmitBatch:
    def test_bad_entry_mid_batch_is_all_or_nothing(self, net):
        good = (0, 1, 512, 0.0)
        bad = (0, N_NODES, 512, 0.0)  # out-of-range endpoint
        before = snapshot(net)
        with pytest.raises(ConfigurationError, match="out of range"):
            net.submit_batch([good, good, bad, good])
        assert snapshot(net) == before
        net.run()
        net.audit()

    def test_past_timestamp_mid_batch_is_all_or_nothing(self, net):
        net.submit(0, 1, time=10.0)
        net.run(until=20.0)
        before = snapshot(net)
        with pytest.raises(ConfigurationError, match="past"):
            net.submit_batch([
                (1, 2, 512, 25.0),
                (2, 3, 512, 5.0),  # before now=20
            ])
        assert snapshot(net) == before
        net.run()
        net.audit()

    def test_successful_batch_after_failed_batch_is_unperturbed(self, net):
        with pytest.raises(ConfigurationError):
            net.submit_batch([(0, 1, 512, 0.0), (9, 9, 512, 0.0)])
        packets = net.submit_batch([(0, 1, 512, 0.0), (1, 2, 512, 1.0)])
        # pids start at 0: the failed batch allocated nothing.
        assert [p.pid for p in packets] == [0, 1]
        stats = net.run()
        assert stats.injected == stats.delivered == 2
        net.audit()


@settings(max_examples=50, deadline=None)
@given(
    n_good=st.integers(min_value=0, max_value=10),
    bad_index=st.integers(min_value=0, max_value=10),
    bad_kind=st.sampled_from(["src_range", "dst_range", "loop", "past"]),
    data=st.data(),
)
def test_failed_batch_is_always_a_noop(n_good, bad_index, bad_kind, data):
    """Property: any batch containing any invalid entry anywhere is a
    complete no-op -- stats, pid counter, ledger, and event queue all
    unchanged, and the network still runs and audits clean."""
    net = IdealNetwork(N_NODES)
    entry = st.tuples(
        st.integers(min_value=0, max_value=N_NODES - 1),
        st.integers(min_value=0, max_value=N_NODES - 1),
        st.just(512),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ).filter(lambda e: e[0] != e[1])
    batch = [data.draw(entry) for _ in range(n_good)]
    bad = {
        "src_range": (N_NODES + 3, 0, 512, 0.0),
        "dst_range": (0, -1, 512, 0.0),
        "loop": (4, 4, 512, 0.0),
        "past": (0, 1, 512, -1.0),
    }[bad_kind]
    batch.insert(min(bad_index, len(batch)), bad)
    before = snapshot(net)
    with pytest.raises(ConfigurationError):
        net.submit_batch(batch)
    assert snapshot(net) == before
    net.run()
    net.audit()


def test_successful_batch_identical_to_sequential_submits():
    """The all-or-nothing rewrite must not change the success path:
    same pids, same stats, same event order as per-entry submit()."""
    entries = [
        (0, 1, 512, 5.0),
        (2, 3, 256, 1.0),
        (4, 5, 512, 3.0),
        (1, 0, 128, 5.0),
    ]
    batched = IdealNetwork(N_NODES)
    packets = batched.submit_batch(entries)
    sequential = IdealNetwork(N_NODES)
    expected = [sequential.submit(*e[:2], size_bytes=e[2], time=e[3])
                for e in entries]
    assert [p.pid for p in packets] == [p.pid for p in expected]
    a, b = batched.run(), sequential.run()
    assert a.summary() == b.summary()
    batched.audit()
    sequential.audit()
