"""Tests for the Benes topology (Sec. IV alternative substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BaldurNetwork
from repro.errors import TopologyError
from repro.topology import BenesTopology


class TestBenesStructure:
    def test_stage_count(self):
        topo = BenesTopology(64)
        assert topo.n_stages == 11  # 2*6 - 1
        assert topo.switches_per_stage == 32
        assert topo.scatter_stages == 5

    def test_validation(self):
        with pytest.raises(TopologyError):
            BenesTopology(100)
        with pytest.raises(TopologyError):
            BenesTopology(64, multiplicity=0)

    def test_total_switches(self):
        assert BenesTopology(16).total_switches == 7 * 8


class TestBenesRouting:
    @given(
        st.integers(0, 63),
        st.integers(0, 63),
        st.lists(st.integers(0, 1), min_size=5, max_size=5),
    )
    @settings(max_examples=60)
    def test_any_scatter_bits_deliver(self, src, dst, free_bits):
        # The Benes property: arbitrary choices in the scatter half still
        # reach the destination via the destination-tag half.
        topo = BenesTopology(64)
        switch = topo.entry_switch(src)
        bits = 6
        for stage in range(topo.n_stages):
            if stage < topo.scatter_stages:
                bit = free_bits[stage]
            else:
                tag = stage - topo.scatter_stages
                bit = (dst >> (bits - 1 - tag)) & 1
            switch = topo.next_switches(stage, switch, bit)[0]
        assert switch == dst

    def test_deterministic_scatter_mode(self):
        topo = BenesTopology(32, deterministic_scatter=True)
        for stage in range(topo.scatter_stages):
            assert topo.routing_bit(7, stage) == 0

    def test_random_scatter_varies(self):
        topo = BenesTopology(32, seed=1)
        bits = [topo.routing_bit(7, 0) for _ in range(64)]
        assert 0 in bits and 1 in bits

    def test_deterministic_path_delivers(self):
        topo = BenesTopology(32, deterministic_scatter=True)
        path = topo.deterministic_path(3, 29)
        assert len(path) == topo.n_stages

    def test_routing_bit_bounds(self):
        topo = BenesTopology(16)
        with pytest.raises(TopologyError):
            topo.routing_bit(3, 99)


class TestBaldurOnBenes:
    def test_single_packet_delivered(self):
        topo = BenesTopology(32, multiplicity=2, seed=4)
        net = BaldurNetwork(32, multiplicity=2, topology=topo)
        net.submit(0, 21, time=0.0)
        stats = net.run()
        assert stats.delivered == 1

    def test_benes_latency_reflects_extra_stages(self):
        # 2S-1 stages vs S: Benes pays ~double the switching latency.
        benes = BaldurNetwork(
            32, multiplicity=2,
            topology=BenesTopology(32, multiplicity=2),
        )
        butterfly = BaldurNetwork(32, multiplicity=2, seed=0)
        benes.submit(0, 21, time=0.0)
        butterfly.submit(0, 21, time=0.0)
        lb = benes.run().average_latency
        lf = butterfly.run().average_latency
        assert lb > lf
        # 32 nodes: S=5 -> Benes has 9 stages vs the butterfly's 5.
        assert lb - lf == pytest.approx((9 - 5) * 0.49, abs=0.5)

    def test_permutation_workload_on_benes(self):
        import random
        topo = BenesTopology(32, multiplicity=3, seed=2)
        net = BaldurNetwork(32, multiplicity=3, topology=topo, seed=2)
        rng = random.Random(0)
        perm = list(range(32))
        rng.shuffle(perm)
        for src in range(32):
            dst = perm[src] if perm[src] != src else (src + 1) % 32
            for j in range(10):
                net.submit(src, dst, time=j * 400.0)
        stats = net.run(until=50_000_000)
        assert stats.delivered == stats.injected

    def test_scatter_randomization_spreads_paths(self):
        # Same (src, dst) pair twice: the scatter half should (usually)
        # take different switches -- Valiant load balancing in action.
        topo = BenesTopology(64, multiplicity=1, seed=9)
        net = BaldurNetwork(
            64, multiplicity=1, topology=topo,
            enable_retransmission=False,
        )
        net.record_paths = True
        p1 = net.submit(0, 33, time=0.0)
        p2 = net.submit(0, 33, time=100_000.0)
        net.run()
        assert net.paths[p1.pid] != net.paths[p2.pid]
