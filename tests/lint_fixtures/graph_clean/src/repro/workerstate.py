"""FORK-001 clean twin: module state is only *read* by worker code."""

from typing import Dict

LIMITS: Dict[str, int] = {"jobs": 8}


def snapshot(counts):
    return dict(counts, limit=LIMITS["jobs"])
