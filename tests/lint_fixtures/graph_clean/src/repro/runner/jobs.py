"""FORK-001 clean twin: workers keep state on job-local objects."""

from repro.workerstate import snapshot


def _execute_demo(params):
    counts = {"jobs": 1}
    return snapshot(counts)
