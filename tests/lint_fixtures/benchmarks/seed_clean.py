"""SEED-001 clean twin: every stream seed derives from derive_seed."""

import random

from repro.sim.rand import derive_seed, numpy_stream


def make_streams(master_seed):
    arrivals = random.Random(derive_seed(master_seed, "arrivals"))
    noise = numpy_stream(master_seed, "noise")
    s = derive_seed(master_seed, "service")
    service = random.Random(s)
    wrapped = random.Random(int(derive_seed(master_seed, "wrapped")))
    return arrivals, noise, service, wrapped
