"""SEED-001 true positives: ad-hoc, unseeded, and reused seeds."""

import random

import numpy as np


def make_streams(seed):
    literal = random.Random(42)
    entropy = np.random.default_rng()
    first = random.Random(seed)
    second = random.Random(seed)
    return literal, entropy, first, second
