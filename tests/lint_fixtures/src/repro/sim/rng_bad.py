"""RNG-001 true positive: global RNG use inside a repro.* module."""

import random

import numpy as np


def jitter() -> float:
    np.random.seed(7)
    return random.random()
