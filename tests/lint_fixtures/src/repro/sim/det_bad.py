"""DET-001 true positive: set iteration in a scope that schedules."""


def drain(env, ready_ids):
    waiting = set(ready_ids)
    for node in waiting:
        env.schedule(1.0, node.wake)
    return [n for n in {1, 2, 3}]
