"""Suppression fixture: trailing disable silences only its line."""

import random  # repro-lint: disable=RNG-001


def jitter() -> float:
    return random.random()
