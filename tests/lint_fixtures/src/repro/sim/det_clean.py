"""DET-001 clean: deterministic iteration order before scheduling."""


def drain(env, ready_ids):
    waiting = set(ready_ids)
    for node in sorted(waiting):
        env.schedule(1.0, node.wake)


def tally(ready_ids):
    # Set iteration with no scheduling in scope is order-insensitive.
    return sum(1 for _ in set(ready_ids))
