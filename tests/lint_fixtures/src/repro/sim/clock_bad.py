"""CLK-001 true positive: wall-clock reads inside simulation code."""

import time
from time import perf_counter


def stamp() -> float:
    return time.time() + perf_counter()
