"""Suppression fixture: file-level disable silences the whole file."""

# repro-lint: disable=RNG-001

import random


def jitter() -> float:
    return random.random()
