"""SUPP-001 clean twin: the suppression still silences a finding."""

# repro-lint: disable=RNG-001

import random


def jitter() -> float:
    return random.random()
