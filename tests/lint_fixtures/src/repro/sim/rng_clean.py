"""RNG-001 clean: named streams only; annotations may name the type."""

import numpy as np

from repro.sim.rand import numpy_stream, stream


def jitter(seed: int) -> float:
    rng = stream(seed, "jitter")
    return rng.random()


def noise(seed: int) -> "np.random.Generator":
    return numpy_stream(seed, "noise")


def consume(rng: np.random.Generator) -> float:
    return float(rng.random())
