"""FAST-001 clean: validated kernel entry points; unrelated heappush."""

from heapq import heappush


def hurry(env, fn, delay):
    env.schedule(delay, fn)
    env.schedule_at(env.now + delay, fn)


def unrelated(backlog, item):
    # heappush onto a non-event-queue container is not a fast path.
    heappush(backlog, item)
