"""FAST-001 true positive: unvalidated pushes outside the allowlist."""

from heapq import heappush


def hurry(env, fn, delay):
    env._push(env._now + delay, fn, ())


def sneak(env, fn, delay):
    heappush(env._queue, (env._now + delay, 0, fn, ()))


def sneak_alias(env, fn, delay):
    queue = env._queue
    heappush(queue, (env._now + delay, 0, fn, ()))
