"""SUPP-001 true positive: a suppression with nothing to suppress."""

import math  # repro-lint: disable=RNG-001


def area(radius: float) -> float:
    return math.pi * radius * radius
