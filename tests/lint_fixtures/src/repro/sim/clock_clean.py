"""CLK-001 clean: simulated time comes from the environment."""

from time import sleep  # a non-clock name from time is fine


def stamp(env) -> float:
    sleep(0)
    return env.now
