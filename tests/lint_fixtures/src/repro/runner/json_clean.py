"""JSON-001 clean: every dump is NaN-safe."""

import json

from repro.runner.spec import canonical_json, json_safe


def save(payload, fh):
    json.dump(json_safe(payload), fh)
    text = json.dumps(payload, sort_keys=True, allow_nan=False)
    return text + canonical_json(payload)
