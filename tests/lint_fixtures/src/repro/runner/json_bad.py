"""JSON-001 true positive: json.dump(s) that can emit bare NaN."""

import json
import json as _json


def save(payload, fh):
    json.dump(payload, fh)
    return _json.dumps(payload, sort_keys=True)
