"""SLOTS-001 clean: every peer is slotted (or legitimately exempt)."""

from dataclasses import dataclass


class Packet:
    __slots__ = ("src", "dst")

    def __init__(self, src, dst):
        self.src = src
        self.dst = dst


class Marker(Packet):
    __slots__ = ()


@dataclass(frozen=True)
class Summary:
    delivered: int


class RoutingError(Exception):
    pass
