"""SLOTS-001 true positive: a slot-less peer in a slotted hot module."""


class Packet:
    __slots__ = ("src", "dst")

    def __init__(self, src, dst):
        self.src = src
        self.dst = dst


class Straggler:
    def __init__(self):
        self.payload = None
