"""FLOAT-001 true positives: unordered float reductions."""


class Window:
    def __init__(self):
        self.delays = {}
        self.samples = {}

    def total_delay(self):
        return sum(self.delays.values())

    def weighted(self):
        return sum(v * 0.5 for v in self.samples.values())

    def accumulate(self, byshard):
        total = 0.0
        for delay in byshard.values():
            total += delay
        return total
