"""MERGE-001 clean twin: merge surfaces iterate in sorted order."""


class Ledger:
    def __init__(self):
        self.pending = {}

    def _shard_absorb(self, payloads):
        for key, value in sorted(self.pending.items()):
            payloads[key] = value
        return payloads

    def _route(self, inbox):
        return list(sorted({message[0] for message in inbox}))

    def audit(self):
        return ", ".join(
            f"{k}={v}" for k, v in sorted(self.pending.items())
        )
