"""MERGE-001 true positives: unsorted iteration on merge surfaces."""


class Ledger:
    def __init__(self):
        self.pending = {}

    def _shard_absorb(self, payloads):
        for key, value in self.pending.items():
            payloads[key] = value
        return payloads

    def _route(self, inbox):
        return [shard for shard in {message[0] for message in inbox}]

    def audit(self):
        return ", ".join(f"{k}={v}" for k, v in self.pending.items())
