"""FLOAT-001 clean twin: reductions run over sorted views."""


class Window:
    def __init__(self):
        self.delays = {}
        self.samples = {}

    def total_delay(self):
        return sum(sorted(self.delays.values()))

    def weighted(self):
        return sum(v * 0.5 for v in sorted(self.samples.values()))

    def accumulate(self, byshard):
        total = 0.0
        for delay in sorted(byshard.values()):
            total += delay
        return total
