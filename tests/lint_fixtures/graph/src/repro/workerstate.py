"""FORK-001 fixture state: module globals written on the worker path.

``untouched`` also writes ``COUNTS`` but is reachable from no entry
point, so it must *not* be flagged -- reachability, not mere writing,
is the hazard.
"""

from typing import Dict

COUNTS: Dict[str, int] = {}
_TOTAL = 0


def record(name):
    global _TOTAL
    _TOTAL += 1
    COUNTS.setdefault(name, 0)


def untouched():
    COUNTS.clear()
