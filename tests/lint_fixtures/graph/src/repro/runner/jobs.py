"""FORK-001 fixture entry point: the write chain crosses modules.

``_execute_demo`` matches the ``repro.runner.jobs`` / ``_execute_*``
entry-point pattern; the hazardous writes live two calls away and in a
different module, reached through an import alias -- exactly what a
single-file rule cannot see.
"""

import repro.workerstate as ws


def _execute_demo(params):
    helper(params)
    return {"ok": True}


def helper(params):
    ws.COUNTS["jobs"] = 1
    _bump()


def _bump():
    from repro.workerstate import record

    record("demo")
