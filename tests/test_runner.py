"""Tests for the sweep engine: specs, seeding, caching, execution."""

import json
import math
import os

import pytest

from repro.analysis.experiments import figure6_spec
from repro.errors import ConfigurationError
from repro.netsim.stats import StatsSummary
from repro.runner import (
    ResultCache,
    SweepSpec,
    canonical_json,
    code_fingerprint,
    execute_job,
    resolve_jobs,
    run_sweep,
)

SMALL_SPEC_KWARGS = dict(
    n_nodes=16,
    loads=(0.3, 0.7),
    patterns=("transpose",),
    packets_per_node=3,
    networks=("baldur", "ideal"),
    seed=0,
)


def small_spec(**overrides):
    kwargs = {**SMALL_SPEC_KWARGS, **overrides}
    return figure6_spec(**kwargs)


class TestSweepSpec:
    def test_expansion_order_is_row_major(self):
        spec = SweepSpec(
            kind="sensitivity",
            axes={"case": ("a", "b"), "scale": (1, 2)},
        )
        keys = [job.key for job in spec.expand()]
        assert keys == [
            "sensitivity/case=a/scale=1",
            "sensitivity/case=a/scale=2",
            "sensitivity/case=b/scale=1",
            "sensitivity/case=b/scale=2",
        ]

    def test_params_merge_fixed_axes_and_seed(self):
        spec = SweepSpec(
            kind="open_loop", axes={"load": (0.5,)}, fixed={"n_nodes": 8}
        )
        (job,) = spec.expand()
        assert job.params["n_nodes"] == 8
        assert job.params["load"] == 0.5
        assert job.params["seed"] == job.seed

    def test_seed_depends_only_on_root_seed_and_key(self):
        a = {job.key: job.seed for job in small_spec(seed=1).expand()}
        b = {job.key: job.seed for job in small_spec(seed=1).expand()}
        c = {job.key: job.seed for job in small_spec(seed=2).expand()}
        assert a == b
        assert all(a[key] != c[key] for key in a)

    def test_seed_unaffected_by_other_grid_points(self):
        wide = {j.key: j.seed for j in small_spec().expand()}
        narrow = {
            j.key: j.seed for j in small_spec(loads=(0.7,)).expand()
        }
        for key, seed in narrow.items():
            assert wide[key] == seed

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(kind="open_loop", axes={"load": ()})

    def test_axis_fixed_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(
                kind="open_loop", axes={"load": (0.5,)}, fixed={"load": 1}
            )

    def test_reserved_seed_param_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(kind="open_loop", axes={"seed": (1, 2)})


class TestExecutors:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            execute_job("nonesuch", {})

    def test_open_loop_summary_round_trips(self):
        (job,) = small_spec(loads=(0.5,), networks=("ideal",)).expand()
        result = execute_job(job.kind, dict(job.params))
        summary = StatsSummary.from_dict(result)
        # Transpose excludes its fixed points, so 12 of 16 nodes send.
        assert summary.delivered == summary.injected == 12 * 3
        assert summary.average_latency == pytest.approx(200.0)
        assert StatsSummary.from_dict(summary.to_dict()) == summary

    def test_sensitivity_executor(self):
        result = execute_job(
            "sensitivity", {"case": "pessimistic", "scale": 2**20, "seed": 0}
        )
        assert result["fattree"] > 1.0


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_fallback_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(0)


class TestEngine:
    def test_results_in_expansion_order(self):
        sweep = run_sweep(small_spec())
        assert [o.job.key for o in sweep.outcomes] == [
            job.key for job in small_spec().expand()
        ]

    def test_progress_reports_every_job(self):
        events = []
        sweep = run_sweep(small_spec(), progress=events.append)
        assert len(events) == sweep.report.n_jobs
        assert {e["index"] for e in events} == set(range(len(events)))
        assert all(e["elapsed_s"] >= 0.0 for e in events)

    def test_report_accounts_for_all_jobs(self):
        sweep = run_sweep(small_spec())
        report = sweep.report
        assert report.executed + report.cached == report.n_jobs
        assert len(report.job_times_s) == report.n_jobs
        assert report.sim_time_s >= 0.0
        assert "4 jobs" in report.describe()

    def test_index_nests_by_axes(self):
        sweep = run_sweep(small_spec())
        nested = sweep.index("pattern", "network", "load")
        assert set(nested) == {"transpose"}
        assert set(nested["transpose"]) == {"baldur", "ideal"}
        assert set(nested["transpose"]["ideal"]) == {0.3, 0.7}


class TestCache:
    def test_warm_rerun_executes_nothing(self, tmp_path):
        cold = run_sweep(small_spec(), cache_dir=tmp_path)
        warm = run_sweep(small_spec(), cache_dir=tmp_path)
        assert cold.report.executed == cold.report.n_jobs
        assert warm.report.executed == 0
        assert warm.report.cached == warm.report.n_jobs
        assert warm.to_json() == cold.to_json()

    def test_no_cache_ignores_existing_entries(self, tmp_path):
        run_sweep(small_spec(), cache_dir=tmp_path)
        again = run_sweep(small_spec(), cache_dir=tmp_path, use_cache=False)
        assert again.report.executed == again.report.n_jobs

    def test_different_root_seed_misses(self, tmp_path):
        run_sweep(small_spec(seed=1), cache_dir=tmp_path)
        other = run_sweep(small_spec(seed=2), cache_dir=tmp_path)
        assert other.report.executed == other.report.n_jobs

    def test_corrupted_entry_detected_and_recomputed(self, tmp_path):
        cold = run_sweep(small_spec(), cache_dir=tmp_path)
        entries = sorted(tmp_path.rglob("*.json"))
        assert len(entries) == cold.report.n_jobs
        # Tamper with a result value: the digest no longer matches.
        victim = entries[0]
        entry = json.loads(victim.read_text())
        entry["result"]["delivered"] = 10**9
        victim.write_text(json.dumps(entry, allow_nan=False))
        # Truncate another: not even valid JSON.
        entries[1].write_text(json.dumps(entry, allow_nan=False)[: 40])
        warm = run_sweep(small_spec(), cache_dir=tmp_path)
        assert warm.report.poisoned == 2
        assert warm.report.executed == 2
        assert warm.report.cached == warm.report.n_jobs - 2
        assert warm.to_json() == cold.to_json()
        # The poisoned entries were rewritten: next run is fully warm.
        assert run_sweep(small_spec(), cache_dir=tmp_path).report.executed == 0

    def test_stale_code_version_misses(self, tmp_path):
        spec = small_spec(loads=(0.5,), networks=("ideal",))
        (job,) = spec.expand()
        cache = ResultCache(tmp_path)
        fresh = cache.job_cache_key(job)
        stale = cache.job_cache_key(job, fingerprint="0" * 64)
        assert fresh != stale
        cache.put(stale, job, {"delivered": 1})
        assert cache.get(fresh) is None

    def test_fingerprint_is_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_fingerprint_memo_invalidates_on_source_edit(self, tmp_path):
        # Regression: the fingerprint was once memoized per-process, so a
        # long-lived process (REPL, notebook) that edited code between
        # sweeps would key cache entries on a stale hash.
        mod = tmp_path / "mod.py"
        mod.write_text("X = 1\n")
        os.utime(mod, ns=(1_000_000_000, 1_000_000_000))
        first = code_fingerprint(tmp_path)
        assert code_fingerprint(tmp_path) == first  # memo hit
        # Same-size edit: only the mtime betrays the change.
        mod.write_text("X = 2\n")
        os.utime(mod, ns=(2_000_000_000, 2_000_000_000))
        second = code_fingerprint(tmp_path)
        assert second != first
        # Reverting the content restores the original fingerprint even
        # at a third mtime: the hash is content-based, only the memo
        # keys on stat() data.
        mod.write_text("X = 1\n")
        os.utime(mod, ns=(3_000_000_000, 3_000_000_000))
        assert code_fingerprint(tmp_path) == first

    def test_fingerprint_sees_new_files(self, tmp_path):
        (tmp_path / "a.py").write_text("A = 1\n")
        first = code_fingerprint(tmp_path)
        (tmp_path / "b.py").write_text("B = 2\n")
        assert code_fingerprint(tmp_path) != first

    def test_writes_are_atomic_against_torn_writers(self, tmp_path):
        # A worker killed mid-put leaves a stale .tmp sibling, never a
        # truncated entry: put() writes to a temp file and os.replace()s.
        spec = small_spec(loads=(0.5,), networks=("ideal",))
        (job,) = spec.expand()
        cache = ResultCache(tmp_path)
        key = cache.job_cache_key(job)
        path = cache.entry_path(key)
        # Simulate the dead writer's debris before the real write.
        path.parent.mkdir(parents=True, exist_ok=True)
        torn = path.parent / f"{key}.json.tmp.99999"
        torn.write_text('{"cache_key": "trunca')
        cache.put(key, job, {"delivered": 1})
        entry = json.loads(path.read_text())
        assert entry["result"] == {"delivered": 1}
        assert cache.get(key) == {"delivered": 1}
        # The stale temp file was swept; no .tmp debris remains.
        assert not list(path.parent.glob("*.tmp.*"))


class TestParallel:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = run_sweep(small_spec(), jobs=1)
        parallel = run_sweep(small_spec(), jobs=2)
        assert serial.to_json() == parallel.to_json()

    def test_parallel_populates_shared_cache(self, tmp_path):
        cold = run_sweep(small_spec(), jobs=2, cache_dir=tmp_path)
        warm = run_sweep(small_spec(), jobs=1, cache_dir=tmp_path)
        assert cold.report.executed == cold.report.n_jobs
        assert warm.report.executed == 0
        assert warm.to_json() == cold.to_json()

    def test_pool_unavailable_falls_back_loudly(self, monkeypatch):
        # Satellite regression: the serial fallback used to be silent.
        # Force pool creation to fail and assert every announcement
        # channel fires: RuntimeWarning, structured progress event, and
        # SweepReport.fallback.
        import repro.runner.engine as engine

        def no_pool(workers, n_jobs):
            return None

        monkeypatch.setattr(engine, "_make_pool", no_pool)
        events = []
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            sweep = run_sweep(small_spec(), jobs=2, progress=events.append)
        assert sweep.ok
        assert sweep.report.fallback == "serial"
        assert not sweep.report.parallel
        assert sweep.report.counters.get("serial_fallbacks") == 1
        fallback_events = [e for e in events if e.get("event") == "fallback"]
        assert fallback_events == [{
            "event": "fallback",
            "mode": "serial",
            "reason": "process pool unavailable",
        }]
        assert "[serial fallback]" in sweep.report.describe()
        # Results are unaffected by the degraded execution mode.
        assert sweep.to_json() == run_sweep(small_spec(), jobs=1).to_json()


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": [1.5, 2]}) == \
            canonical_json({"a": [1.5, 2], "b": 1})

    def test_compact(self):
        assert canonical_json({"a": 1}) == '{"a":1}'

    def test_nonfinite_floats_become_null(self):
        # Python's json emits bare NaN/Infinity tokens by default, which
        # RFC 8259 forbids and strict parsers reject.
        doc = canonical_json({
            "a": float("nan"),
            "b": [1.5, float("inf")],
            "c": (float("-inf"),),
        })
        assert doc == '{"a":null,"b":[1.5,null],"c":[null]}'

    def test_zero_delivery_summary_round_trips_through_json(self):
        from repro.netsim.stats import LatencyStats

        stats = LatencyStats()
        stats.record_injection()  # nothing delivered: NaN latencies
        summary = StatsSummary.from_stats(stats)
        doc = canonical_json(summary.to_dict())
        assert "NaN" not in doc and "null" in doc
        restored = StatsSummary.from_dict(json.loads(doc))
        assert restored.injected == 1
        assert math.isnan(restored.avg_latency_ns)
        assert math.isnan(restored.tail_latency_ns)

    def test_cache_entry_is_strict_rfc8259(self, tmp_path):
        (job,) = small_spec(loads=(0.5,), networks=("ideal",)).expand()
        cache = ResultCache(tmp_path)
        key = cache.job_cache_key(job)
        cache.put(key, job, {"avg_latency_ns": float("nan"), "delivered": 0})
        raw = cache.entry_path(key).read_text()

        def reject(token):
            raise AssertionError(f"non-RFC 8259 token in cache entry: {token}")

        entry = json.loads(raw, parse_constant=reject)
        assert entry["result"]["avg_latency_ns"] is None
        # The self-verifying digest matches the sanitized payload, so the
        # entry reads back as a hit (not poison).
        assert cache.get(key) == {"avg_latency_ns": None, "delivered": 0}
        assert cache.poisoned == 0


class TestCliIntegration:
    def test_fig6_jobs_and_out_are_byte_identical(self, tmp_path, capsys):
        from repro.cli import main

        base = [
            "fig6", "--nodes", "16", "--packets", "3",
            "--loads", "0.3", "--seed", "1",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        out1 = tmp_path / "a.json"
        out2 = tmp_path / "b.json"
        assert main([*base, "--jobs", "2", "--out", str(out1)]) == 0
        first = capsys.readouterr().out
        assert "# sweep:" in first and "20 jobs" in first
        assert main([*base, "--jobs", "1", "--out", str(out2)]) == 0
        second = capsys.readouterr().out
        assert "0 executed, 20 cached" in second
        assert out1.read_bytes() == out2.read_bytes()

    def test_progress_flag_streams_to_stderr(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "table5", "--nodes", "16", "--packets", "2", "--progress",
        ]) == 0
        captured = capsys.readouterr()
        assert "table5/multiplicity=1" in captured.err
        assert "[5/5]" in captured.err


@pytest.mark.skipif(
    os.environ.get("REPRO_JOBS", "1") == "1",
    reason="parallel-path CI job only",
)
def test_env_jobs_engages_parallel_path():
    """Under REPRO_JOBS>1 (the second CI job) sweeps really fork workers."""
    sweep = run_sweep(small_spec())
    assert sweep.report.workers > 1
    assert sweep.report.parallel
