"""Tests for the Sec. IV-F reliability analysis."""

import math

import pytest

from repro import constants as C
from repro.tl.reliability import (
    ERROR_SCENARIOS,
    diagnose_faulty_switch,
    error_probability,
    make_observation,
    margin_report,
    monte_carlo_error_rate,
    worst_case_margin_periods,
)


class TestMargin:
    def test_margin_matches_paper_042T(self):
        # With the paper's variation budget at the 25 Gbps bit period the
        # worst-case margin is ~0.42T-0.43T.
        margin = worst_case_margin_periods(bit_period_ps=40.0)
        assert margin == pytest.approx(C.TIMING_MARGIN_PERIODS, abs=0.02)

    def test_margin_shrinks_with_more_variation(self):
        base = worst_case_margin_periods(40.0)
        worse = worst_case_margin_periods(
            40.0, gate_variation_fraction=0.5, waveguide_variation_ps=3.0
        )
        assert worse < base

    def test_margin_grows_with_bit_period(self):
        assert worst_case_margin_periods(80.0) > worst_case_margin_periods(
            40.0
        )


class TestErrorProbability:
    def test_paper_operating_point_is_1e_minus_9(self):
        prob = error_probability(
            margin_periods=C.TIMING_MARGIN_PERIODS, bit_period_ps=40.0
        )
        # Order of magnitude must match the paper's 1e-9.
        assert 1e-10 < prob < 1e-8

    def test_zero_margin_always_fails(self):
        assert error_probability(margin_periods=0.0) == 1.0

    def test_monotone_in_margin(self):
        probs = [
            error_probability(m, 40.0) for m in (0.1, 0.2, 0.3, 0.42)
        ]
        assert probs == sorted(probs, reverse=True)

    def test_monotone_in_jitter(self):
        low = error_probability(0.42, 40.0, jitter_variance_ps2=1.0)
        high = error_probability(0.42, 40.0, jitter_variance_ps2=10.0)
        assert high > low

    def test_monte_carlo_agrees_with_analytic(self):
        # Validate at inflated jitter where MC has statistics.
        margin, t, var = 0.3, 40.0, 40.0
        analytic = error_probability(margin, t, var)
        mc = monte_carlo_error_rate(margin, t, var, trials=200_000, seed=7)
        assert mc == pytest.approx(analytic, rel=0.15)

    def test_monte_carlo_deterministic(self):
        a = monte_carlo_error_rate(0.3, 40.0, 40.0, trials=10_000, seed=3)
        b = monte_carlo_error_rate(0.3, 40.0, 40.0, trials=10_000, seed=3)
        assert a == b

    def test_margin_report_keys(self):
        report = margin_report()
        assert report["paper_error_probability"] == 1e-9
        assert report["worst_case_margin_periods"] > 0.4
        assert math.isfinite(report["error_probability"])

    def test_four_error_scenarios_enumerated(self):
        assert len(ERROR_SCENARIOS) == 4


class TestFaultDiagnosis:
    def test_single_fault_isolated(self):
        # Deterministic paths (m=1): intersect lost, subtract delivered.
        observations = [
            make_observation([1, 5, 9], delivered=False),
            make_observation([2, 5, 9], delivered=False),
            make_observation([1, 6, 10], delivered=True),
            make_observation([2, 5, 10], delivered=True),
        ]
        assert diagnose_faulty_switch(observations) == [9]

    def test_no_losses_no_candidates(self):
        observations = [make_observation([1, 2], delivered=True)]
        assert diagnose_faulty_switch(observations) == []

    def test_insufficient_evidence_keeps_multiple_candidates(self):
        observations = [make_observation([1, 2, 3], delivered=False)]
        assert diagnose_faulty_switch(observations) == [1, 2, 3]

    def test_more_packets_narrow_candidates(self):
        observations = [
            make_observation([1, 2, 3], delivered=False),
            make_observation([1, 4, 3], delivered=False),
        ]
        assert diagnose_faulty_switch(observations) == [1, 3]
        observations.append(make_observation([1, 5, 6], delivered=True))
        assert diagnose_faulty_switch(observations) == [3]
