"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if hasattr(a, "choices") and a.choices
        )
        assert set(sub.choices) == {
            "table4", "table5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "drop-model", "packaging", "awgr", "diagnose", "resilience",
            "trace", "perf", "lint", "zoo",
        }

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCommands:
    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out and "0.406" in out

    def test_table5_small(self, capsys):
        assert main(["table5", "--nodes", "16", "--packets", "5"]) == 0
        out = capsys.readouterr().out
        assert "1112" in out  # the m=4 gate count

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "baldur" in out and "dragonfly" in out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        assert "pessimistic" in capsys.readouterr().out

    def test_fig10(self, capsys):
        assert main(["fig10"]) == 0
        assert "interposer" in capsys.readouterr().out

    def test_drop_model_small(self, capsys):
        assert main(["drop-model", "--nodes", "64", "--trials", "1"]) == 0
        assert "drop_%" in capsys.readouterr().out

    def test_packaging(self, capsys):
        assert main(["packaging"]) == 0
        assert "cabinets" in capsys.readouterr().out

    def test_awgr(self, capsys):
        assert main(["awgr"]) == 0
        assert "awgr" in capsys.readouterr().out.lower()

    def test_diagnose_small(self, capsys):
        assert main([
            "diagnose", "--nodes", "32", "--stage", "1",
            "--switch", "3", "--probes", "120",
        ]) == 0
        assert "candidates" in capsys.readouterr().out

    def test_fig6_tiny(self, capsys):
        assert main([
            "fig6", "--nodes", "16", "--packets", "3",
            "--loads", "0.5",
        ]) == 0
        assert "average latency" in capsys.readouterr().out

    def test_fig7_tiny(self, capsys):
        assert main(["fig7", "--nodes", "16", "--packets", "3"]) == 0
        assert "ping_pong1" in capsys.readouterr().out

    def test_zoo_list(self, capsys):
        assert main(["zoo", "--list"]) == 0
        out = capsys.readouterr().out
        assert "baldur" in out and "rotor" in out
        assert "matching_cycle" in out

    def test_zoo_sweep_tiny(self, capsys):
        assert main([
            "zoo", "--nodes", "16", "--packets", "3", "--loads", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Architecture zoo" in out and "rotor" in out

    def test_resilience_small(self, capsys):
        assert main([
            "resilience", "--nodes", "16", "--packets", "3",
            "--failures", "0", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "Resilience sweep" in out
        assert "Degraded mode" in out
        assert "unmasked" in out and "masked" in out

    def test_resilience_chaos(self, capsys):
        assert main([
            "resilience", "--nodes", "16", "--packets", "3",
            "--failures", "1", "--mtbf", "200000", "--mttr", "50000",
        ]) == 0
        assert "chaos" in capsys.readouterr().out

    def test_trace_baldur_replays_a_flow(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main([
            "trace", "--nodes", "16", "--packets", "5",
            "--load", "0.9", "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "inject" in printed and "deliver" in printed
        assert "Tracer(" in printed
        lines = out.read_text().splitlines()
        assert lines  # exported JSONL is non-empty...
        import json
        assert all("type" in json.loads(line) for line in lines)

    def test_trace_electrical_with_metrics_export(self, tmp_path, capsys):
        metrics_out = tmp_path / "metrics.jsonl"
        assert main([
            "trace", "--network", "multibutterfly", "--nodes", "16",
            "--packets", "5", "--metrics-out", str(metrics_out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "stage_arrival" in printed
        import json
        rows = [json.loads(line)
                for line in metrics_out.read_text().splitlines()]
        assert any(row["metric"] == "arrivals" for row in rows)

    def test_trace_unknown_pid_fails_cleanly(self, capsys):
        assert main([
            "trace", "--nodes", "16", "--packets", "2", "--pid", "999999",
        ]) != 0
        assert "no trace events" in capsys.readouterr().out

    def test_fig6_multi_load_renders_ascii_plot(self, capsys):
        assert main([
            "fig6", "--nodes", "16", "--packets", "3",
            "--loads", "0.3", "0.8",
        ]) == 0
        out = capsys.readouterr().out
        assert "=baldur" in out  # plot legend
        assert "input load" in out


class TestFaultFlags:
    TINY = ["fig6", "--nodes", "16", "--packets", "3", "--loads", "0.5"]

    def test_sweep_flags_parse(self):
        args = build_parser().parse_args(self.TINY + [
            "--timeout", "30", "--deadline", "600",
            "--retries", "2", "--resume",
        ])
        assert args.timeout == 30.0
        assert args.deadline == 600.0
        assert args.retries == 2
        assert args.resume == "auto"  # bare --resume picks the default

    def test_resume_round_trip_is_byte_identical(self, tmp_path, capsys):
        journal = tmp_path / "fig6.journal.jsonl"
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        assert main(self.TINY + ["--resume", str(journal),
                                 "--out", str(out_a)]) == 0
        first = capsys.readouterr().out
        assert "resumed" not in first
        assert main(self.TINY + ["--resume", str(journal),
                                 "--out", str(out_b)]) == 0
        second = capsys.readouterr().out
        assert "20 resumed" in second  # warm run executed nothing
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_partial_failure_exits_1_and_reports(self, monkeypatch, capsys):
        import repro.runner.engine as engine

        real = engine._timed_execute

        def flaky(kind, params, key="", dispatch=1, plan=None):
            if params.get("network") == "ideal":
                raise ValueError("injected CLI failure")
            return real(kind, params, key, dispatch, plan)

        monkeypatch.setattr(engine, "_timed_execute", flaky)
        assert main(self.TINY) == 1
        captured = capsys.readouterr()
        assert "# FAILED" in captured.err
        assert "injected CLI failure" in captured.err
        assert "failed" in captured.out  # report line counts failures

    def test_total_failure_exits_2(self, monkeypatch, capsys):
        import repro.runner.engine as engine

        def doomed(kind, params, key="", dispatch=1, plan=None):
            raise ValueError("nothing works")

        monkeypatch.setattr(engine, "_timed_execute", doomed)
        assert main(self.TINY) == 2
        assert "# FAILED" in capsys.readouterr().err
