"""Tests for fault injection, diagnosis, and the Sec. VIII extensions."""

import pytest

from repro.core import BaldurNetwork, probe_outcomes, run_diagnosis
from repro.errors import ConfigurationError


class TestFaultInjection:
    def test_faulty_switch_drops_everything(self):
        net = BaldurNetwork(16, multiplicity=2, seed=0,
                            enable_retransmission=False)
        # Fault the entry switch of node 0.
        net.inject_fault(0, 0)
        net.submit(0, 9, time=0.0)
        stats = net.run()
        assert stats.delivered == 0
        assert stats.drops == 1

    def test_fault_off_path_harmless(self):
        net = BaldurNetwork(16, multiplicity=2, seed=0,
                            enable_retransmission=False)
        net.inject_fault(0, 7)  # entry switch of nodes 14/15
        net.submit(0, 9, time=0.0)
        stats = net.run()
        assert stats.delivered == 1

    def test_fault_validation(self):
        net = BaldurNetwork(16)
        with pytest.raises(ConfigurationError):
            net.inject_fault(99, 0)
        with pytest.raises(ConfigurationError):
            net.inject_fault(0, 99)

    def test_retransmission_does_not_mask_hard_fault(self):
        # A fault on the only deterministic path: retransmission retries
        # but the entry switch eats every attempt.
        net = BaldurNetwork(16, multiplicity=2, seed=0, max_attempts=3)
        net.inject_fault(0, 0)
        net.submit(0, 9, time=0.0)
        net.run(until=1_000_000)
        assert net.lost_packets == 1


class TestTestModeAndDiagnosis:
    def test_test_mode_validation(self):
        net = BaldurNetwork(16, multiplicity=2)
        with pytest.raises(ConfigurationError):
            net.enable_test_mode(port=5)

    def test_test_mode_paths_are_deterministic(self):
        outcomes = []
        for _ in range(2):
            net = BaldurNetwork(64, multiplicity=4, seed=7,
                                enable_retransmission=False)
            net.enable_test_mode(0)
            net.record_paths = True
            p = net.submit(3, 42, time=0.0)
            net.run()
            outcomes.append(net.paths[p.pid])
        assert outcomes[0] == outcomes[1]
        assert len(outcomes[0]) == 6  # one switch per stage

    def test_probe_outcomes_requires_test_mode(self):
        net = BaldurNetwork(16, multiplicity=2,
                            enable_retransmission=False)
        with pytest.raises(ConfigurationError):
            probe_outcomes(net, [(0, 5)])

    def test_probe_outcomes_requires_no_retransmission(self):
        net = BaldurNetwork(16, multiplicity=2)
        net.enable_test_mode(0)
        with pytest.raises(ConfigurationError):
            probe_outcomes(net, [(0, 5)])

    def test_diagnosis_isolates_fault(self):
        report = run_diagnosis(64, faulty=(2, 13), n_probes=200, seed=3)
        assert report["isolated"]
        assert report["candidates"] == [report["injected_flat_id"]]

    def test_diagnosis_candidates_always_contain_fault(self):
        # Even with few probes, the injected switch is never excluded.
        report = run_diagnosis(64, faulty=(1, 5), n_probes=20, seed=1)
        if report["probes_lost"]:
            assert report["injected_flat_id"] in report["candidates"]

    def test_diagnosis_more_probes_never_widen(self):
        few = run_diagnosis(64, faulty=(2, 13), n_probes=40, seed=3)
        many = run_diagnosis(64, faulty=(2, 13), n_probes=400, seed=3)
        if few["probes_lost"] and many["probes_lost"]:
            assert len(many["candidates"]) <= len(few["candidates"])


class TestInNetworkFiltering:
    def test_filter_drops_matching_packets(self):
        # Sec. VIII: in-network filtering for security -- block a node.
        net = BaldurNetwork(
            16, multiplicity=2, seed=0,
            packet_filter=lambda p: p.src == 3,
        )
        net.submit(3, 9, time=0.0)
        net.submit(4, 9, time=500.0)
        stats = net.run(until=1_000_000)
        assert net.filtered_packets == 1
        assert stats.delivered == 1

    def test_filter_does_not_leak_retransmissions(self):
        # Filtered packets must not occupy retransmission buffers.
        net = BaldurNetwork(
            16, multiplicity=2, packet_filter=lambda p: True
        )
        net.submit(0, 9, time=0.0)
        net.run(until=100_000)
        assert net.peak_retx_buffer_kb == 0.0

    def test_filter_sees_acks(self):
        # The filter applies to everything entering the network; an
        # ACK-eating filter forces data retransmission until give-up.
        net = BaldurNetwork(
            16, multiplicity=2, max_attempts=2,
            packet_filter=lambda p: p.is_ack,
        )
        net.submit(0, 9, time=0.0)
        stats = net.run(until=1_000_000)
        assert stats.delivered == 1  # data got through
        assert net.filtered_packets >= 1  # its ACKs did not
        assert net.lost_packets == 1  # source eventually gave up


class TestAckCoalescing:
    def _burst(self, coalescing):
        net = BaldurNetwork(
            16, multiplicity=4, seed=0, ack_coalescing=coalescing,
            ack_coalesce_window_ns=500.0,
        )
        # A burst of packets from 0 to 9 arriving close together.
        for j in range(8):
            net.submit(0, 9, time=j * 10.0)
        net.run(until=5_000_000)
        return net

    def test_coalescing_sends_fewer_acks(self):
        plain = self._burst(coalescing=False)
        combined = self._burst(coalescing=True)
        assert combined.acks_sent < plain.acks_sent
        assert plain.acks_sent == 8

    def test_coalescing_still_clears_retx_buffers(self):
        net = self._burst(coalescing=True)
        assert not net._pending
        assert net._retx_buffer_bytes[0] == 0

    def test_coalesced_ack_covers_multiple_pids(self):
        net = self._burst(coalescing=True)
        assert net.stats.delivered == 8
        assert net.acks_sent >= 1
