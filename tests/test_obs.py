"""Tests for the observability plane: tracing, metrics, kernel profiling.

Three contracts are pinned here:

* **conservation agreement** -- whole-run trace counts must match the
  stats ledger exactly (inject == injected, deliver == delivered, ...);
* **passivity** -- attaching a tracer/metrics/profile never changes
  simulation results (latency digests are byte-identical);
* **zero overhead when disabled** -- with nothing attached, no trace
  event objects are allocated at all.
"""

import json

import pytest

from repro.core.baldur_network import BaldurNetwork
from repro.electrical import MultiButterflyNetwork
from repro.errors import ConfigurationError
from repro.faults import FailStop, FaultInjector
from repro.netsim.packet import Packet
from repro.netsim.stats import StatsSummary
from repro.netsim.switch import OutputPort, Switch, VCBuffer
from repro.obs import (
    KernelProfile,
    MetricsRegistry,
    TraceEvent,
    Tracer,
    format_timeline,
    obs_payload,
)
from repro.obs import artifacts as obs_artifacts
from repro.sim import Environment
from repro.traffic import inject_open_loop, transpose


def run_baldur(n_nodes=16, multiplicity=1, load=0.9, packets=10, seed=3,
               tracer=None, metrics=None):
    """A drop-heavy Baldur run (m=1 transpose) with optional observers."""
    net = BaldurNetwork(n_nodes, multiplicity=multiplicity, seed=seed)
    if tracer is not None:
        net.attach_tracer(tracer)
    if metrics is not None:
        net.attach_metrics(metrics)
    inject_open_loop(net, transpose(n_nodes), load, packets, seed=seed)
    stats = net.run()
    return net, stats


class TestTracer:
    def test_ring_eviction_keeps_whole_run_counts(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.record(float(i), "inject")
        assert tracer.recorded == 10
        assert len(tracer.events) == 4
        assert tracer.evicted == 6
        # counts are eviction-proof: they cover the whole run.
        assert tracer.count("inject") == 10
        assert [e.t for e in tracer.events] == [6.0, 7.0, 8.0, 9.0]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Tracer(capacity=0)

    def test_flow_includes_covering_acks(self):
        tracer = Tracer()
        data = Packet(pid=5, src=0, dst=1, size_bytes=256, create_time=0.0)
        ack = Packet(pid=9, src=1, dst=0, size_bytes=8, create_time=2.0,
                     is_ack=True, acked_pid=(5,))
        tracer.record(0.0, "inject", data)
        tracer.record(1.0, "deliver", data)
        tracer.record(2.0, "ack", ack, acked=(5,))
        tracer.record(3.0, "inject",
                      Packet(pid=6, src=2, dst=3, size_bytes=256,
                             create_time=3.0))
        flow = tracer.flow(5)
        assert [e.etype for e in flow] == ["inject", "deliver", "ack"]

    def test_pick_flow_prefers_eventful_flows(self):
        tracer = Tracer()
        boring = Packet(pid=1, src=0, dst=1, size_bytes=256, create_time=0.0)
        eventful = Packet(pid=2, src=2, dst=3, size_bytes=256,
                          create_time=0.0)
        tracer.record(0.0, "inject", boring)
        tracer.record(1.0, "deliver", boring)
        tracer.record(0.0, "inject", eventful)
        tracer.record(1.0, "drop", eventful)
        tracer.record(2.0, "retransmit", eventful)
        tracer.record(3.0, "deliver", eventful)
        assert tracer.pick_flow() == 2
        assert tracer.pick_flow(src=0) == 1
        assert tracer.pick_flow(src=99) is None

    def test_jsonl_export_round_trips(self, tmp_path):
        tracer = Tracer()
        pkt = Packet(pid=7, src=1, dst=2, size_bytes=256, create_time=0.0)
        tracer.record(0.0, "inject", pkt)
        tracer.record(5.0, "stage_arrival", pkt, switch=3, stage=0)
        path = tmp_path / "trace.jsonl"
        assert tracer.to_jsonl(path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"t": 0.0, "type": "inject", "pid": 7,
                            "src": 1, "dst": 2}
        assert lines[1]["switch"] == 3 and lines[1]["stage"] == 0

    def test_format_timeline_is_relative_and_readable(self):
        tracer = Tracer()
        pkt = Packet(pid=7, src=1, dst=2, size_bytes=256, create_time=0.0)
        tracer.record(100.0, "inject", pkt)
        tracer.record(150.0, "arb_win", pkt, switch=3, stage=0, port=2)
        lines = format_timeline(tracer.events)
        assert "+        0.00ns" in lines[0]
        assert "pkt 7 1->2" in lines[0]
        assert "switch 3 (stage 0)" in lines[1] and "port 2" in lines[1]
        assert format_timeline([]) == ["(no events)"]


class TestMetrics:
    def test_windowed_counters_and_gauges(self):
        reg = MetricsRegistry(window_ns=100.0)
        reg.incr("drops", 3, t=50.0)
        reg.incr("drops", 3, t=60.0)
        reg.incr("drops", 3, t=150.0)
        reg.observe_max("occ", 3, t=10.0, value=4.0)
        reg.observe_max("occ", 3, t=20.0, value=2.0)
        assert reg.series("drops", 3) == [(0, 2), (1, 1)]
        assert reg.totals("drops") == {3: 3}
        assert reg.peaks("occ") == {3: 4.0}
        assert reg.metrics == ["drops", "occ"]

    def test_hotspots_ranked_by_total(self):
        reg = MetricsRegistry()
        for sid, n in ((1, 5), (2, 9), (3, 1)):
            for _ in range(n):
                reg.incr("drops", sid, t=0.0)
        assert reg.hotspots("drops", top=2) == [(2, 9), (1, 5)]

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry(window_ns=0)

    def test_rollup_and_jsonl_are_json_safe(self, tmp_path):
        reg = MetricsRegistry(window_ns=100.0)
        reg.incr("drops", 3, t=50.0)
        reg.observe_max("occ", 1, t=10.0, value=4.0)
        rollup = reg.rollup()
        json.dumps(rollup, allow_nan=False)  # must not raise
        assert rollup["counters"]["drops"]["3"]["total"] == 1
        assert rollup["gauges"]["occ"]["1"]["peak"] == 4.0
        path = tmp_path / "metrics.jsonl"
        assert reg.to_jsonl(path) == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["kind"] == "counter" and rows[0]["metric"] == "drops"
        assert rows[1]["kind"] == "gauge" and rows[1]["t_start_ns"] == 0.0


class TestConservationAgreement:
    def test_baldur_trace_counts_match_stats_ledger(self):
        tracer = Tracer()
        net, stats = run_baldur(tracer=tracer)
        net.audit()  # conservation must hold with tracing attached
        assert stats.drops > 0 and stats.retransmissions > 0
        assert tracer.count("inject") == stats.injected
        assert tracer.count("deliver") == stats.delivered
        assert tracer.count("drop") == stats.drops + stats.ack_drops
        assert tracer.count("retransmit") == stats.retransmissions
        assert tracer.count("give_up") == stats.given_up

    def test_baldur_ack_events_cover_sends_and_receipts(self):
        tracer = Tracer()
        net, stats = run_baldur(tracer=tracer)
        sent = sum(1 for e in tracer.events
                   if e.etype == "ack" and e.note == "sent")
        received = sum(1 for e in tracer.events
                       if e.etype == "ack" and e.note == "received")
        assert sent == net.acks_sent
        # Each ACK is received at most once (drops eat the rest).
        assert received <= sent

    def test_baldur_metrics_drops_match_stats(self):
        metrics = MetricsRegistry()
        net, stats = run_baldur(metrics=metrics)
        total_drops = sum(metrics.totals("drops").values())
        assert total_drops == stats.drops + stats.ack_drops
        arrivals = sum(metrics.totals("arrivals").values())
        assert arrivals > total_drops  # most arrivals win a port

    def test_electrical_trace_counts_match_stats(self):
        net = MultiButterflyNetwork(16, multiplicity=2, seed=1)
        tracer = Tracer()
        metrics = MetricsRegistry()
        net.attach_tracer(tracer)
        net.attach_metrics(metrics)
        inject_open_loop(net, transpose(16), 0.7, 10, seed=1)
        stats = net.run()
        net.audit()
        assert tracer.count("inject") == stats.injected
        assert tracer.count("deliver") == stats.delivered
        # Every header arrival is observed via the switch hook.
        assert tracer.count("stage_arrival") == sum(
            metrics.totals("arrivals").values())

    def test_fault_drops_attributed_per_switch(self):
        net = MultiButterflyNetwork(16, multiplicity=2, seed=1)
        victim = net.switch_ids()[len(net.switch_ids()) // 2]
        injector = FaultInjector(seed=0)
        injector.add(FailStop(switch_id=victim))
        net.attach_faults(injector)
        tracer = Tracer()
        metrics = MetricsRegistry()
        net.attach_tracer(tracer)
        net.attach_metrics(metrics)
        inject_open_loop(net, transpose(16), 0.7, 10, seed=1)
        stats = net.run()
        assert stats.drops > 0
        # metrics agree with the injector's own attribution, exactly.
        assert metrics.totals("drops") == injector.drops_by_switch
        fault_drops = [e for e in tracer.events
                       if e.etype == "drop" and e.note == "fault"]
        assert len(fault_drops) == stats.drops + stats.ack_drops
        assert all(e.switch == victim for e in fault_drops)


class TestPassivity:
    def test_results_identical_with_and_without_observers(self):
        _, plain = run_baldur()
        _, observed = run_baldur(tracer=Tracer(), metrics=MetricsRegistry())
        assert (StatsSummary.from_stats(plain)
                == StatsSummary.from_stats(observed))

    def test_no_trace_event_allocated_when_disabled(self, monkeypatch):
        calls = {"n": 0}
        original = TraceEvent.__init__

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            original(self, *args, **kwargs)

        monkeypatch.setattr(TraceEvent, "__init__", counting)
        run_baldur()  # no tracer attached
        assert calls["n"] == 0
        net = MultiButterflyNetwork(16, multiplicity=2, seed=1)
        inject_open_loop(net, transpose(16), 0.7, 5, seed=1)
        net.run()
        assert calls["n"] == 0

    def test_detach_resets_switch_hooks(self):
        net = MultiButterflyNetwork(16, multiplicity=2, seed=1)
        net.attach_tracer(Tracer())
        assert all(s.arrival_hook is not None for s in net.iter_switches())
        net.attach_tracer(None)
        assert all(s.arrival_hook is None for s in net.iter_switches())
        assert all(p.stall_hook is None
                   for s in net.iter_switches() for p in s.ports)


class TestSwitchHooks:
    def test_stall_hook_fires_on_credit_exhaustion(self):
        env = Environment()
        port = OutputPort(env, rate_gbps=50.0, link_delay_ns=10.0)
        downstream = Switch(env, sid=7)
        tiny = VCBuffer(capacity_bytes=300, n_vcs=3)  # 100 bytes per VC
        port.connect_switch(downstream, tiny)
        stalled = []
        port.stall_hook = stalled.append
        packet = Packet(pid=0, src=0, dst=1, size_bytes=512, create_time=0.0)
        port.enqueue(packet, 0.0)
        assert stalled == [packet]
        assert port.busy is False  # the stall is passive: nothing started

    def test_arrival_hook_observes_header_arrivals(self):
        env = Environment()
        switch = Switch(env, sid=4)
        seen = []
        switch.arrival_hook = lambda sw, pkt: seen.append((sw.sid, pkt.pid))
        switch.route_fn = lambda sw, pkt: (0, 0)
        switch.add_port(rate_gbps=50.0, link_delay_ns=10.0)
        switch.ports[0].connect_host(lambda pkt, t: None)
        packet = Packet(pid=9, src=0, dst=1, size_bytes=256, create_time=0.0)
        switch.on_head_arrival(packet, None)
        assert seen == [(4, 9)]


class TestKernelProfile:
    def test_profile_counts_dispatches(self):
        env = Environment()
        profile = env.enable_profiling()
        assert env.enable_profiling() is profile  # idempotent
        ticks = []
        env.schedule(1.0, ticks.append, "a")
        env.schedule(2.0, ticks.append, "b")
        env.run()
        assert ticks == ["a", "b"]
        assert profile.events_dispatched == 2
        assert profile.max_heap_depth >= 1
        (name, wall, calls), = profile.hottest(top=1)
        assert calls == 2 and wall >= 0.0
        json.dumps(profile.summary(), allow_nan=False)

    def test_profiling_does_not_change_results(self):
        def run(profiled):
            net = BaldurNetwork(16, multiplicity=2, seed=5)
            if profiled:
                net.env.enable_profiling()
            inject_open_loop(net, transpose(16), 0.7, 5, seed=5)
            return StatsSummary.from_stats(net.run())

        assert run(False) == run(True)

    def test_disable_returns_the_profile(self):
        env = Environment()
        profile = env.enable_profiling()
        env.schedule(0.0, lambda: None)
        env.run()
        assert env.disable_profiling() is profile
        assert env.profile is None
        env.schedule(0.0, lambda: None)
        env.run()
        assert profile.events_dispatched == 1  # detached: no longer counting


class TestSweepIntegration:
    def test_obs_sweep_serial_matches_parallel(self, tmp_path):
        from repro.analysis.experiments import figure6_spec
        from repro.runner import run_sweep

        spec = figure6_spec(
            n_nodes=16, loads=(0.7,), patterns=("transpose",),
            packets_per_node=5, networks=("baldur", "multibutterfly"),
            obs={"trace": True, "metrics": True, "window_ns": 500.0},
        )
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=2)
        # Trace digests ride inside the results, so byte-equality of the
        # canonical document pins tracer determinism across worker counts.
        assert serial.to_json() == parallel.to_json()
        rollups = serial.obs()
        assert len(rollups) == 2
        for payload in rollups.values():
            assert payload["trace"]["counts"]["inject"] > 0
            assert payload["metrics"]["counters"]
            assert "profile" not in payload  # wall times never embedded

    def test_obs_absent_by_default(self):
        from repro.analysis.experiments import figure6_spec
        from repro.runner import run_sweep

        spec = figure6_spec(
            n_nodes=16, loads=(0.7,), patterns=("transpose",),
            packets_per_node=3, networks=("ideal",),
        )
        assert "obs" not in spec.payload()["fixed"]
        sweep = run_sweep(spec)
        assert sweep.obs() == {}
        assert all("obs" not in r for r in sweep.results())

    def test_obs_payload_shapes(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        profile = KernelProfile()
        assert obs_payload() == {}
        assert set(obs_payload(tracer=tracer)) == {"trace"}
        assert set(obs_payload(tracer=tracer, metrics=metrics,
                               profile=profile)) == {
            "trace", "metrics", "profile"}


class TestFailureArtifacts:
    def test_export_all_writes_registered_jsonl(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs_artifacts.ARTIFACTS_DIR_ENV, str(tmp_path))
        tracer = Tracer()
        tracer.record(0.0, "inject",
                      Packet(pid=0, src=0, dst=1, size_bytes=256,
                             create_time=0.0))
        obs_artifacts.register("tracer", tracer)
        try:
            written = obs_artifacts.export_all("tests/x.py::test_y[1]")
        finally:
            obs_artifacts.clear()
        assert len(written) == 1
        assert written[0].parent == tmp_path
        assert written[0].suffix == ".jsonl"
        assert json.loads(written[0].read_text().splitlines()[0])["pid"] == 0

    def test_export_all_noop_when_nothing_registered(self, tmp_path):
        obs_artifacts.clear()
        assert obs_artifacts.export_all("ctx", directory=tmp_path) == []
        assert list(tmp_path.iterdir()) == []
