"""Tests for the full 2x2 TL switch netlist (Fig. 4/5 behaviours)."""

import pytest

from repro import constants as C
from repro.errors import ConfigurationError
from repro.tl.encoding import decode_packet
from repro.tl.switch_circuit import TLSwitchCircuit, switch_model

T = 40.0  # bit period in ps at the 25 Gbps link rate


def run_single_packet(port=0, bits=(0, 1), payload=b"\xa5\x3c"):
    sw = TLSwitchCircuit(bit_period_ps=T)
    sw.inject(port, list(bits), payload)
    sw.run(until_ps=5000)
    return sw


class TestFigure5Behaviours:
    """The behaviours validated by the paper's HSPICE waveform (Fig. 5)."""

    def test_routing_bit_zero_decoded_as_one_in_latch(self):
        # First bit '0' (2T of light) -> routing latch stores 1.
        sw = run_single_packet(bits=(0, 1))
        det = sw.detectors[0]
        rises = det.routing_q.rise_times()
        assert rises, "routing latch never set"
        # Stored around the falling edge of the first bit (2T = 80 ps).
        assert rises[0] == pytest.approx(2 * T, abs=0.5 * T)

    def test_routing_bit_one_keeps_latch_zero(self):
        sw = run_single_packet(bits=(1, 0))
        det = sw.detectors[0]
        assert not det.routing_q.rise_times()

    def test_valid_set_during_first_gap(self):
        # Valid goes high 2.5T after packet start -- inside the gap period
        # of the first routing bit -- and stays high to end of packet.
        sw = run_single_packet(bits=(0, 1))
        det = sw.detectors[0]
        rise = det.valid_q.rise_times()[0]
        assert 2 * T < rise < 3 * T

    def test_valid_resets_at_end_of_packet(self):
        sw = run_single_packet()
        det = sw.detectors[0]
        falls = det.valid_q.fall_times()
        assert falls, "valid latch never reset"
        # Reset ~6T after the last light in the packet.
        last_light = sw.inputs[0].fall_times()[-1]
        assert falls[0] == pytest.approx(
            last_light + C.END_OF_PACKET_DARK_PERIODS * T, abs=T
        )

    def test_maskoff_matches_valid_for_multiplicity_1(self):
        # Footnote 4: with m=1 the valid and mask-off latches behave alike.
        sw = run_single_packet()
        det = sw.detectors[0]
        assert det.maskoff_q.rise_times() == pytest.approx(
            det.valid_q.rise_times()
        )

    def test_packet_routed_to_port0_for_bit0(self):
        sw = run_single_packet(bits=(0, 1))
        assert sw.outputs[0].rise_times()
        assert not sw.outputs[1].rise_times()

    def test_packet_routed_to_port1_for_bit1(self):
        sw = run_single_packet(bits=(1, 0))
        assert sw.outputs[1].rise_times()
        assert not sw.outputs[0].rise_times()

    def test_first_routing_bit_masked_off(self):
        # The output packet must start with the *second* routing bit: it is
        # decodable with one fewer routing bit and the same payload.
        payload = b"\x12\x34\x56"
        sw = run_single_packet(bits=(0, 1), payload=payload)
        wf = sw.outputs[0].waveform()
        got_bits, got_payload = decode_packet(wf, 1, bit_period=T)
        assert got_bits == [1]
        assert got_payload == payload

    def test_output_is_input_delayed(self):
        # Output = masked input through WD (132 ps) + fabric gates.
        sw = run_single_packet(bits=(0, 0), payload=b"\xff")
        in_falls = sw.inputs[0].fall_times()
        out_falls = sw.outputs[0].fall_times()
        assert out_falls[-1] - in_falls[-1] == pytest.approx(
            C.WAVEGUIDE_DELAY_WD_PS, abs=10 * sw.circuit.chars.delay_ps
        )


class TestContention:
    def test_contending_packet_dropped(self):
        # Two simultaneous packets to the same output: one wins, one drops.
        sw = TLSwitchCircuit(bit_period_ps=T)
        sw.inject(0, [0, 1], b"\xaa")
        sw.inject(1, [0, 1], b"\xbb")
        sw.run(until_ps=5000)
        winner_payloads = []
        wf = sw.outputs[0].waveform()
        bits, payload = decode_packet(wf, 1, bit_period=T)
        winner_payloads.append(payload)
        assert winner_payloads == [b"\xaa"]  # deterministic tie-break
        assert not sw.outputs[1].rise_times()

    def test_disjoint_destinations_both_pass(self):
        sw = TLSwitchCircuit(bit_period_ps=T)
        sw.inject(0, [0, 1], b"\xaa")
        sw.inject(1, [1, 1], b"\xbb")
        sw.run(until_ps=5000)
        _, p0 = decode_packet(sw.outputs[0].waveform(), 1, bit_period=T)
        _, p1 = decode_packet(sw.outputs[1].waveform(), 1, bit_period=T)
        assert (p0, p1) == (b"\xaa", b"\xbb")

    def test_staggered_packets_to_same_port(self):
        # Second packet arrives after the first completes: both delivered.
        sw = TLSwitchCircuit(bit_period_ps=T)
        sw.inject(0, [0], b"\x11")
        # Start well after packet 1 ends (payload 10T + header 3T + 6T gap).
        sw.inject(1, [0], b"\x22", start_ps=40 * T)
        sw.run(until_ps=10000)
        pulses = sw.outputs[0].waveform().intervals()
        assert len(pulses) >= 6  # both payloads' light made it through

    def test_back_to_back_packets_same_input(self):
        sw = TLSwitchCircuit(bit_period_ps=T)
        sw.inject(0, [0], b"\x11")
        sw.inject(0, [1], b"\x22", start_ps=40 * T)
        sw.run(until_ps=10000)
        assert sw.outputs[0].rise_times()
        assert sw.outputs[1].rise_times()


class TestSwitchStructure:
    def test_gate_count_near_figure4_quote(self):
        # Fig. 4 quotes "only 60 TL gates" for m=1; Table V lists 64.  Our
        # structural netlist lands in the same envelope.
        sw = TLSwitchCircuit()
        assert 40 <= sw.gate_count <= 70

    def test_invalid_bit_period(self):
        with pytest.raises(ConfigurationError):
            TLSwitchCircuit(bit_period_ps=0)

    def test_waveform_report_renders(self):
        sw = run_single_packet()
        report = sw.waveform_report(t_end_ps=1500)
        assert "in0" in report and "out0" in report


class TestSwitchModel:
    def test_table5_gates_verbatim(self):
        for m, gates in C.GATES_PER_SWITCH.items():
            assert switch_model(m).gate_count == gates

    def test_table5_latency_verbatim(self):
        for m, latency in C.SWITCH_LATENCY_NS.items():
            assert switch_model(m).latency_ns == latency

    def test_abstract_power_claim(self):
        # 1,112 gates x 0.406 mW with m=4; 96.6X less than electrical
        # (checked against the electrical model in the power tests).
        model = switch_model(4)
        assert model.power_w == pytest.approx(1112 * 0.406e-3, rel=0.01)

    def test_ports(self):
        model = switch_model(4)
        assert model.ports_per_direction == 4
        assert model.total_ports == 8

    def test_extrapolation_continuous(self):
        # The m=6 extrapolation continues the Table V trend.
        m5, m6 = switch_model(5), switch_model(6)
        assert m6.gate_count > m5.gate_count
        assert m6.latency_ns > m5.latency_ns

    def test_extrapolation_matches_fit_at_known_points(self):
        from repro.tl.switch_circuit import _extrapolate_gates
        for m in (2, 3, 4, 5):
            assert _extrapolate_gates(m) == C.GATES_PER_SWITCH[m]

    def test_invalid_multiplicity(self):
        with pytest.raises(ConfigurationError):
            switch_model(0)

    def test_area(self):
        assert switch_model(1).area_um2 == 64 * C.TL_GATE_AREA_UM2
