"""Property tests for the shard partition plans and the sharded engine.

Two invariant families (DESIGN.md section 14):

* **partition invariant** -- for every plan family and shard count, each
  physical link is either intra-shard or appears in the boundary map
  exactly once (keyed by its ``iter_edges`` position), and the plan's
  lookahead equals the minimum boundary-edge delay;
* **ledger equivalence** -- on small uncontended cells, a sharded run's
  merged conservation ledger and latency multiset equal the single
  kernel's (under contention the per-shard RNG streams legitimately
  diverge, so equivalence is only claimed -- and tested -- drop-free).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import build_network
from repro.traffic import inject_open_loop, transpose

SMALL = dict(max_examples=15, deadline=None)


def _recount_boundary(plan) -> None:
    """Re-derive the boundary map from first principles and compare."""
    plan.validate()
    edges = list(plan.iter_edges())
    boundary = plan.boundary()
    min_cut = math.inf
    for i, (u, v, delay) in enumerate(edges):
        crosses = plan.shard_of(u) != plan.shard_of(v)
        assert (i in boundary) == crosses
        if crosses:
            bu, bv, bdelay, su, sv = boundary[i]
            assert (bu, bv, bdelay) == (u, v, delay)
            assert su == plan.shard_of(u)
            assert sv == plan.shard_of(v)
            min_cut = min(min_cut, delay)
    # Exactly once: the map is keyed by edge position, so multiplicity
    # one per crossing edge is structural; the count must still agree.
    assert len(boundary) == sum(
        1 for u, v, _ in edges if plan.shard_of(u) != plan.shard_of(v)
    )
    assert plan.lookahead_ns == min_cut
    for shard in plan.host_shard:
        assert 0 <= shard < plan.n_shards


class TestPartitionInvariant:
    @settings(**SMALL)
    @given(
        n_nodes=st.sampled_from([8, 16, 32]),
        multiplicity=st.sampled_from([1, 2, 4]),
        n_shards=st.integers(min_value=1, max_value=5),
        cut_delay=st.sampled_from([0.0, 100.0]),
    )
    def test_multistage(self, n_nodes, multiplicity, n_shards, cut_delay):
        from repro.shard.plan import multistage_plan
        from repro.topology.butterfly import MultiButterflyTopology

        topo = MultiButterflyTopology(n_nodes, multiplicity, seed=0)
        plan = multistage_plan(
            topo, n_shards, link_delay_ns=100.0, switch_latency_ns=1.5,
            cut_delay_ns=cut_delay,
        )
        _recount_boundary(plan)

    @settings(**SMALL)
    @given(
        n_nodes=st.integers(min_value=2, max_value=40),
        n_shards=st.integers(min_value=1, max_value=5),
    )
    def test_host(self, n_nodes, n_shards):
        from repro.shard.plan import host_plan

        _recount_boundary(
            host_plan(n_nodes, n_shards, hop_delay_ns=200.0)
        )

    @settings(**SMALL)
    @given(
        n_nodes=st.sampled_from([16, 36, 72]),
        n_shards=st.integers(min_value=1, max_value=5),
    )
    def test_dragonfly(self, n_nodes, n_shards):
        from repro.shard.plan import dragonfly_plan
        from repro.topology.dragonfly import DragonflyTopology

        topo = DragonflyTopology.for_nodes(n_nodes)
        _recount_boundary(dragonfly_plan(topo, n_shards))

    @settings(**SMALL)
    @given(
        n_nodes=st.sampled_from([16, 54, 128]),
        n_shards=st.integers(min_value=1, max_value=5),
    )
    def test_fattree(self, n_nodes, n_shards):
        from repro.shard.plan import fattree_plan
        from repro.topology.fattree import FatTreeTopology

        topo = FatTreeTopology.for_nodes(n_nodes)
        _recount_boundary(fattree_plan(topo, n_shards))


class TestLedgerEquivalence:
    @settings(**SMALL)
    @given(
        network=st.sampled_from(["baldur", "ideal", "rotor"]),
        n_shards=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=10),
        packets_per_node=st.integers(min_value=1, max_value=3),
    )
    def test_merged_ledger_matches_single_kernel(
        self, network, n_shards, seed, packets_per_node
    ):
        def run(shards):
            net = build_network(network, 16, seed)
            inject_open_loop(
                net, transpose(16), 0.2, packets_per_node, seed=seed
            )
            stats = net.run(shards=shards)
            ledger = net.audit()
            return stats, ledger

        ref_stats, ref_ledger = run(1)
        stats, ledger = run(n_shards)
        assert ledger == ref_ledger
        assert stats.conservation() == ref_stats.conservation()
        assert sorted(stats.latencies) == sorted(ref_stats.latencies)
        assert stats.delivered == ref_stats.delivered > 0
