"""Tests for the ASCII plotting helper."""

import pytest

from repro.analysis.plotting import ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        chart = ascii_plot({"a": {0.1: 100.0, 0.9: 500.0}})
        assert "o" in chart  # series marker
        assert "o=a" in chart  # legend

    def test_title_and_labels(self):
        chart = ascii_plot(
            {"a": {1: 2.0}}, title="T", xlabel="load", ylabel="ns"
        )
        assert chart.startswith("T")
        assert "load" in chart and "ns" in chart

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_plot(
            {"a": {0: 1.0}, "b": {1: 2.0}},
        )
        assert "o=a" in chart and "x=b" in chart

    def test_log_scale(self):
        chart = ascii_plot(
            {"a": {0: 10.0, 1: 100_000.0}}, logy=True
        )
        assert "100,000" in chart or "1e+05" in chart

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": {0: 0.0}}, logy=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_nan_points_dropped(self):
        chart = ascii_plot({"a": {0: 1.0, 1: float("nan")}})
        assert "o" in chart

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": {0: float("nan")}})

    def test_flat_series_does_not_crash(self):
        chart = ascii_plot({"a": {0: 5.0, 1: 5.0}})
        assert "o" in chart

    def test_dimensions(self):
        chart = ascii_plot({"a": {0: 1.0, 1: 2.0}}, width=30, height=6)
        grid_lines = [l for l in chart.splitlines() if l.startswith("|")]
        assert len(grid_lines) == 6
        assert all(len(l) <= 31 for l in grid_lines)
