"""Tests for the cost and packaging models (Sec. IV-G / VI-B anchors)."""

import pytest

from repro import constants as C
from repro.cost import (
    baldur_cost,
    fibers_per_interposer_edge,
    plan_packaging,
)
from repro.errors import ConfigurationError


class TestPackaging:
    def test_fibers_per_edge(self):
        # 32 mm at 127 um pitch -> ~252 fibers.
        assert fibers_per_interposer_edge() == 251

    def test_one_cabinet_at_1k(self):
        assert plan_packaging(1024).cabinets == C.CABINETS_AT_1K

    def test_752_cabinets_at_1m(self):
        plan = plan_packaging(2**20)
        assert plan.cabinets == pytest.approx(C.CABINETS_AT_1M, abs=10)

    def test_power_only_constraint_is_looser(self):
        # Sec. IV-G: power alone would need only 176 cabinets at 1M.
        plan = plan_packaging(2**20)
        assert plan.cabinets_power_limited < plan.cabinets_fiber_limited
        assert plan.cabinets_power_limited == pytest.approx(
            C.CABINETS_AT_1M_POWER_ONLY, rel=0.3
        )

    def test_tl_area_under_10_pct(self):
        plan = plan_packaging(1024, multiplicity=4)
        assert plan.tl_area_fraction_of_interposer < (
            C.TL_AREA_FRACTION_OF_INTERPOSER
        )

    def test_multiplicity_follows_scale_rule(self):
        assert plan_packaging(1024).multiplicity == 4
        assert plan_packaging(2**20).multiplicity == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            plan_packaging(1000)

    def test_stage_per_column(self):
        plan = plan_packaging(1024)
        assert plan.stages == 10
        assert plan.total_interposers == (
            plan.stages * plan.interposers_per_column
        )


class TestCostModel:
    def test_523_usd_per_node_at_1k(self):
        cost = baldur_cost(1024)
        assert cost.total == pytest.approx(
            C.BALDUR_COST_PER_NODE_1K_USD, rel=0.05
        )

    def test_interposers_dominate(self):
        # Sec. VI-B: the cost of optical interposers dominates.
        assert baldur_cost(1024).interposer_fraction > 0.5
        assert baldur_cost(2**20).interposer_fraction > 0.5

    def test_cheaper_than_fattree_reference(self):
        # 523 vs 1,992 USD/node for fat-tree, at every swept scale.
        for n in (1024, 2**14, 2**17, 2**20):
            assert baldur_cost(n).total < C.FATTREE_COST_PER_NODE_USD

    def test_cheaper_than_ocs_reference(self):
        assert baldur_cost(2048).total < C.OCS_COST_PER_NODE_USD

    def test_cost_growth_modest(self):
        # Fig. 10: cost increases only modestly with scale.
        growth = baldur_cost(2**20).total / baldur_cost(1024).total
        assert growth < 3.0

    def test_breakdown_sums(self):
        cost = baldur_cost(1024)
        assert cost.total == pytest.approx(
            sum(v for k, v in cost.as_dict().items() if k != "total")
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            baldur_cost(6)

    def test_reduced_fiber_pitch_cuts_cost(self):
        # Sec. IV-G: future pitch reduction shrinks the interposer count
        # and with it the dominant cost term.
        import repro.cost.packaging as pkg
        baseline = baldur_cost(2**16).total
        original = pkg.fibers_per_interposer_edge
        try:
            pkg.fibers_per_interposer_edge = lambda *a, **k: 502
            cheaper = baldur_cost(2**16).total
        finally:
            pkg.fibers_per_interposer_edge = original
        assert cheaper < baseline
