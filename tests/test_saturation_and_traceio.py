"""Tests for saturation analysis and trace serialization."""

import pytest

from repro.analysis.saturation import (
    latency_curve,
    saturation_comparison,
    saturation_load,
)
from repro.errors import ConfigurationError
from repro.traffic import fillboundary_trace, replay_trace
from repro.traffic.trace_io import load_trace, save_trace


class TestSaturation:
    def test_saturation_load_detects_knee(self):
        curve = {0.1: 100.0, 0.5: 150.0, 0.7: 400.0, 0.9: 5000.0}
        assert saturation_load(curve, threshold=3.0) == 0.7

    def test_no_saturation_returns_none(self):
        curve = {0.1: 100.0, 0.9: 120.0}
        assert saturation_load(curve) is None

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            saturation_load({0.1: 1.0}, threshold=1.0)

    def test_latency_curve_monotone_for_baldur(self):
        curve = latency_curve(
            "baldur", 32, loads=(0.2, 0.9), packets_per_node=15
        )
        assert curve[0.9] > curve[0.2]

    def test_empty_loads_rejected(self):
        with pytest.raises(ConfigurationError):
            latency_curve("baldur", 32, loads=())

    def test_multibutterflies_saturate_last(self):
        # Fig. 6 claim: Baldur and eMB saturate at higher loads than
        # dragonfly/fat-tree.  At a small scale we verify the weaker,
        # stable form: Baldur's saturation point is never lower.
        results = saturation_comparison(
            32,
            loads=(0.1, 0.5, 0.8),
            packets_per_node=15,
        )

        def as_number(value):
            return 1.1 if value is None else value  # None = never saturated

        assert as_number(results["baldur"]) >= as_number(
            results["dragonfly"]
        ) or results["dragonfly"] is None
        assert as_number(results["baldur"]) >= 0.5 or \
            results["baldur"] is None


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = fillboundary_trace(16, rounds=2)
        path = tmp_path / "fb.json"
        save_trace(trace, path, workload="FB")
        loaded, name, ranks = load_trace(path)
        assert loaded == trace
        assert name == "FB"
        assert ranks == 16

    def test_loaded_trace_replays(self, tmp_path):
        from repro.electrical import IdealNetwork
        trace = fillboundary_trace(16, rounds=2)
        path = tmp_path / "fb.json"
        save_trace(trace, path)
        loaded, _, ranks = load_trace(path)
        stats = replay_trace(IdealNetwork(ranks), loaded)
        assert stats.delivered == sum(len(r) for r in trace)

    def test_save_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_trace([], tmp_path / "x.json")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_trace(tmp_path / "nope.json")

    def test_load_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_load_missing_keys(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text('{"workload": "x"}')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_load_validates_endpoints(self, tmp_path):
        path = tmp_path / "oob.json"
        path.write_text(
            '{"workload": "x", "n_ranks": 4, "rounds": [[[0, 9, 64]]]}'
        )
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_load_validates_size(self, tmp_path):
        path = tmp_path / "size.json"
        path.write_text(
            '{"workload": "x", "n_ranks": 4, "rounds": [[[0, 1, 0]]]}'
        )
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_load_validates_message_shape(self, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text(
            '{"workload": "x", "n_ranks": 4, "rounds": [[[0, 1]]]}'
        )
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_explicit_rank_count_preserved(self, tmp_path):
        trace = [[(0, 1, 64)]]
        path = tmp_path / "r.json"
        save_trace(trace, path, n_ranks=128)
        _, _, ranks = load_trace(path)
        assert ranks == 128
