"""Tests for the TL device model (Table III -> Table IV reproduction)."""

import pytest

from repro import constants as C
from repro.tl.device import (
    TLDeviceParameters,
    characterize_gate,
    static_power_fraction,
)


class TestTableIVReproduction:
    """The default device parameters must reproduce Table IV."""

    def test_delay_matches_table4(self):
        chars = characterize_gate()
        assert chars.delay_ps == pytest.approx(C.TL_GATE_DELAY_PS, rel=0.01)

    def test_rise_fall_matches_table4(self):
        chars = characterize_gate()
        assert chars.rise_fall_time_ps == pytest.approx(
            C.TL_GATE_RISE_FALL_TIME_PS, rel=0.01
        )

    def test_power_matches_table4(self):
        chars = characterize_gate()
        assert chars.power_w == pytest.approx(C.TL_GATE_POWER_W, rel=0.01)

    def test_data_rate_matches_table4(self):
        chars = characterize_gate()
        assert chars.data_rate_gbps == pytest.approx(
            C.TL_GATE_DATA_RATE_GBPS, rel=0.02
        )

    def test_area_matches_table4(self):
        assert characterize_gate().area_um2 == C.TL_GATE_AREA_UM2

    def test_energy_per_bit_is_677_fj(self):
        chars = characterize_gate()
        assert chars.energy_per_bit_fj == pytest.approx(
            C.TL_GATE_ENERGY_PER_BIT_FJ, rel=0.02
        )

    def test_power_mw_helper(self):
        chars = characterize_gate()
        assert chars.power_mw == pytest.approx(0.406, rel=0.01)

    def test_eye_is_open_at_max_rate(self):
        chars = characterize_gate()
        assert 0.3 < chars.eye_opening_fraction < 1.0

    def test_static_power_dominates(self):
        # Sec. III footnote: static power is the dominant component.
        assert static_power_fraction() > 0.9


class TestParameterValidation:
    def test_negative_capacitance_rejected(self):
        with pytest.raises(ValueError):
            TLDeviceParameters(junction_capacitance_f=-1e-15)

    def test_zero_lifetime_rejected(self):
        with pytest.raises(ValueError):
            TLDeviceParameters(photon_lifetime_s=0.0)

    def test_bias_below_threshold_rejected(self):
        with pytest.raises(ValueError):
            TLDeviceParameters(bias_current_a=0.05e-3)

    def test_frozen(self):
        params = TLDeviceParameters()
        with pytest.raises(AttributeError):
            params.bias_current_a = 1.0


class TestTechnologyScaling:
    def test_scaled_node_is_faster(self):
        base = characterize_gate()
        scaled = characterize_gate(TLDeviceParameters().scaled(0.5))
        assert scaled.delay_ps < base.delay_ps
        assert scaled.data_rate_gbps > base.data_rate_gbps

    def test_scaled_node_uses_less_power(self):
        base = characterize_gate()
        scaled = characterize_gate(TLDeviceParameters().scaled(0.5))
        assert scaled.power_w < base.power_w

    def test_scale_factor_validation(self):
        with pytest.raises(ValueError):
            TLDeviceParameters().scaled(0.0)

    def test_identity_scaling(self):
        base = TLDeviceParameters()
        assert base.scaled(1.0) == base
