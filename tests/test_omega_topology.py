"""Tests for the omega topology and the structured-wiring ablation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BaldurNetwork
from repro.errors import TopologyError
from repro.topology import MultiButterflyTopology, OmegaTopology


class TestOmegaTopology:
    def test_dimensions(self):
        topo = OmegaTopology(64, multiplicity=2)
        assert topo.n_stages == 6
        assert topo.switches_per_stage == 32
        assert topo.total_switches == 192

    def test_validation(self):
        with pytest.raises(TopologyError):
            OmegaTopology(100)
        with pytest.raises(TopologyError):
            OmegaTopology(64, multiplicity=0)

    def test_shuffle_is_rotate_left(self):
        topo = OmegaTopology(8)
        assert topo._shuffle(0b001) == 0b010
        assert topo._shuffle(0b100) == 0b001

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=50)
    def test_destination_tag_routing_delivers(self, src, dst):
        topo = OmegaTopology(64)
        switch = topo.entry_switch(src)
        for stage in range(topo.n_stages):
            bit = topo.routing_bit(dst, stage)
            switch = topo.next_switches(stage, switch, bit)[0]
        assert switch == dst

    def test_single_path_property(self):
        # Omega has exactly one path: all multiplicity ports alias it.
        topo = OmegaTopology(16, multiplicity=3)
        targets = topo.next_switches(0, 5, 1)
        assert len(set(targets)) == 1
        assert len(targets) == 3

    def test_deterministic_path_length(self):
        topo = OmegaTopology(32)
        assert len(topo.deterministic_path(3, 17)) == 5

    def test_baldur_runs_on_omega(self):
        net = BaldurNetwork(
            32, multiplicity=2, topology=OmegaTopology(32, multiplicity=2)
        )
        net.submit(0, 21, time=0.0)
        stats = net.run()
        assert stats.delivered == 1

    def test_topology_node_count_mismatch_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            BaldurNetwork(64, topology=OmegaTopology(32))


class TestStructuredWiringAblation:
    def test_structured_wiring_is_deterministic(self):
        a = MultiButterflyTopology(64, 3, seed=1, randomize=False)
        b = MultiButterflyTopology(64, 3, seed=2, randomize=False)
        assert a.wiring == b.wiring  # seed-independent

    def test_structured_wiring_delivers(self):
        topo = MultiButterflyTopology(64, 2, randomize=False)
        for src, dst in ((0, 63), (17, 4), (33, 32)):
            switch = topo.entry_switch(src)
            for stage in range(topo.n_stages):
                bit = topo.routing_bit(dst, stage)
                switch = topo.next_switches(stage, switch, bit)[0]
            assert switch == dst

    def test_structured_targets_stay_in_sub_block(self):
        topo = MultiButterflyTopology(64, 4, randomize=False)
        n = topo.n_nodes
        for stage in range(topo.n_stages - 1):
            sub = (n >> (stage + 1)) // 2
            switches_per_block = (n >> stage) // 2
            for i in range(topo.switches_per_stage):
                block = i // switches_per_block
                for bit in (0, 1):
                    lo = (2 * block + bit) * sub
                    for target in topo.next_switches(stage, i, bit):
                        assert lo <= target < lo + sub

    def test_randomized_beats_structured_under_adversarial_traffic(self):
        # The expansion ablation: under the transpose permutation at a
        # heavy one-shot load, the randomized wiring should drop no more
        # than the structured wiring (Sec. IV-E / [19]).
        import numpy as np
        from repro.core.drop_model import one_shot_drop_rate
        from repro.core.drop_model import _dst_transpose
        n, m = 1024, 2
        randomized = one_shot_drop_rate(n, m, "transpose", trials=3)
        # Structured drop rate via the Baldur simulator on the structured
        # topology with simultaneous injection.
        from repro.core import BaldurNetwork
        net = BaldurNetwork(
            n, multiplicity=m, enable_retransmission=False,
            topology=MultiButterflyTopology(n, m, randomize=False),
        )
        dst = _dst_transpose(n, np.random.default_rng(0))
        for src in range(n):
            if dst[src] != src:
                net.submit(src, int(dst[src]), time=0.0)
        stats = net.run()
        structured = stats.drop_rate
        assert randomized <= structured + 0.05
