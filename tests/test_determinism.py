"""Determinism guarantees of the simulators and the sweep engine.

The contract: a sweep's results are a pure function of its spec (grid +
root seed).  Worker count, scheduling order, and caching must not leak
into the numbers; changing the root seed must actually change the packet
traces (checked via the latency digest, a hash over the ordered latency
sequence).
"""

import pytest

from repro.analysis.experiments import figure6_spec, run_open_loop
from repro.netsim.stats import StatsSummary
from repro.runner import run_sweep

SIM_NETWORKS = ("baldur", "multibutterfly", "dragonfly", "fattree")
"""The four packet-level simulators (ideal has no randomness at all)."""


def spec(seed=0):
    return figure6_spec(
        n_nodes=16,
        loads=(0.6,),
        patterns=("transpose",),
        packets_per_node=4,
        networks=SIM_NETWORKS,
        seed=seed,
    )


def summaries(sweep):
    return {
        o.job.params["network"]: StatsSummary.from_dict(o.result)
        for o in sweep.outcomes
    }


class TestSerialParallelEquivalence:
    def test_results_identical_serial_vs_two_workers(self):
        serial = summaries(run_sweep(spec(), jobs=1))
        parallel = summaries(run_sweep(spec(), jobs=2))
        assert set(serial) == set(SIM_NETWORKS)
        for network in SIM_NETWORKS:
            assert serial[network] == parallel[network], network

    def test_json_artifacts_byte_identical(self):
        assert run_sweep(spec(), jobs=1).to_json() == \
            run_sweep(spec(), jobs=2).to_json()

    def test_repeated_serial_runs_identical(self):
        assert run_sweep(spec()).to_json() == run_sweep(spec()).to_json()


class TestSeedSensitivity:
    @pytest.mark.parametrize("network", SIM_NETWORKS)
    def test_different_root_seeds_change_packet_traces(self, network):
        """Same grid, different root seed: the delivered-latency sequence
        (hence its digest) must differ.  Transpose keeps the destination
        pattern seed-independent, so any difference comes from the RNG
        streams (injection jitter, wiring, adaptive choices)."""
        a = summaries(run_sweep(spec(seed=1)))[network]
        b = summaries(run_sweep(spec(seed=2)))[network]
        assert a.latency_digest != b.latency_digest

    def test_same_seed_same_digest_direct_run(self):
        """run_open_loop itself (no engine) is seed-deterministic."""
        def one(seed):
            stats = run_open_loop(
                "baldur", 16, "transpose",
                load=0.6, packets_per_node=4, seed=seed,
            )
            return StatsSummary.from_stats(stats)

        assert one(7) == one(7)
        assert one(7).latency_digest != one(8).latency_digest
