"""Architecture-zoo tests: registry↔legacy identity, rotor behaviour,
and registry/config validation.

The identity suite is the zoo's load-bearing guarantee: for every one of
the five Sec. V architectures, a registry-built network must produce
**byte-identical** ``StatsSummary`` canonical JSON to the hand-wired
class on the fig6/fig7 golden cells.  Tolerances would hide drift; the
comparison is string equality on the serialized summary (including the
latency digest, i.e. trace equality).
"""

import pytest

from repro import constants as C
from repro import zoo
from repro.core.baldur_network import BaldurNetwork
from repro.electrical import (
    DragonflyNetwork,
    FatTreeNetwork,
    IdealNetwork,
    MultiButterflyNetwork,
)
from repro.errors import ConfigurationError, TopologyError
from repro.netsim.stats import StatsSummary
from repro.runner.spec import canonical_json
from repro.topology import RotorTopology
from repro.traffic import inject_open_loop, random_permutation, transpose
from repro.zoo.rotor import RotorNetwork

LEGACY = {
    "baldur": lambda n, seed: BaldurNetwork(
        n, multiplicity=C.BALDUR_MULTIPLICITY, seed=seed
    ),
    "multibutterfly": lambda n, seed: MultiButterflyNetwork(
        n, multiplicity=C.BALDUR_MULTIPLICITY, seed=seed
    ),
    "dragonfly": lambda n, seed: DragonflyNetwork(n, seed=seed),
    "fattree": lambda n, seed: FatTreeNetwork(n, seed=seed),
    "ideal": lambda n, seed: IdealNetwork(n),
}


def summary_json(network, pattern, load, n_nodes, packets_per_node, seed):
    """Run one open-loop cell and return canonical StatsSummary JSON."""
    if pattern == "transpose":
        destinations = transpose(n_nodes)
    else:
        destinations = random_permutation(n_nodes, seed)
    inject_open_loop(
        network, destinations, load, packets_per_node, seed=seed
    )
    stats = network.run(until=50_000_000.0)
    return canonical_json(StatsSummary.from_stats(stats).to_dict())


# -- registry↔legacy identity ---------------------------------------------------


@pytest.mark.parametrize("name", LEGACY)
@pytest.mark.parametrize(
    "pattern,load",
    [
        # The fig6 golden cells (32 nodes, 5 packets/node, seed 0) span
        # both patterns and both loads of tests/golden/fig6.json.
        ("random_permutation", 0.3),
        ("transpose", 0.7),
    ],
)
def test_registry_matches_legacy_on_golden_cells(name, pattern, load):
    n_nodes, packets, seed = 32, 5, 0
    via_zoo = summary_json(
        zoo.build_network(name, n_nodes, seed=seed),
        pattern, load, n_nodes, packets, seed,
    )
    via_legacy = summary_json(
        LEGACY[name](n_nodes, seed),
        pattern, load, n_nodes, packets, seed,
    )
    assert via_zoo == via_legacy


@pytest.mark.parametrize("name", LEGACY)
def test_registry_matches_legacy_fig7_scale(name):
    # The fig7 golden scale: 16 nodes, 4 packets/node, seed 0.
    n_nodes, packets, seed = 16, 4, 0
    via_zoo = summary_json(
        zoo.build_network(name, n_nodes, seed=seed),
        "random_permutation", 0.7, n_nodes, packets, seed,
    )
    via_legacy = summary_json(
        LEGACY[name](n_nodes, seed),
        "random_permutation", 0.7, n_nodes, packets, seed,
    )
    assert via_zoo == via_legacy


def test_experiments_build_network_goes_through_registry():
    from repro.analysis.experiments import build_network

    net = build_network("rotor", 16, seed=0)
    assert isinstance(net, RotorNetwork)


# -- registry resolution and validation -----------------------------------------


def test_registered_architectures():
    assert zoo.architectures() == (
        "baldur", "multibutterfly", "dragonfly", "fattree", "ideal",
        "rotor",
    )


def test_unknown_architecture_lists_known_names():
    with pytest.raises(ConfigurationError, match="baldur.*rotor"):
        zoo.build_network("torus", 16)


def test_unknown_component_lists_known_names():
    with pytest.raises(ConfigurationError, match="unknown topology"):
        zoo.TOPOLOGIES.get("torus")


def test_config_dict_with_architecture_key_and_overrides():
    net = zoo.build_network({"architecture": "rotor", "n_rotors": 8}, 16)
    assert isinstance(net, RotorNetwork)
    assert net.n_rotors == 8


def test_config_dict_with_component_quadruple():
    net = zoo.build_network(
        {
            "topology": "dragonfly",
            "routing": "ugal_adaptive",
            "switch": "electrical_buffered",
            "scheduler": "event_driven",
        },
        16,
        seed=1,
    )
    assert isinstance(net, DragonflyNetwork)


def test_config_dict_unmatched_quadruple_raises():
    with pytest.raises(ConfigurationError, match="no registered"):
        zoo.build_network(
            {
                "topology": "dragonfly",
                "routing": "direct",
                "switch": "ideal_sink",
                "scheduler": "event_driven",
            },
            16,
        )


def test_config_dict_without_architecture_or_quadruple_raises():
    with pytest.raises(ConfigurationError, match="architecture"):
        zoo.build_network({"topology": "dragonfly"}, 16)


def test_config_rejects_non_str_non_dict():
    with pytest.raises(ConfigurationError, match="must be"):
        zoo.build_network(42, 16)


def test_spec_describe_names_all_four_components():
    spec = zoo.architecture("rotor")
    assert spec.describe() == (
        "rotor: rotor x rotation_schedule x rotor_crossbar x "
        "matching_cycle"
    )
    assert [c.kind for c in spec.components()] == [
        "topology", "routing", "switch", "scheduler",
    ]


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigurationError, match="already registered"):
        zoo.register_architecture(
            "baldur", "ideal", "direct", "ideal_sink", "event_driven",
            builder=lambda n, seed: None,
        )


# -- rotor topology --------------------------------------------------------------


def test_rotor_matchings_cover_every_pair_once_per_cycle():
    topo = RotorTopology(8, n_rotors=3)
    seen = set()
    for slot in range(topo.slots_per_cycle):
        for rotor in range(topo.n_rotors):
            m = topo.matching(rotor, slot)
            assert sorted(m) == list(range(8))  # a permutation
            for src, dst in enumerate(m):
                if dst != src:
                    assert (src, dst) not in seen
                    seen.add((src, dst))
    assert len(seen) == 8 * 7  # every ordered pair exactly once


def test_rotor_slots_until_matched_agrees_with_matchings():
    topo = RotorTopology(8, n_rotors=3)
    for src in range(8):
        for dst in range(8):
            if src == dst:
                continue
            for start in range(topo.slots_per_cycle):
                wait = topo.slots_until_matched(src, dst, start)
                slot = start + wait
                assert any(
                    topo.matching(r, slot)[src] == dst
                    for r in range(topo.n_rotors)
                )


def test_rotor_topology_validation():
    with pytest.raises(TopologyError):
        RotorTopology(1)
    with pytest.raises(TopologyError):
        RotorTopology(8, n_rotors=0)
    topo = RotorTopology(4, n_rotors=16)  # clamped to n-1
    assert topo.n_rotors == 3
    with pytest.raises(TopologyError):
        topo.matching(3, 0)
    with pytest.raises(TopologyError):
        topo.slots_until_matched(0, 0)


# -- rotor network ---------------------------------------------------------------


def test_rotor_delivers_everything_with_clean_audit():
    net = zoo.build_network("rotor", 16, seed=0)
    destinations = random_permutation(16, 3)
    inject_open_loop(net, destinations, 0.5, 10, seed=3)
    stats = net.run()  # run to completion: no horizon needed
    assert stats.delivered == stats.injected == 160
    assert stats.drops == 0
    assert net.queued_packets == 0
    net.audit()


def test_rotor_is_deterministic():
    def one_run():
        net = zoo.build_network("rotor", 16, seed=0)
        inject_open_loop(
            net, random_permutation(16, 5), 0.7, 8, seed=5
        )
        return canonical_json(
            StatsSummary.from_stats(net.run()).to_dict()
        )

    assert one_run() == one_run()


def test_rotor_unloaded_latency_matches_simulation():
    for dst in (1, 5, 15):
        net = zoo.build_network("rotor", 16, seed=0)
        packet = net.submit(0, dst, time=0.0)
        net.run()
        assert packet.latency == pytest.approx(
            net.unloaded_latency_ns(0, dst), rel=1e-12
        )


def test_rotor_single_hop():
    net = zoo.build_network("rotor", 16, seed=0)
    packet = net.submit(3, 11, time=0.0)
    net.run()
    assert packet.hops == 1  # direct: exactly one rotor traversal


def test_rotor_oversized_packet_rejected():
    net = zoo.build_network("rotor", 16, seed=0, slot_ns=10.0)
    net.submit(0, 1, time=0.0)
    with pytest.raises(ConfigurationError, match="wire"):
        net.run()


def test_rotor_mid_slot_arrival_uses_current_matching():
    # At t=0.5 the slot-0 matchings are live; offset-1 pairs go out
    # immediately instead of waiting a full cycle.
    net = zoo.build_network("rotor", 16, seed=0)
    packet = net.submit(0, 1, time=0.5)
    net.run()
    assert packet.deliver_time < net.topology.slots_per_cycle * net.slot_ns


def test_rotor_config_validation():
    with pytest.raises(ConfigurationError):
        RotorNetwork(16, slot_ns=0.0)
    with pytest.raises(ConfigurationError):
        RotorNetwork(16, reconfig_ns=-1.0)
    with pytest.raises(ConfigurationError):
        RotorNetwork(16, topology=RotorTopology(8))
