"""Golden-figure regression tests.

Small-config runs of the Fig. 6 / Fig. 7 sweep drivers and the Fig. 8
power model are pinned against reference JSON committed under
``tests/golden/``.  Any change to simulator timing, routing, RNG
consumption order, power constants, or the sweep engine's seeding shows
up here as a diff against the golden numbers.

Regenerate (after an *intentional* model change) with::

    PYTHONPATH=src python tests/test_golden_figures.py --regen

and inspect the resulting git diff before committing it.
"""

import dataclasses
import json
import math
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent / "golden"

REL_TOL = 1e-9
"""Tight tolerance: results are deterministic, so anything beyond float
round-off (e.g. from a reordered summation) is a real behaviour change."""


# -- golden builders (shared by the tests and --regen) ---------------------------


def built_fig6():
    from repro.analysis.experiments import figure6_spec
    from repro.runner import run_sweep

    spec = figure6_spec(
        n_nodes=32,
        loads=(0.3, 0.7),
        patterns=("random_permutation", "transpose"),
        packets_per_node=5,
        seed=0,
    )
    return json.loads(run_sweep(spec).to_json())


def built_fig7():
    from repro.analysis.experiments import figure7_spec
    from repro.runner import run_sweep

    spec = figure7_spec(
        n_nodes=16, packets_per_node=4, ping_pong_rounds=2, seed=0
    )
    return json.loads(run_sweep(spec).to_json())


def built_fig8():
    from repro.power.network_power import FIG8_SCALES, power_scaling_sweep

    sweep = power_scaling_sweep(list(FIG8_SCALES))
    return {
        "scales": list(FIG8_SCALES),
        "networks": {
            name: [
                {**dataclasses.asdict(b), "total": b.total}
                for b in breakdowns
            ]
            for name, breakdowns in sweep.items()
        },
    }


def built_zoo():
    from repro.analysis.experiments import zoo_spec
    from repro.runner import run_sweep

    spec = zoo_spec(
        n_nodes=16,
        loads=(0.3, 0.7),
        pattern="random_permutation",
        packets_per_node=5,
        seed=0,
    )
    return json.loads(run_sweep(spec).to_json())


GOLDEN = {
    "fig6.json": built_fig6,
    "fig7.json": built_fig7,
    "fig8.json": built_fig8,
    "zoo.json": built_zoo,
}


# -- structural comparison -------------------------------------------------------


def assert_matches(actual, golden, path="$"):
    """Recursive equality with REL_TOL on floats and exact everything else."""
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: not a dict"
        assert sorted(actual) == sorted(golden), (
            f"{path}: keys {sorted(actual)} != {sorted(golden)}"
        )
        for key in golden:
            assert_matches(actual[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert isinstance(actual, list), f"{path}: not a list"
        assert len(actual) == len(golden), f"{path}: length differs"
        for i, (a, g) in enumerate(zip(actual, golden)):
            assert_matches(a, g, f"{path}[{i}]")
    elif isinstance(golden, float):
        assert isinstance(actual, (int, float)), f"{path}: not a number"
        assert math.isclose(actual, golden, rel_tol=REL_TOL, abs_tol=1e-12), (
            f"{path}: {actual!r} != golden {golden!r}"
        )
    else:
        # ints, strings (incl. latency digests), bools, None: exact.
        assert actual == golden, f"{path}: {actual!r} != golden {golden!r}"


# -- the tests -------------------------------------------------------------------


def load_golden(name):
    path = GOLDEN_DIR / name
    assert path.exists(), (
        f"missing {path}; run PYTHONPATH=src python "
        "tests/test_golden_figures.py --regen"
    )
    return json.loads(path.read_text())


def test_fig6_matches_golden():
    assert_matches(built_fig6(), load_golden("fig6.json"))


def test_fig7_matches_golden():
    assert_matches(built_fig7(), load_golden("fig7.json"))


def test_fig8_matches_golden():
    assert_matches(built_fig8(), load_golden("fig8.json"))


def test_zoo_matches_golden():
    assert_matches(built_zoo(), load_golden("zoo.json"))


def test_goldens_have_no_degenerate_results():
    """Guard the goldens themselves: every simulated cell delivered
    packets and measured a positive latency (a regenerated golden full of
    zeros would otherwise pass the comparison tests forever)."""
    for name in ("fig6.json", "fig7.json", "zoo.json"):
        for entry in load_golden(name)["jobs"]:
            result = entry["result"]
            assert result["delivered"] > 0, entry["key"]
            assert result["avg_latency_ns"] > 0.0, entry["key"]
    fig8 = load_golden("fig8.json")
    for network, rows in fig8["networks"].items():
        for row in rows:
            assert row["total"] > 0.0, network


def regenerate():
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, builder in GOLDEN.items():
        path = GOLDEN_DIR / name
        path.write_text(
            json.dumps(builder(), sort_keys=True, indent=1, allow_nan=False)
            + "\n"
        )
        print(f"wrote {path}")


if __name__ == "__main__":
    if "--regen" not in sys.argv:
        sys.exit("usage: PYTHONPATH=src python tests/test_golden_figures.py --regen")
    regenerate()
