"""Tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Interrupt


class TestScheduling:
    def test_initial_time_is_zero(self):
        env = Environment()
        assert env.now == 0.0

    def test_initial_time_custom(self):
        env = Environment(initial_time=42.0)
        assert env.now == 42.0

    def test_schedule_runs_callback_at_delay(self):
        env = Environment()
        fired = []
        env.schedule(5.0, lambda: fired.append(env.now))
        env.run()
        assert fired == [5.0]

    def test_schedule_with_args(self):
        env = Environment()
        got = []
        env.schedule(1.0, lambda a, b: got.append((a, b)), 1, 2)
        env.run()
        assert got == [(1, 2)]

    def test_schedule_at_absolute_time(self):
        env = Environment()
        fired = []
        env.schedule_at(7.5, lambda: fired.append(env.now))
        env.run()
        assert fired == [7.5]

    def test_schedule_negative_delay_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.schedule(-1.0, lambda: None)

    def test_schedule_at_past_raises(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(SimulationError):
            env.schedule_at(5.0, lambda: None)

    def test_fifo_order_for_simultaneous_events(self):
        env = Environment()
        order = []
        env.schedule(1.0, lambda: order.append("first"))
        env.schedule(1.0, lambda: order.append("second"))
        env.run()
        assert order == ["first", "second"]

    def test_time_ordering(self):
        env = Environment()
        order = []
        env.schedule(3.0, lambda: order.append(3))
        env.schedule(1.0, lambda: order.append(1))
        env.schedule(2.0, lambda: order.append(2))
        env.run()
        assert order == [1, 2, 3]

    def test_run_until_advances_clock_past_empty_queue(self):
        env = Environment()
        env.run(until=100.0)
        assert env.now == 100.0

    def test_run_until_does_not_run_later_events(self):
        env = Environment()
        fired = []
        env.schedule(5.0, lambda: fired.append("early"))
        env.schedule(50.0, lambda: fired.append("late"))
        env.run(until=10.0)
        assert fired == ["early"]
        assert env.now == 10.0

    def test_run_until_past_raises(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_peek_and_empty(self):
        env = Environment()
        assert env.empty()
        assert env.peek() == float("inf")
        env.schedule(2.0, lambda: None)
        assert env.peek() == 2.0
        assert not env.empty()

    def test_nested_scheduling(self):
        env = Environment()
        fired = []

        def outer():
            fired.append(("outer", env.now))
            env.schedule(3.0, lambda: fired.append(("inner", env.now)))

        env.schedule(1.0, outer)
        env.run()
        assert fired == [("outer", 1.0), ("inner", 4.0)]


class TestEvents:
    def test_event_succeed_delivers_value(self):
        env = Environment()
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        env.run()
        assert seen == ["payload"]

    def test_event_double_trigger_raises(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_event_fail_requires_exception(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_event_flags_lifecycle(self):
        env = Environment()
        event = env.event()
        assert not event.triggered and not event.processed
        event.succeed(1)
        assert event.triggered and not event.processed
        env.run()
        assert event.processed and event.ok and event.value == 1


class TestProcesses:
    def test_simple_timeout_process(self):
        env = Environment()
        log = []

        def proc():
            log.append(env.now)
            yield env.timeout(10)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [0.0, 10.0]

    def test_process_return_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            return "done"

        p = env.process(proc())
        env.run()
        assert p.value == "done"

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_process_waits_on_event(self):
        env = Environment()
        gate = env.event()
        log = []

        def waiter():
            value = yield gate
            log.append((env.now, value))

        env.process(waiter())
        env.schedule(5.0, lambda: gate.succeed("go"))
        env.run()
        assert log == [(5.0, "go")]

    def test_process_waits_on_another_process(self):
        env = Environment()
        log = []

        def child():
            yield env.timeout(3)
            return "child-result"

        def parent():
            result = yield env.process(child())
            log.append((env.now, result))

        env.process(parent())
        env.run()
        assert log == [(3.0, "child-result")]

    def test_yield_already_processed_event_resumes_immediately(self):
        env = Environment()
        done = env.event()
        done.succeed("early")
        log = []

        def late_waiter():
            yield env.timeout(5)
            value = yield done
            log.append((env.now, value))

        env.process(late_waiter())
        env.run()
        assert log == [(5.0, "early")]

    def test_interrupt_handled(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt as exc:
                log.append((env.now, exc.cause))

        p = env.process(sleeper())
        env.schedule(4.0, lambda: p.interrupt("wake up"))
        env.run()
        assert log == [(4.0, "wake up")]

    def test_interrupt_finished_process_raises(self):
        env = Environment()

        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_unhandled_interrupt_fails_process(self):
        env = Environment()

        def sleeper():
            yield env.timeout(100)

        p = env.process(sleeper())
        env.schedule(1.0, lambda: p.interrupt("boom"))
        env.run()
        assert p.processed and not p.ok
        assert isinstance(p.value, Interrupt)

    def test_is_alive(self):
        env = Environment()

        def proc():
            yield env.timeout(10)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_yield_non_event_raises(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()


class TestConditions:
    def test_any_of_fires_on_first(self):
        env = Environment()
        log = []

        def proc():
            t1 = env.timeout(5, value="fast")
            t2 = env.timeout(50, value="slow")
            result = yield env.any_of([t1, t2])
            log.append((env.now, list(result.values())))

        env.process(proc())
        env.run(until=100)
        assert log[0][0] == 5.0
        assert "fast" in log[0][1]

    def test_all_of_waits_for_all(self):
        env = Environment()
        log = []

        def proc():
            t1 = env.timeout(5)
            t2 = env.timeout(50)
            yield env.all_of([t1, t2])
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [50.0]

    def test_all_of_empty_fires_immediately(self):
        env = Environment()
        log = []

        def proc():
            yield env.all_of([])
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [0.0]

    def test_condition_classes_exported(self):
        env = Environment()
        assert isinstance(env.any_of([]), AnyOf)
        assert isinstance(env.all_of([]), AllOf)


class TestTimeout:
    def test_negative_delay_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-0.5)

    def test_timeout_carries_value(self):
        env = Environment()
        t = env.timeout(1, value="v")
        env.run()
        assert t.value == "v"


class TestNonFiniteDelays:
    """NaN/inf delays would corrupt heap order (every NaN comparison is
    False); the kernel must reject them eagerly."""

    @pytest.mark.parametrize("delay", [
        float("nan"), float("inf"), -float("inf"),
    ])
    def test_schedule_rejects_non_finite(self, delay):
        env = Environment()
        with pytest.raises(SimulationError):
            env.schedule(delay, lambda: None)

    @pytest.mark.parametrize("when", [
        float("nan"), float("inf"), -float("inf"),
    ])
    def test_schedule_at_rejects_non_finite(self, when):
        env = Environment()
        with pytest.raises(SimulationError):
            env.schedule_at(when, lambda: None)

    @pytest.mark.parametrize("delay", [float("nan"), float("inf")])
    def test_timeout_rejects_non_finite(self, delay):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(delay)

    def test_schedule_batch_rejects_non_finite(self):
        env = Environment()
        nop = lambda: None  # noqa: E731
        for bad in (float("nan"), float("inf")):
            with pytest.raises(SimulationError):
                env.schedule_batch([(1.0, nop, ()), (bad, nop, ())])

    def test_huge_but_finite_delay_is_fine(self):
        env = Environment()
        env.schedule(1e300, lambda: None)
        env.run()
        assert env.now == 1e300


class TestScheduleBatch:
    """schedule_batch must dispatch exactly like per-entry schedule_at."""

    def test_batch_matches_sequential_order(self):
        entries = [
            (3.0, "a"), (1.0, "b"), (2.0, "c"), (1.0, "d"), (3.0, "e"),
        ]
        runs = []
        for use_batch in (False, True):
            env = Environment()
            order = []

            def cb(tag, env=env, order=order):
                order.append((env.now, tag))

            if use_batch:
                n = env.schedule_batch(
                    [(when, cb, (tag,)) for when, tag in entries]
                )
                assert n == len(entries)
            else:
                for when, tag in entries:
                    env.schedule_at(when, cb, tag)
            env.run()
            runs.append(order)
        # Identical times AND identical FIFO tie-breaks (b before d,
        # a before e).
        assert runs[0] == runs[1]
        assert runs[0] == [
            (1.0, "b"), (1.0, "d"), (2.0, "c"), (3.0, "a"), (3.0, "e"),
        ]

    def test_batch_merges_with_dynamic_events(self):
        """Events scheduled *during* the run interleave with the batch by
        (time, seq) exactly as one big heap would order them."""
        env = Environment()
        order = []

        def batch_cb(tag):
            order.append((env.now, tag))
            if tag == "b1":
                # Dynamic events both before and after the next batch entry.
                env.schedule(0.5, batch_cb, "dyn-1.5")
                env.schedule(2.5, batch_cb, "dyn-3.5")

        env.schedule_batch([
            (1.0, batch_cb, ("b1",)),
            (2.0, batch_cb, ("b2",)),
            (4.0, batch_cb, ("b3",)),
        ])
        env.run()
        assert order == [
            (1.0, "b1"), (1.5, "dyn-1.5"), (2.0, "b2"),
            (3.5, "dyn-3.5"), (4.0, "b3"),
        ]

    def test_batch_into_nonempty_queue(self):
        env = Environment()
        order = []

        def cb(tag):
            order.append((env.now, tag))

        env.schedule(1.5, cb, "heap")
        env.schedule_batch([(1.0, cb, ("batch-1",)),
                            (2.0, cb, ("batch-2",))])
        env.run()
        assert order == [(1.0, "batch-1"), (1.5, "heap"), (2.0, "batch-2")]

    def test_batch_respects_run_until(self):
        env = Environment()
        order = []

        def cb(tag):
            order.append(tag)

        env.schedule_batch([(1.0, cb, ("a",)), (5.0, cb, ("b",))])
        env.run(until=2.0)
        assert order == ["a"]
        assert env.now == 2.0
        assert not env.empty()
        assert env.peek() == 5.0
        env.run()
        assert order == ["a", "b"]
        assert env.empty()

    def test_peek_empty_step_see_the_batch(self):
        env = Environment()
        fired = []
        env.schedule_batch([(2.0, fired.append, (2.0,))])
        env.schedule(3.0, fired.append, 3.0)
        assert not env.empty()
        assert env.peek() == 2.0
        env.step()
        assert fired == [2.0]
        assert env.peek() == 3.0
        env.step()
        assert fired == [2.0, 3.0]
        assert env.empty()

    def test_second_batch_after_drain(self):
        env = Environment()
        order = []
        env.schedule_batch([(1.0, order.append, ("first",))])
        env.run()
        env.schedule_batch([(2.0, order.append, ("second",))])
        env.run()
        assert order == ["first", "second"]
        assert env.now == 2.0

    def test_batch_scheduled_from_inside_a_callback(self):
        """A callback bulk-scheduling mid-run must not lose events."""
        env = Environment()
        order = []

        def first():
            order.append("first")
            env.schedule_batch([
                (2.0, order.append, ("late",)),
                (1.5, order.append, ("early",)),
            ])

        env.schedule(1.0, first)
        env.run()
        assert order == ["first", "early", "late"]


class TestInterruptBookkeeping:
    """Process.interrupt abandons the awaited event in O(1); the event
    firing later must not resume the process a second time."""

    def test_abandoned_event_fire_does_not_double_resume(self):
        env = Environment()
        log = []
        wakeup = env.event()

        def proc():
            try:
                yield wakeup
                log.append("event")
            except Interrupt:
                log.append("interrupted")
                yield env.timeout(5.0)
                log.append("slept")

        p = env.process(proc())
        env.schedule(1.0, p.interrupt, "go")
        # The abandoned event fires while the process sleeps; it must not
        # resume the process early (or twice).
        env.schedule(2.0, wakeup.succeed)
        env.run()
        assert log == ["interrupted", "slept"]
        assert env.now == 6.0

    def test_double_interrupt_delivers_both(self):
        env = Environment()
        log = []

        def proc():
            for _ in range(2):
                try:
                    yield env.timeout(100.0)
                    log.append("timeout")
                except Interrupt as exc:
                    log.append(f"interrupted:{exc.cause}")

        p = env.process(proc())
        env.schedule(1.0, p.interrupt, "one")
        env.schedule(2.0, p.interrupt, "two")
        env.run()
        assert log == ["interrupted:one", "interrupted:two"]

    def test_reyield_same_event_after_interrupt(self):
        """Re-waiting on the very event abandoned by an interrupt still
        works: the tombstone consumes exactly one resume, so the second
        registration wakes the process when the event fires."""
        env = Environment()
        log = []
        wakeup = env.event()

        def proc():
            try:
                yield wakeup
                log.append("first-wait")
            except Interrupt:
                log.append("interrupted")
            yield wakeup
            log.append("second-wait")

        p = env.process(proc())
        env.schedule(1.0, p.interrupt, "go")
        env.schedule(2.0, wakeup.succeed)
        env.run()
        assert log == ["interrupted", "second-wait"]
